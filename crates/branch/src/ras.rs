//! Return-address stack.
//!
//! A small circular stack of predicted return targets. Calls push, returns
//! pop. Because pushes/pops happen speculatively at fetch, the whole stack
//! is checkpointable so the pipeline can restore it after a squash.

/// Circular return-address stack with copy-based checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnAddressStack {
    slots: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// A RAS with `capacity` entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(
            capacity.is_power_of_two(),
            "RAS capacity must be a power of two"
        );
        ReturnAddressStack {
            slots: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Push a predicted return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) & (self.slots.len() - 1);
        self.slots[self.top] = addr;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pop the predicted return target (on a return); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.slots[self.top];
        self.top = self.top.wrapping_sub(1) & (self.slots.len() - 1);
        self.depth -= 1;
        Some(v)
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshot for squash recovery.
    pub fn checkpoint(&self) -> ReturnAddressStack {
        self.clone()
    }

    /// Restore a snapshot taken with [`ReturnAddressStack::checkpoint`].
    pub fn restore(&mut self, snap: &ReturnAddressStack) {
        self.clone_from(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn checkpoint_restores_exactly() {
        let mut r = ReturnAddressStack::new(4);
        r.push(10);
        r.push(20);
        let snap = r.checkpoint();
        r.pop();
        r.push(99);
        r.push(98);
        r.restore(&snap);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
    }
}
