//! Return-address stack.
//!
//! A small circular stack of predicted return targets. Calls push, returns
//! pop. Because pushes/pops happen speculatively at fetch, the whole stack
//! is checkpointable so the pipeline can restore it after a squash.

/// Circular return-address stack with copy-based checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnAddressStack {
    slots: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// A RAS with `capacity` entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(
            capacity.is_power_of_two(),
            "RAS capacity must be a power of two"
        );
        ReturnAddressStack {
            slots: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Push a predicted return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) & (self.slots.len() - 1);
        self.slots[self.top] = addr;
        self.depth = (self.depth + 1).min(self.slots.len());
    }

    /// Pop the predicted return target (on a return); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let v = self.slots[self.top];
        self.top = self.top.wrapping_sub(1) & (self.slots.len() - 1);
        self.depth -= 1;
        Some(v)
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Snapshot for squash recovery.
    pub fn checkpoint(&self) -> ReturnAddressStack {
        self.clone()
    }

    /// Restore a snapshot taken with [`ReturnAddressStack::checkpoint`].
    pub fn restore(&mut self, snap: &ReturnAddressStack) {
        self.clone_from(snap);
    }

    /// Fixed-footprint snapshot of the live entries only (topmost first).
    /// Stacks up to [`RAS_INLINE`] deep copy into an inline array — no
    /// heap traffic on the fetch path, where a checkpoint is taken for
    /// every control instruction.
    pub fn checkpoint_fixed(&self) -> RasCheckpoint {
        let mask = self.slots.len() - 1;
        let mut ck = RasCheckpoint {
            inline: [0; RAS_INLINE],
            spill: Vec::new(),
            depth: self.depth,
        };
        for i in 0..self.depth {
            let v = self.slots[self.top.wrapping_sub(i) & mask];
            if i < RAS_INLINE {
                ck.inline[i] = v;
            } else {
                ck.spill.push(v);
            }
        }
        ck
    }

    /// Restore a snapshot taken with
    /// [`ReturnAddressStack::checkpoint_fixed`] on a stack of the same
    /// capacity. Slots beyond the snapshot depth are unobservable (pops
    /// stop at depth, pushes overwrite), so only live entries are written.
    pub fn restore_fixed(&mut self, ck: &RasCheckpoint) {
        let mask = self.slots.len() - 1;
        debug_assert!(ck.depth <= self.slots.len(), "same-capacity snapshot");
        self.depth = ck.depth;
        self.top = ck.depth & mask;
        for i in 0..ck.depth {
            self.slots[self.top.wrapping_sub(i) & mask] = ck.entry(i);
        }
    }
}

/// Entries a [`RasCheckpoint`] stores inline; deeper stacks spill to the
/// heap.
pub const RAS_INLINE: usize = 32;

/// Fixed-footprint RAS snapshot: live entries, topmost first (see
/// [`ReturnAddressStack::checkpoint_fixed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RasCheckpoint {
    inline: [u64; RAS_INLINE],
    spill: Vec<u64>,
    depth: usize,
}

impl RasCheckpoint {
    /// The `i`-th entry from the top of the checkpointed stack.
    fn entry(&self, i: usize) -> u64 {
        if i < RAS_INLINE {
            self.inline[i]
        } else {
            self.spill[i - RAS_INLINE]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn fixed_checkpoint_matches_clone_checkpoint() {
        let mut r = ReturnAddressStack::new(4);
        r.push(10);
        r.push(20);
        r.push(30);
        let snap = r.checkpoint_fixed();
        r.pop();
        r.push(99);
        r.push(98);
        r.restore_fixed(&snap);
        assert_eq!(r.pop(), Some(30));
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
        assert_eq!(r.pop(), None);
        // Restore survives a full wrap after the snapshot.
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        let snap = r.checkpoint_fixed();
        r.push(2);
        r.push(3);
        r.restore_fixed(&snap);
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn fixed_checkpoint_spills_past_inline_capacity() {
        let cap = 2 * RAS_INLINE;
        let mut r = ReturnAddressStack::new(cap);
        for i in 0..(RAS_INLINE + 8) as u64 {
            r.push(i);
        }
        let snap = r.checkpoint_fixed();
        for _ in 0..5 {
            r.pop();
        }
        r.restore_fixed(&snap);
        for i in (0..(RAS_INLINE + 8) as u64).rev() {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn checkpoint_restores_exactly() {
        let mut r = ReturnAddressStack::new(4);
        r.push(10);
        r.push(20);
        let snap = r.checkpoint();
        r.pop();
        r.push(99);
        r.push(98);
        r.restore(&snap);
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), Some(10));
    }
}
