//! Next-line predictor — the paper's canonical *tight* loop.
//!
//! "The next line prediction in the current cycle is needed by the line
//! predictor to determine the instructions to fetch in the next cycle"
//! (paper §1, Figure 2). The structure is a small untagged table mapping a
//! fetch-block PC to the predicted next fetch-block PC. Because the loop is
//! tight (loop delay 1) it never costs a bubble when right; when wrong the
//! fetch unit burns one cycle redirecting — which the pipeline charges.

// Sentinel for never-trained slots (no real program reaches this PC).
const UNTRAINED: u64 = u64::MAX;

/// Untagged next-fetch-line predictor.
#[derive(Debug, Clone)]
pub struct LinePredictor {
    table: Vec<u64>,
    block_insts: u64,
    correct: u64,
    wrong: u64,
}

impl LinePredictor {
    /// A predictor with `entries` slots (power of two) for fetch blocks of
    /// `block_insts` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `block_insts` is zero.
    pub fn new(entries: usize, block_insts: u64) -> LinePredictor {
        assert!(
            entries.is_power_of_two(),
            "line predictor size must be a power of two"
        );
        assert!(block_insts > 0, "fetch block must be non-empty");
        LinePredictor {
            table: vec![UNTRAINED; entries],
            block_insts,
            correct: 0,
            wrong: 0,
        }
    }

    fn index(&self, block_pc: u64) -> usize {
        ((block_pc / self.block_insts) as usize) & (self.table.len() - 1)
    }

    /// Predicted next fetch PC after the block starting at `block_pc`.
    /// Untrained entries fall through sequentially.
    pub fn predict(&self, block_pc: u64) -> u64 {
        let v = self.table[self.index(block_pc)];
        if v == UNTRAINED {
            block_pc + self.block_insts
        } else {
            v
        }
    }

    /// Train with the actual next fetch PC, and record whether the earlier
    /// prediction was right (the tight-loop feedback).
    pub fn train(&mut self, block_pc: u64, actual_next: u64) {
        if self.predict(block_pc) == actual_next {
            self.correct += 1;
        } else {
            self.wrong += 1;
            let i = self.index(block_pc);
            self.table[i] = actual_next;
        }
    }

    /// (correct, wrong) prediction counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.correct, self.wrong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predicts_sequential() {
        let p = LinePredictor::new(64, 8);
        assert_eq!(p.predict(0), 8);
        assert_eq!(p.predict(16), 24);
    }

    #[test]
    fn learns_a_taken_loop_edge() {
        let mut p = LinePredictor::new(64, 8);
        p.train(32, 0); // block at 32 jumps back to 0
        assert_eq!(p.predict(32), 0);
        p.train(32, 0);
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn retrains_on_change() {
        let mut p = LinePredictor::new(64, 8);
        p.train(0, 64);
        assert_eq!(p.predict(0), 64);
        p.train(0, 8);
        assert_eq!(p.predict(0), 8);
    }
}
