//! Branch target buffer.
//!
//! Tagged, direct-mapped target cache. The fetch unit consults it for the
//! taken-path target of control instructions before they are even decoded;
//! a miss means a taken branch redirects only after decode (modelled by the
//! pipeline as a fetch bubble).

/// A direct-mapped, tagged branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    // (tag, target); tag == u64::MAX means empty.
    entries: Vec<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Build a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Btb {
            entries: vec![(u64::MAX, 0); entries],
            hits: 0,
            misses: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Predicted target for the control instruction at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let (tag, target) = self.entries[self.index(pc)];
        if tag == pc {
            self.hits += 1;
            Some(target)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Non-counting lookup (for tests and diagnostics).
    pub fn probe(&self, pc: u64) -> Option<u64> {
        let (tag, target) = self.entries[self.index(pc)];
        (tag == pc).then_some(target)
    }

    /// Install or update the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = (pc, target);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Snapshot the target array for a checkpoint (tag `u64::MAX` marks an
    /// empty slot). Statistics are not included.
    pub fn export_state(&self) -> Vec<(u64, u64)> {
        self.entries.clone()
    }

    /// Restore a snapshot from [`Btb::export_state`]. Rejects snapshots
    /// whose slot count does not match this BTB's size.
    pub fn import_state(&mut self, entries: &[(u64, u64)]) -> Result<(), String> {
        if entries.len() != self.entries.len() {
            return Err(format!(
                "snapshot has {} slots, BTB has {}",
                entries.len(),
                self.entries.len()
            ));
        }
        self.entries.clear();
        self.entries.extend_from_slice(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(5), None);
        b.update(5, 100);
        assert_eq!(b.lookup(5), Some(100));
        assert_eq!(b.stats(), (1, 1));
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut b = Btb::new(16);
        b.update(3, 30);
        b.update(19, 190); // same slot in a 16-entry BTB
        assert_eq!(b.probe(3), None);
        assert_eq!(b.probe(19), Some(190));
    }

    #[test]
    fn update_overwrites_target() {
        let mut b = Btb::new(4);
        b.update(1, 10);
        b.update(1, 20);
        assert_eq!(b.probe(1), Some(20));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(10);
    }
}
