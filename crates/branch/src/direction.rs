//! Conditional-branch direction predictors.
//!
//! All predictors speak [`DirectionPredictor`]: `predict` at fetch time,
//! `update` at branch resolution. Predictors that keep global history
//! support checkpointing via [`HistorySnapshot`] so the pipeline can repair
//! history after a squash (speculative-history recovery).

/// Which direction predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Static always-taken (useful as a worst-case ablation).
    Taken,
    /// Per-PC 2-bit saturating counters.
    Bimodal,
    /// Global history XOR PC indexing a 2-bit counter table.
    Gshare,
    /// Per-PC local history indexing a pattern table (21264 local side).
    Local,
    /// 21264-style tournament: local + global with a choice predictor.
    Tournament,
}

/// Opaque saved global-history state (contents depend on the predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistorySnapshot(pub u64);

/// A conditional-branch direction predictor.
pub trait DirectionPredictor {
    /// Predict the direction of the branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Train with the resolved direction and update any global history.
    fn update(&mut self, pc: u64, taken: bool);

    /// Capture global-history state (no-op snapshot for history-free
    /// predictors).
    fn snapshot_history(&self) -> HistorySnapshot {
        HistorySnapshot(0)
    }

    /// Restore global-history state captured by
    /// [`DirectionPredictor::snapshot_history`].
    fn restore_history(&mut self, _snap: HistorySnapshot) {}

    /// Speculatively shift `taken` into global history at prediction time
    /// (no-op for history-free predictors). The pipeline calls this at
    /// fetch and repairs with `restore_history` on a squash.
    fn speculate_history(&mut self, _taken: bool) {}

    /// Train the prediction tables with a resolved outcome **without**
    /// shifting global history. Pipelines that maintain history
    /// speculatively at fetch (via [`DirectionPredictor::speculate_history`]
    /// / [`DirectionPredictor::restore_history`]) use this at branch
    /// resolution; the default forwards to [`DirectionPredictor::update`]
    /// and is only correct for history-free predictors.
    fn train_only(&mut self, pc: u64, taken: bool) {
        self.update(pc, taken);
    }

    /// Fetch-time prediction for deep pipelines: predict, *speculatively*
    /// shift the prediction into every internal history (global and
    /// per-branch local), and return an opaque context capturing the
    /// pre-prediction history state. The context is what
    /// [`DirectionPredictor::train_ctx`] and [`DirectionPredictor::repair`]
    /// need to train/repair against the state the prediction was actually
    /// made with — essential when several instances of the same branch are
    /// in flight.
    fn predict_ctx(&mut self, pc: u64) -> (bool, u64) {
        let t = self.predict(pc);
        self.speculate_history(t);
        (t, 0)
    }

    /// Train the tables for a resolved branch using the context returned
    /// by [`DirectionPredictor::predict_ctx`]. Histories are *not*
    /// shifted (they were shifted speculatively at fetch).
    fn train_ctx(&mut self, pc: u64, _ctx: u64, taken: bool) {
        self.train_only(pc, taken);
    }

    /// Repair per-branch history after a misprediction of this branch:
    /// reset it to the pre-prediction context extended with the true
    /// outcome. (Global history repair is the pipeline's job via
    /// [`DirectionPredictor::restore_history`].)
    fn repair(&mut self, _pc: u64, _ctx: u64, _taken: bool) {}

    /// Snapshot the full predictor state (tables and histories) as a flat
    /// word vector for a checkpoint. The layout is predictor-specific but
    /// stable; stateless predictors return an empty vector.
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state captured by [`DirectionPredictor::export_state`] from
    /// a predictor of the same kind and geometry. The default accepts only
    /// the empty (stateless) snapshot.
    fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        if words.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "stateless predictor given {} words of state",
                words.len()
            ))
        }
    }
}

/// 2-bit saturating counter helper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter2(u8);

impl Counter2 {
    /// Weakly-not-taken initial state.
    pub fn new() -> Counter2 {
        Counter2(1)
    }

    /// Counter value 0–3.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Predicted direction (counter >= 2).
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Saturating train toward `taken`.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// Rebuild a counter from a snapshot value; out-of-range values are
    /// rejected rather than clamped so corrupt checkpoints surface.
    pub fn from_value(v: u64) -> Result<Counter2, String> {
        if v <= 3 {
            Ok(Counter2(v as u8))
        } else {
            Err(format!("counter value {v} out of range 0..=3"))
        }
    }
}

/// Shared helper: restore a `Counter2` table slice from snapshot words.
fn import_counters(dst: &mut [Counter2], words: &[u64]) -> Result<(), String> {
    if words.len() != dst.len() {
        return Err(format!(
            "snapshot has {} counters, table has {}",
            words.len(),
            dst.len()
        ));
    }
    for (d, &w) in dst.iter_mut().zip(words) {
        *d = Counter2::from_value(w)?;
    }
    Ok(())
}

/// Static always-taken predictor.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl DirectionPredictor for AlwaysTaken {
    fn predict(&self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
}

/// Classic bimodal predictor: one 2-bit counter per PC hash.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<Counter2>,
}

impl BimodalPredictor {
    /// `entries` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    pub fn new(entries: usize) -> BimodalPredictor {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        BimodalPredictor {
            table: vec![Counter2::new(); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for BimodalPredictor {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }

    // Layout: [counters...].
    fn export_state(&self) -> Vec<u64> {
        self.table.iter().map(|c| u64::from(c.value())).collect()
    }

    fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        import_counters(&mut self.table, words)
    }
}

/// Gshare: global branch history XORed with the PC indexes a counter table.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<Counter2>,
    history: u64,
    hist_bits: u32,
}

impl GsharePredictor {
    /// `entries` must be a power of two; `hist_bits` ≤ 32.
    ///
    /// # Panics
    ///
    /// Panics on invalid sizing.
    pub fn new(entries: usize, hist_bits: u32) -> GsharePredictor {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(hist_bits <= 32, "history too long");
        GsharePredictor {
            table: vec![Counter2::new(); entries],
            history: 0,
            hist_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.hist_bits) - 1;
        ((pc ^ (self.history & mask)) as usize) & (self.table.len() - 1)
    }
}

impl DirectionPredictor for GsharePredictor {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.train_only(pc, taken);
        self.history = (self.history << 1) | taken as u64;
    }

    fn snapshot_history(&self) -> HistorySnapshot {
        HistorySnapshot(self.history)
    }

    fn restore_history(&mut self, snap: HistorySnapshot) {
        self.history = snap.0;
    }

    fn speculate_history(&mut self, taken: bool) {
        self.history = (self.history << 1) | taken as u64;
    }

    fn train_only(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }

    fn predict_ctx(&mut self, pc: u64) -> (bool, u64) {
        let ctx = self.history;
        let t = self.predict(pc);
        self.speculate_history(t);
        (t, ctx)
    }

    fn train_ctx(&mut self, pc: u64, ctx: u64, taken: bool) {
        let mask = (1u64 << self.hist_bits) - 1;
        let i = ((pc ^ (ctx & mask)) as usize) & (self.table.len() - 1);
        self.table[i].train(taken);
    }

    // Layout: [history, counters...].
    fn export_state(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(1 + self.table.len());
        words.push(self.history);
        words.extend(self.table.iter().map(|c| u64::from(c.value())));
        words
    }

    fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        let (&history, counters) = words
            .split_first()
            .ok_or_else(|| "empty gshare snapshot".to_string())?;
        import_counters(&mut self.table, counters)?;
        self.history = history;
        Ok(())
    }
}

/// Local-history predictor: per-PC history registers index a shared pattern
/// table of 3-bit counters (the 21264's local side).
#[derive(Debug, Clone)]
pub struct LocalPredictor {
    histories: Vec<u16>,
    pattern: Vec<u8>, // 3-bit counters
    hist_bits: u32,
}

impl LocalPredictor {
    /// `entries` history registers of `hist_bits` bits each; the pattern
    /// table has `2^hist_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two `entries` or `hist_bits > 16`.
    pub fn new(entries: usize, hist_bits: u32) -> LocalPredictor {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(hist_bits <= 16, "local history too long");
        LocalPredictor {
            histories: vec![0; entries],
            pattern: vec![3; 1 << hist_bits], // weakly not-taken of 0..=7
            hist_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.histories.len() - 1)
    }

    fn pattern_index(&self, pc: u64) -> usize {
        let mask = (1u16 << self.hist_bits) - 1;
        (self.histories[self.index(pc)] & mask) as usize
    }

    /// Would history value `hist` predict taken? (Used by the tournament
    /// to reconstruct fetch-time component predictions at train time.)
    pub fn pattern_taken(&self, hist: u16) -> bool {
        let mask = (1u16 << self.hist_bits) - 1;
        self.pattern[(hist & mask) as usize] >= 4
    }
}

impl LocalPredictor {
    fn train_pattern(&mut self, hist: u16, taken: bool) {
        let mask = (1u16 << self.hist_bits) - 1;
        let c = &mut self.pattern[(hist & mask) as usize];
        if taken {
            *c = (*c + 1).min(7);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

impl DirectionPredictor for LocalPredictor {
    fn predict(&self, pc: u64) -> bool {
        self.pattern[self.pattern_index(pc)] >= 4
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let hist = self.histories[self.index(pc)];
        self.train_pattern(hist, taken);
        let hi = self.index(pc);
        self.histories[hi] = (self.histories[hi] << 1) | taken as u16;
    }

    fn predict_ctx(&mut self, pc: u64) -> (bool, u64) {
        let hi = self.index(pc);
        let ctx = self.histories[hi];
        let t = self.predict(pc);
        // Speculatively extend this branch's history with the prediction so
        // in-flight instances of the same branch see each other.
        self.histories[hi] = (ctx << 1) | t as u16;
        (t, ctx as u64)
    }

    fn train_ctx(&mut self, _pc: u64, ctx: u64, taken: bool) {
        self.train_pattern(ctx as u16, taken);
    }

    fn repair(&mut self, pc: u64, ctx: u64, taken: bool) {
        // The speculative shifts past this branch were wrong-path: reset to
        // the pre-prediction state extended with the true outcome.
        let hi = self.index(pc);
        self.histories[hi] = ((ctx as u16) << 1) | taken as u16;
    }

    fn train_only(&mut self, pc: u64, taken: bool) {
        let hist = self.histories[self.index(pc)];
        self.train_pattern(hist, taken);
    }

    // Layout: [histories..., pattern counters...].
    fn export_state(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.histories.len() + self.pattern.len());
        words.extend(self.histories.iter().map(|&h| u64::from(h)));
        words.extend(self.pattern.iter().map(|&c| u64::from(c)));
        words
    }

    fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        let want = self.histories.len() + self.pattern.len();
        if words.len() != want {
            return Err(format!(
                "local snapshot has {} words, geometry needs {want}",
                words.len()
            ));
        }
        let (hists, pats) = words.split_at(self.histories.len());
        for (d, &w) in self.histories.iter_mut().zip(hists) {
            *d = u16::try_from(w).map_err(|_| format!("local history {w} out of range"))?;
        }
        for (d, &w) in self.pattern.iter_mut().zip(pats) {
            if w > 7 {
                return Err(format!("pattern counter {w} out of range 0..=7"));
            }
            *d = w as u8;
        }
        Ok(())
    }
}

/// Alpha 21264-style tournament predictor: a local predictor and a global
/// (history-indexed) predictor arbitrated by a choice table indexed by
/// global history.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    local: LocalPredictor,
    global: Vec<Counter2>,
    choice: Vec<Counter2>,
    history: u64,
    hist_bits: u32,
}

impl TournamentPredictor {
    /// The 21264 sizing: 1024×10-bit local histories, 4096-entry global and
    /// choice tables over 12 bits of global history.
    pub fn new_21264_like() -> TournamentPredictor {
        TournamentPredictor::new(1024, 10, 4096, 12)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two table sizes.
    pub fn new(
        local_entries: usize,
        local_bits: u32,
        global_entries: usize,
        global_bits: u32,
    ) -> TournamentPredictor {
        assert!(
            global_entries.is_power_of_two(),
            "global table must be a power of two"
        );
        TournamentPredictor {
            local: LocalPredictor::new(local_entries, local_bits),
            global: vec![Counter2::new(); global_entries],
            choice: vec![Counter2::new(); global_entries],
            history: 0,
            hist_bits: global_bits,
        }
    }

    fn gindex(&self) -> usize {
        let mask = (1u64 << self.hist_bits) - 1;
        ((self.history & mask) as usize) & (self.global.len() - 1)
    }

    fn local_pattern_taken(&self, hist: u16) -> bool {
        self.local.pattern_taken(hist)
    }
}

impl DirectionPredictor for TournamentPredictor {
    fn predict(&self, pc: u64) -> bool {
        let use_global = self.choice[self.gindex()].taken();
        if use_global {
            self.global[self.gindex()].taken()
        } else {
            self.local.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.train_only(pc, taken);
        self.history = (self.history << 1) | taken as u64;
    }

    fn snapshot_history(&self) -> HistorySnapshot {
        HistorySnapshot(self.history)
    }

    fn restore_history(&mut self, snap: HistorySnapshot) {
        self.history = snap.0;
    }

    fn speculate_history(&mut self, taken: bool) {
        self.history = (self.history << 1) | taken as u64;
    }

    fn train_only(&mut self, pc: u64, taken: bool) {
        let gi = self.gindex();
        let global_pred = self.global[gi].taken();
        let local_pred = self.local.predict(pc);
        // Train the choice table toward whichever component was right
        // (only when they disagree).
        if global_pred != local_pred {
            self.choice[gi].train(global_pred == taken);
        }
        self.global[gi].train(taken);
        self.local.update(pc, taken);
    }

    fn predict_ctx(&mut self, pc: u64) -> (bool, u64) {
        let gctx = self.history;
        let gi = self.gindex();
        let (lt, lctx) = self.local.predict_ctx(pc);
        let t = if self.choice[gi].taken() {
            self.global[gi].taken()
        } else {
            lt
        };
        // Keep the local speculative history consistent with the actual
        // prediction when the global side overrides it.
        if t != lt {
            self.local.repair(pc, lctx, t);
        }
        self.speculate_history(t);
        (t, (lctx & 0xffff) | (gctx << 16))
    }

    fn train_ctx(&mut self, pc: u64, ctx: u64, taken: bool) {
        let lctx = ctx & 0xffff;
        let gctx = ctx >> 16;
        let mask = (1u64 << self.hist_bits) - 1;
        let gi = ((gctx & mask) as usize) & (self.global.len() - 1);
        let global_pred = self.global[gi].taken();
        let lmask = (1u16 << 10) - 1; // matches local construction below
        let local_pred = {
            // Reconstruct the local prediction made at fetch.
            let _ = lmask;
            self.local_pattern_taken(lctx as u16)
        };
        if global_pred != local_pred {
            self.choice[gi].train(global_pred == taken);
        }
        self.global[gi].train(taken);
        self.local.train_ctx(pc, lctx, taken);
    }

    fn repair(&mut self, pc: u64, ctx: u64, taken: bool) {
        self.local.repair(pc, ctx & 0xffff, taken);
    }

    // Layout: [history, global..., choice..., local state...].
    fn export_state(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(1 + 2 * self.global.len());
        words.push(self.history);
        words.extend(self.global.iter().map(|c| u64::from(c.value())));
        words.extend(self.choice.iter().map(|c| u64::from(c.value())));
        words.extend(self.local.export_state());
        words
    }

    fn import_state(&mut self, words: &[u64]) -> Result<(), String> {
        let (&history, rest) = words
            .split_first()
            .ok_or_else(|| "empty tournament snapshot".to_string())?;
        let n = self.global.len();
        if rest.len() < 2 * n {
            return Err(format!(
                "tournament snapshot has {} words, tables need {}",
                rest.len(),
                2 * n
            ));
        }
        import_counters(&mut self.global, &rest[..n])?;
        import_counters(&mut self.choice, &rest[n..2 * n])?;
        self.local.import_state(&rest[2 * n..])?;
        self.history = history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter2_saturates() {
        let mut c = Counter2::new();
        assert_eq!(c.value(), 1);
        c.train(false);
        c.train(false);
        assert_eq!(c.value(), 0);
        for _ in 0..5 {
            c.train(true);
        }
        assert_eq!(c.value(), 3);
        assert!(c.taken());
    }

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = BimodalPredictor::new(16);
        for _ in 0..4 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
        for _ in 0..4 {
            p.update(0x80, false);
        }
        assert!(!p.predict(0x80));
    }

    #[test]
    fn bimodal_aliases_by_table_size() {
        let mut p = BimodalPredictor::new(16);
        for _ in 0..4 {
            p.update(0, true);
        }
        assert!(p.predict(16), "pc 16 aliases pc 0 in a 16-entry table");
    }

    #[test]
    fn gshare_learns_history_correlated_patterns() {
        // Branch taken iff the previous branch was not taken (alternating)
        // is unlearnable by bimodal but trivial for gshare.
        let mut p = GsharePredictor::new(256, 8);
        let pc = 0x1234;
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..200 {
            outcome = !outcome;
            if i >= 100 && p.predict(pc) == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct >= 95,
            "gshare should nail an alternating pattern, got {correct}/100"
        );
    }

    #[test]
    fn local_learns_short_periodic_patterns() {
        // Period-3 pattern T T N per PC.
        let mut p = LocalPredictor::new(64, 10);
        let pat = [true, true, false];
        let pc = 0x88;
        let mut correct = 0;
        for i in 0..300 {
            let outcome = pat[i % 3];
            if i >= 150 && p.predict(pc) == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        assert!(
            correct >= 140,
            "local should learn period-3, got {correct}/150"
        );
    }

    #[test]
    fn tournament_beats_both_components_on_mixed_workload() {
        let mut t = TournamentPredictor::new_21264_like();
        // PC A follows a local period-2 pattern; PC B follows global
        // correlation (equal to A's last outcome).
        let (a, b) = (0x100, 0x200);
        let mut a_out = false;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400 {
            a_out = !a_out;
            if i >= 200 {
                total += 2;
                if t.predict(a) == a_out {
                    correct += 1;
                }
            }
            t.update(a, a_out);
            let b_out = a_out;
            if i >= 200 && t.predict(b) == b_out {
                correct += 1;
            }
            t.update(b, b_out);
        }
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn history_snapshot_round_trips() {
        let mut p = GsharePredictor::new(64, 8);
        p.update(1, true);
        p.update(1, false);
        let snap = p.snapshot_history();
        p.speculate_history(true);
        p.speculate_history(true);
        assert_ne!(p.snapshot_history(), snap);
        p.restore_history(snap);
        assert_eq!(p.snapshot_history(), snap);
    }

    #[test]
    fn always_taken_is_constant() {
        let mut p = AlwaysTaken;
        assert!(p.predict(0));
        p.update(0, false);
        assert!(p.predict(0));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = BimodalPredictor::new(100);
    }

    #[test]
    fn predictor_state_round_trips_every_kind() {
        for kind in [
            PredictorKind::Taken,
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Local,
            PredictorKind::Tournament,
        ] {
            let mut trained = crate::build_predictor(kind);
            for i in 0..2000u64 {
                trained.update((i * 8) % 1024, (i / 3) % 2 == 0);
            }
            let words = trained.export_state();
            let mut fresh = crate::build_predictor(kind);
            fresh
                .import_state(&words)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(fresh.export_state(), words, "{kind:?}");
            for pc in (0..1024u64).step_by(8) {
                assert_eq!(trained.predict(pc), fresh.predict(pc), "{kind:?} pc {pc}");
            }
        }
    }

    #[test]
    fn corrupt_predictor_snapshots_are_rejected() {
        let mut p = BimodalPredictor::new(16);
        assert!(p.import_state(&[0; 15]).is_err(), "wrong length");
        assert!(p.import_state(&[9; 16]).is_err(), "out-of-range counter");
        let mut t = TournamentPredictor::new(16, 4, 16, 4);
        assert!(t.import_state(&[]).is_err());
        let mut a = AlwaysTaken;
        assert!(a.import_state(&[]).is_ok());
        assert!(a.import_state(&[1]).is_err());
    }
}
