//! Branch prediction structures for the *Loose Loops* reproduction.
//!
//! The paper's base machine speculates through the branch-resolution loop
//! with a hardware predictor; the machine it is modelled on (Alpha
//! 21264/21364) uses a tournament predictor plus a branch target buffer, a
//! return-address stack, and a next-line predictor (the tight loop of the
//! paper's Figure 2).
//!
//! Everything here is deterministic and checkpointable: global history can
//! be saved at prediction time and restored on a mis-speculation, exactly
//! like the hardware recovery the paper describes.
//!
//! - [`BimodalPredictor`], [`GsharePredictor`], [`LocalPredictor`],
//!   [`TournamentPredictor`] — direction predictors behind the
//!   [`DirectionPredictor`] trait, selected via [`PredictorKind`].
//! - [`Btb`] — branch target buffer.
//! - [`ReturnAddressStack`] — RAS with checkpoint/restore.
//! - [`LinePredictor`] — next-fetch-line predictor (tight loop; a wrong
//!   line prediction costs a single fetch bubble).

pub mod btb;
pub mod direction;
pub mod line;
pub mod ras;

pub use btb::Btb;
pub use direction::{
    AlwaysTaken, BimodalPredictor, DirectionPredictor, GsharePredictor, HistorySnapshot,
    LocalPredictor, PredictorKind, TournamentPredictor,
};
pub use line::LinePredictor;
pub use ras::{RasCheckpoint, ReturnAddressStack};

/// Build a boxed direction predictor of the given kind with default sizing.
pub fn build_predictor(kind: PredictorKind) -> Box<dyn DirectionPredictor> {
    match kind {
        PredictorKind::Taken => Box::new(AlwaysTaken),
        PredictorKind::Bimodal => Box::new(BimodalPredictor::new(4096)),
        PredictorKind::Gshare => Box::new(GsharePredictor::new(4096, 12)),
        PredictorKind::Local => Box::new(LocalPredictor::new(1024, 10)),
        PredictorKind::Tournament => Box::new(TournamentPredictor::new_21264_like()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_kinds() {
        for kind in [
            PredictorKind::Taken,
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Local,
            PredictorKind::Tournament,
        ] {
            let mut p = build_predictor(kind);
            let _ = p.predict(0x100);
            p.update(0x100, true);
            let snap = p.snapshot_history();
            p.restore_history(snap);
        }
    }
}
