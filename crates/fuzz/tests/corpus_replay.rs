//! Tier-1 regression gate: every shrunk reproducer checked into
//! `fuzz/corpus/` must replay clean — the timing machine must match the
//! ISA oracle on these programs and configurations forever.
//!
//! The checked-in entries were caught by the differential campaign
//! against the `chaos` feature's injected branch-recovery defect and then
//! minimized; replayed on the healthy pipeline they pin down exactly the
//! behaviours that once diverged. The `regenerate_corpus` writer below
//! (`--ignored`) rebuilds them from scratch.

use looseloops_fuzz::{corpus, run_case, shrink, FuzzCase};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    assert!(
        entries.len() >= 5,
        "corpus must hold at least 5 regression programs, found {}",
        entries.len()
    );
    for entry in entries {
        let out = run_case(&entry.case);
        assert!(
            out.finding.is_none(),
            "corpus entry `{}` (recorded: {}) diverges again: {}",
            entry.name,
            entry.recorded_finding,
            out.finding.unwrap()
        );
        assert!(
            out.retired > 0,
            "corpus entry `{}` retired nothing",
            entry.name
        );
    }
}

#[test]
fn a_stale_format_version_fails_loudly() {
    let dir = corpus_dir();
    let entries = corpus::load_dir(&dir).expect("corpus must load");
    assert!(!entries.is_empty());
    // Rewrite one entry's banner to a future version in a temp dir: the
    // loader must refuse the whole directory, not skip the file.
    let tmp = std::env::temp_dir().join("looseloops-fuzz-stale-corpus");
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let mut names = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ll"))
        .collect::<Vec<_>>();
    names.sort();
    let text = std::fs::read_to_string(&names[0]).unwrap();
    std::fs::write(
        tmp.join("stale.ll"),
        text.replace("corpus v1", "corpus v999"),
    )
    .unwrap();
    let err = corpus::load_dir(&tmp).expect_err("stale banner must be a hard error");
    assert!(
        matches!(err, corpus::CorpusError::BadBanner { .. }),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Rebuild `fuzz/corpus/` from scratch: run the campaign against the
/// injected `chaos` defect, shrink every catch, keep the first six, and
/// verify each one replays clean with the defect off before writing it.
///
/// Run with:
/// `cargo test -p looseloops-fuzz --test corpus_replay -- --ignored regenerate_corpus`
#[test]
#[ignore = "writer tool: regenerates the checked-in corpus"]
fn regenerate_corpus() {
    const WANT: usize = 6;
    let dir = corpus_dir();
    let mut written = 0;
    for seed in 0..500u64 {
        let mut case = FuzzCase::from_seed(seed, None);
        case.config.chaos_branch_recovery_off_by_one = true;
        if run_case(&case).finding.is_none() {
            continue;
        }
        let Some(shrunk) = shrink(&case) else {
            continue;
        };
        // The corpus stores the healthy config (the chaos knob is not
        // serialized); the entry is only useful if it passes without the
        // defect and the program is genuinely small.
        let mut healed = shrunk.case.clone();
        healed.config.chaos_branch_recovery_off_by_one = false;
        if run_case(&healed).finding.is_some() {
            continue;
        }
        let name = format!("chaos-branch-recovery-seed-{seed:04}");
        let path = corpus::save_entry(&dir, &name, &shrunk.case, &shrunk.finding)
            .expect("write corpus entry");
        println!(
            "wrote {} ({} insts, {}): {}",
            path.display(),
            shrunk
                .case
                .programs
                .iter()
                .map(|p| p.insts.len())
                .sum::<usize>(),
            shrunk.case.label(),
            shrunk.finding
        );
        written += 1;
        if written >= WANT {
            break;
        }
    }
    assert!(written >= WANT, "only caught {written} seeds out of 500");
}
