//! Acceptance test for the whole fuzz loop: compile in a seeded pipeline
//! defect (the `chaos` feature's off-by-one in branch-recovery squash
//! redirect), prove the differential campaign catches it quickly, and
//! prove the shrinker reduces the catch to a tiny reproducer.
//!
//! The `chaos` feature only compiles the knob in; it still defaults to
//! off, so the same binary first demonstrates the healthy pipeline passes
//! the identical seeds.

use looseloops_fuzz::{run_case, shrink, FindingKind, FuzzCase};

/// The injected bug must be caught within this many seeds (acceptance
/// criterion: 200).
const SEED_BUDGET: u64 = 200;

fn chaos_case(seed: u64) -> FuzzCase {
    let mut case = FuzzCase::from_seed(seed, None);
    case.config.chaos_branch_recovery_off_by_one = true;
    case
}

#[test]
fn injected_branch_recovery_bug_is_caught_and_shrinks_small() {
    let mut caught = None;
    for seed in 0..SEED_BUDGET {
        let case = chaos_case(seed);
        let out = run_case(&case);
        if let Some(finding) = out.finding {
            assert_ne!(
                finding.kind,
                FindingKind::OracleError,
                "generator bug, not a pipeline catch: {finding}"
            );
            caught = Some((seed, case, finding));
            break;
        }
    }
    let (seed, case, finding) =
        caught.expect("off-by-one branch-recovery bug must be caught within 200 seeds");
    println!("caught at seed {seed}: {finding}");

    // The same seed with the chaos knob off must pass: the divergence is
    // the injected defect, not generator or harness noise.
    let healthy = FuzzCase::from_seed(seed, None);
    assert!(
        run_case(&healthy).finding.is_none(),
        "seed {seed} must pass without the injected defect"
    );

    // Shrink: the reproducer must come out at <= 10 instructions.
    let shrunk = shrink(&case).expect("failing case must shrink");
    let insts: usize = shrunk.case.programs.iter().map(|p| p.insts.len()).sum();
    println!(
        "shrunk to {insts} instruction(s) in {} attempts: {}",
        shrunk.attempts, shrunk.finding
    );
    assert!(
        insts <= 10,
        "reproducer must shrink to <= 10 instructions, got {insts}"
    );
    // The shrunk case still carries the chaos knob and still fails...
    assert!(shrunk.case.config.chaos_branch_recovery_off_by_one);
    assert!(run_case(&shrunk.case).finding.is_some());
    // ...and turning the knob off heals it, so the reproducer isolates
    // exactly the injected defect.
    let mut healed = shrunk.case.clone();
    healed.config.chaos_branch_recovery_off_by_one = false;
    assert!(
        run_case(&healed).finding.is_none(),
        "shrunk reproducer must pass once the defect is disabled"
    );
}
