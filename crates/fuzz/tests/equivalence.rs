//! Fast-forward equivalence gate: every corpus reproducer must reach the
//! same architectural end state whether it is simulated in detail from
//! cycle 0 or functionally fast-forwarded half-way and resumed in detail
//! from a checkpoint.
//!
//! The corpus programs are shrunk adversarial cases — short, branchy, and
//! historically good at exposing pipeline/oracle drift — which makes them
//! a sharper probe of the checkpoint restore path than the benchmark
//! proxies. The resumed machine runs with ISA verification on, so the
//! post-resume retire stream is checked instruction-by-instruction, not
//! just at the final state.

use looseloops::checkpoint::{capture_checkpoint, restore_into, Checkpoint};
use looseloops::Machine;
use looseloops_fuzz::{corpus, FuzzCase};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

#[test]
fn corpus_cases_survive_fast_forward_then_detailed_resume() {
    let entries = corpus::load_dir(&corpus_dir()).expect("corpus must load");
    assert!(!entries.is_empty());
    let mut resumed_cases = 0;
    for entry in entries {
        let case = &entry.case;

        // Reference: fully detailed from cycle 0.
        let mut reference = Machine::new(case.config.clone(), case.programs.clone())
            .expect("corpus config must construct");
        reference
            .run(u64::MAX, case.max_cycles)
            .unwrap_or_else(|e| panic!("`{}` detailed run failed: {e}", entry.name));
        assert!(reference.is_done(), "`{}` did not halt", entry.name);
        let total = reference.stats().total_retired();
        if total < 4 {
            continue; // nothing worth fast-forwarding over
        }

        // Fast-forward half the work functionally, resume in detail with
        // the ISA oracle checking every post-resume retirement.
        let ckpt = capture_checkpoint(&case.config, case.programs.clone(), total / 2)
            .unwrap_or_else(|e| panic!("`{}` functional warm-up failed: {e}", entry.name));
        let mut resumed = Machine::new(case.config.clone(), case.programs.clone()).unwrap();
        restore_into(&mut resumed, &ckpt)
            .unwrap_or_else(|e| panic!("`{}` restore failed: {e}", entry.name));
        resumed.enable_verification();
        resumed
            .run(u64::MAX, case.max_cycles)
            .unwrap_or_else(|e| panic!("`{}` resumed run diverged: {e}", entry.name));
        assert!(resumed.is_done(), "`{}` resume did not halt", entry.name);

        // The functional prefix plus the detailed suffix must cover the
        // whole retire stream exactly once.
        assert_eq!(
            ckpt.instructions + resumed.stats().total_retired(),
            total,
            "`{}`: fast-forwarded {} + resumed {} != detailed {}",
            entry.name,
            ckpt.instructions,
            resumed.stats().total_retired(),
            total
        );

        // Final architectural state and memory must be bit-identical to
        // the reference — checkpoints may not leak into architecture.
        for t in 0..case.programs.len() {
            let d = reference.arch_state(t).diff(&resumed.arch_state(t));
            assert!(
                d.is_empty(),
                "`{}` thread {t} end-state drift: {}",
                entry.name,
                d.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
        let md = reference.data_mem().diff(resumed.data_mem());
        assert!(
            md.is_empty(),
            "`{}` memory drift: {}",
            entry.name,
            md.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
        resumed_cases += 1;
    }
    assert!(
        resumed_cases >= 3,
        "only {resumed_cases} corpus cases exercised the resume path"
    );
}

#[test]
fn checkpoints_round_trip_byte_identically_over_generated_programs() {
    // Serialization property check: encode → decode → re-encode must be
    // the identity on bytes. Driven by the corpus (shrunk adversarial
    // cases) plus a band of freshly generated fuzz cases, so the format
    // is exercised across varied predictors, policies, thread counts,
    // and memory footprints.
    let mut cases: Vec<(String, FuzzCase)> = corpus::load_dir(&corpus_dir())
        .expect("corpus must load")
        .into_iter()
        .map(|e| (e.name, e.case))
        .collect();
    cases.extend((0..24u64).map(|seed| (format!("seed-{seed}"), FuzzCase::from_seed(seed, None))));
    for (name, case) in cases {
        let ckpt = capture_checkpoint(&case.config, case.programs.clone(), 64)
            .unwrap_or_else(|e| panic!("`{name}` warm-up failed: {e}"));
        let bytes = ckpt.encode();
        let back =
            Checkpoint::decode(&bytes).unwrap_or_else(|e| panic!("`{name}` decode failed: {e}"));
        assert_eq!(
            bytes,
            back.encode(),
            "`{name}`: checkpoint encoding is not a fixed point"
        );
    }
}
