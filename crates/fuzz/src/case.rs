//! One fuzz case: a sampled machine configuration plus generated programs,
//! and the differential run that compares the timing pipeline against the
//! ISA oracle.
//!
//! A case fails when any of these diverge:
//! - the **retire stream**: every retired instruction's PC, decoded form,
//!   written register/value, memory address, branch outcome and next PC,
//!   compared in architectural order per thread;
//! - the **final architectural state**: all 64 registers, the PC and the
//!   halt flag, via [`ArchState::diff`];
//! - the **final data memory** (single-thread cases), via
//!   [`FlatMemory::diff`];
//! - **liveness**: the machine must halt within the cycle budget (the
//!   watchdog is armed, so wedges surface as typed deadlocks, not
//!   timeouts).
//!
//! Failures are *data* (a [`Finding`]), never panics — the shrinker needs
//! to re-run candidate cases by the thousand.

use crate::gen::{generate, GenProfile};
use looseloops::parallel_map;
use looseloops_isa::{ArchState, FlatMemory, Program, Retired};
use looseloops_pipeline::{FaultPlan, LoadSpecPolicy, Machine, PipelineConfig};
use looseloops_rng::Rng;
use std::fmt;

/// What kind of divergence a case produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The functional oracle itself failed (PC out of range / step budget)
    /// — a generator bug, not a pipeline bug. The shrinker rejects
    /// candidates that degrade into this.
    OracleError,
    /// The timing machine returned a [`looseloops_pipeline::SimError`]
    /// (invalid config, deadlock, invariant violation).
    Sim,
    /// The machine did not retire its halt within the cycle budget.
    HaltMismatch,
    /// The retire streams differ (first mismatching retirement).
    RetireDivergence,
    /// Final register/PC/halt state differs after both sides halted.
    FinalState,
    /// Final data memory differs after both sides halted.
    MemoryDivergence,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingKind::OracleError => "oracle error",
            FindingKind::Sim => "simulation error",
            FindingKind::HaltMismatch => "halt mismatch",
            FindingKind::RetireDivergence => "retire divergence",
            FindingKind::FinalState => "final-state divergence",
            FindingKind::MemoryDivergence => "memory divergence",
        })
    }
}

/// One observed failure, with a human-readable detail line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Failure category.
    pub kind: FindingKind,
    /// What diverged, exactly.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// A fully materialized differential test case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Campaign seed this case was derived from (0 for corpus replays).
    pub seed: u64,
    /// Generator profile (kept for labeling; the programs are already
    /// materialized).
    pub profile: GenProfile,
    /// Machine configuration under test (auditor and watchdog always on).
    pub config: PipelineConfig,
    /// One program per hardware thread.
    pub programs: Vec<Program>,
    /// Timing-simulation cycle budget.
    pub max_cycles: u64,
    /// Oracle step budget per thread.
    pub oracle_steps: u64,
}

/// Statistics from one executed case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The divergence, if any.
    pub finding: Option<Finding>,
    /// Instructions the timing machine retired.
    pub retired: u64,
    /// Cycles the timing machine ran.
    pub cycles: u64,
}

impl FuzzCase {
    /// Derive a complete case from a campaign seed: profile, configuration
    /// (valid by construction) and per-thread programs all come from one
    /// deterministic RNG stream.
    pub fn from_seed(seed: u64, force_profile: Option<GenProfile>) -> FuzzCase {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0xf0cced);
        let profile = force_profile.unwrap_or_else(|| *rng.choose(&GenProfile::all()).unwrap());
        let config = sample_config(&mut rng);
        let programs = (0..config.threads)
            .map(|t| generate(seed, profile, t))
            .collect();
        FuzzCase {
            seed,
            profile,
            config,
            programs,
            max_cycles: 2_000_000,
            oracle_steps: 1_000_000,
        }
    }

    /// Short label for logs.
    pub fn label(&self) -> String {
        format!("seed={:#x} profile={}", self.seed, self.profile)
    }
}

/// Sample a valid machine configuration: scheme × RF latency × latency
/// jitter × load policy × predictor × SMT × fault storm. Auditor and
/// watchdog are always armed so structural bugs surface even when the
/// architectural results still match.
fn sample_config(rng: &mut Rng) -> PipelineConfig {
    let rf = *rng.choose(&[3u32, 5, 7]).unwrap();
    let mut cfg = if rng.gen_bool(0.5) {
        PipelineConfig::base_for_rf(rf)
    } else {
        PipelineConfig::dra_for_rf(rf)
    };
    cfg.dec_iq_stages += rng.gen_range(0u32..3);
    cfg.iq_ex_stages += rng.gen_range(0u32..3);
    cfg.load_policy = *rng
        .choose(&[
            LoadSpecPolicy::ReissueTree,
            LoadSpecPolicy::ReissueShadow,
            LoadSpecPolicy::Stall,
            LoadSpecPolicy::Refetch,
        ])
        .unwrap();
    {
        use looseloops::branch::PredictorKind::*;
        cfg.predictor = *rng
            .choose(&[Tournament, Gshare, Local, Bimodal, Taken])
            .unwrap();
    }
    if rng.gen_bool(0.25) {
        cfg.threads = 2;
    }
    cfg.audit = true;
    cfg.watchdog_window = 50_000;
    if rng.gen_bool(0.6) {
        let mut plan = FaultPlan {
            seed: rng.next_u64(),
            ..FaultPlan::default()
        };
        if rng.gen_bool(0.7) {
            plan.branch_flip_rate = rng.gen_f64() * 0.3;
        }
        if rng.gen_bool(0.7) {
            plan.load_spike_rate = rng.gen_f64() * 0.3;
            plan.load_spike_cycles = rng.gen_range(1u64..120);
        }
        if rng.gen_bool(0.5) {
            plan.operand_miss_rate = rng.gen_f64() * 0.2;
        }
        if rng.gen_bool(0.3) {
            let start = rng.gen_range(0u64..5_000);
            plan = plan.in_window(start, start + rng.gen_range(500u64..10_000));
        }
        cfg.faults = Some(plan);
    }
    debug_assert!(cfg.validate().is_ok());
    cfg
}

/// Run the oracle for one program, collecting its full retire stream.
fn oracle_run(
    prog: &Program,
    steps: u64,
) -> Result<(ArchState, FlatMemory, Vec<Retired>), Finding> {
    let mut mem = FlatMemory::with_program(prog);
    let mut st = ArchState::new(prog);
    let mut retires = Vec::new();
    while !st.is_halted() {
        if retires.len() as u64 >= steps {
            return Err(Finding {
                kind: FindingKind::OracleError,
                detail: format!("oracle exhausted {steps} steps without halting"),
            });
        }
        match st.step(prog, &mut mem) {
            Ok(r) => retires.push(r),
            Err(e) => {
                return Err(Finding {
                    kind: FindingKind::OracleError,
                    detail: format!("oracle at pc {}: {e}", st.pc()),
                })
            }
        }
    }
    Ok((st, mem, retires))
}

/// Execute one case differentially. Never panics on divergence — failures
/// come back as [`Finding`]s.
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let fail = |kind, detail| CaseOutcome {
        finding: Some(Finding { kind, detail }),
        retired: 0,
        cycles: 0,
    };

    // Oracle side, per thread.
    let mut oracle = Vec::with_capacity(case.programs.len());
    for prog in &case.programs {
        match oracle_run(prog, case.oracle_steps) {
            Ok(o) => oracle.push(o),
            Err(f) => return fail(f.kind, f.detail),
        }
    }

    // Timing side.
    let mut m = match Machine::new(case.config.clone(), case.programs.clone()) {
        Ok(m) => m,
        Err(e) => return fail(FindingKind::Sim, format!("machine construction: {e}")),
    };
    m.enable_retire_capture();
    if let Err(e) = m.run(u64::MAX, case.max_cycles) {
        return fail(FindingKind::Sim, e.to_string());
    }
    let cycles = m.cycle();
    let retired = m.stats().total_retired();
    if !m.is_done() {
        return fail(
            FindingKind::HaltMismatch,
            format!(
                "machine did not halt within {} cycles ({} retired)",
                case.max_cycles, retired
            ),
        );
    }

    // Per-thread retire streams, in architectural order.
    let all = m.take_retires();
    for (t, (o_state, o_mem, o_retires)) in oracle.iter().enumerate() {
        let machine_stream: Vec<&Retired> = all
            .iter()
            .filter(|(th, _)| *th == t)
            .map(|(_, r)| r)
            .collect();
        if machine_stream.len() != o_retires.len() {
            return fail(
                FindingKind::RetireDivergence,
                format!(
                    "thread {t}: oracle retired {} instructions, machine {}",
                    o_retires.len(),
                    machine_stream.len()
                ),
            );
        }
        for (i, (o, g)) in o_retires.iter().zip(&machine_stream).enumerate() {
            if o != *g {
                return fail(
                    FindingKind::RetireDivergence,
                    format!("thread {t} retirement #{i}: oracle {o:?} != machine {g:?}"),
                );
            }
        }
        // Final architectural state through the public diff API.
        let d = o_state.diff(&m.arch_state(t));
        if !d.is_empty() {
            return fail(
                FindingKind::FinalState,
                format!(
                    "thread {t}: {}",
                    d.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            );
        }
        // Memory: only meaningful single-threaded (SMT shares one image).
        if case.programs.len() == 1 {
            let md = o_mem.diff(m.data_mem());
            if !md.is_empty() {
                return fail(
                    FindingKind::MemoryDivergence,
                    md.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join("; "),
                );
            }
        }
    }

    CaseOutcome {
        finding: None,
        retired,
        cycles,
    }
}

/// Run cases for `seeds` consecutive seeds starting at `start`, on `jobs`
/// workers. Results are index-ordered and bit-identical whatever the
/// worker count (the cases are independent and the pool reassembles by
/// index — see [`looseloops::parallel_map`]).
pub fn run_seed_range(
    start: u64,
    seeds: u64,
    jobs: usize,
    profile: Option<GenProfile>,
) -> Vec<(u64, CaseOutcome)> {
    parallel_map(jobs, seeds as usize, |i| {
        let seed = start + i as u64;
        let case = FuzzCase::from_seed(seed, profile);
        (seed, run_case(&case))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_configs_are_always_valid() {
        let mut rng = Rng::seed_from_u64(0xc0ffee);
        for _ in 0..200 {
            sample_config(&mut rng).validate().unwrap();
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = FuzzCase::from_seed(42, None);
        let b = FuzzCase::from_seed(42, None);
        assert_eq!(format!("{:?}", a.config), format!("{:?}", b.config));
        assert_eq!(a.programs.len(), b.programs.len());
        for (pa, pb) in a.programs.iter().zip(&b.programs) {
            assert_eq!(pa.insts, pb.insts);
        }
    }

    #[test]
    fn a_healthy_pipeline_passes_a_seed_sweep() {
        for seed in 0..8u64 {
            let case = FuzzCase::from_seed(seed, None);
            let out = run_case(&case);
            assert!(
                out.finding.is_none(),
                "{}: {}",
                case.label(),
                out.finding.unwrap()
            );
            assert!(out.retired > 0);
        }
    }
}
