//! Delta-debugging for failing fuzz cases.
//!
//! Shrinking runs in two phases:
//!
//! 1. **Configuration simplification** — mutate the failing case's config
//!    one knob at a time (drop the fault storm, drop the second thread,
//!    fall back to the default predictor and load policy) and keep each
//!    mutation only if the case still fails. Knobs are mutated on the
//!    *current* config, never replaced wholesale, so orthogonal settings
//!    (including any compiled-in chaos flags) survive.
//! 2. **Instruction ddmin** — greedy chunk-halving removal over the
//!    program's instruction list. Removing instructions shifts every
//!    PC-relative displacement, so each candidate rebuilds branch/call
//!    immediates against the new indices and is discarded outright if a
//!    kept control op targeted a removed instruction.
//!
//! A candidate counts as "still failing" only if the differential run
//! produces a finding that is *not* [`FindingKind::OracleError`]: a
//! shrink step that merely breaks the program (so the functional oracle
//! itself faults) has destroyed the evidence, not reduced it.

use crate::case::{run_case, Finding, FindingKind, FuzzCase};
use looseloops::branch::PredictorKind;
use looseloops_isa::{Class, Inst, Program};
use looseloops_pipeline::LoadSpecPolicy;

/// Cap on differential runs per shrink; keeps worst-case shrinks bounded.
const MAX_ATTEMPTS: u64 = 2_000;

/// A minimized failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The reduced case (still failing).
    pub case: FuzzCase,
    /// The finding the reduced case produces.
    pub finding: Finding,
    /// Differential runs spent shrinking.
    pub attempts: u64,
}

struct Shrinker {
    attempts: u64,
}

impl Shrinker {
    /// Re-run a candidate; `Some(finding)` iff it still fails usefully.
    fn still_fails(&mut self, case: &FuzzCase) -> Option<Finding> {
        if self.attempts >= MAX_ATTEMPTS {
            return None;
        }
        self.attempts += 1;
        match run_case(case).finding {
            Some(f) if f.kind != FindingKind::OracleError => Some(f),
            _ => None,
        }
    }
}

/// Minimize a failing case. Returns `None` if the case does not actually
/// fail (or fails only as an oracle error).
pub fn shrink(case: &FuzzCase) -> Option<Shrunk> {
    let mut sh = Shrinker { attempts: 0 };
    let mut cur = case.clone();
    let mut finding = sh.still_fails(&cur)?;

    // Phase 1: configuration simplification, one knob at a time. For SMT
    // cases, try keeping each thread's program alone on a single-thread
    // machine — the divergence may live in either program.
    {
        let mut cand = cur.clone();
        cand.config.faults = None;
        if let Some(f) = sh.still_fails(&cand) {
            cur = cand;
            finding = f;
        }
    }
    for keep in 0..cur.programs.len() {
        if cur.programs.len() == 1 {
            break;
        }
        let mut cand = cur.clone();
        cand.config.threads = 1;
        cand.programs = vec![cand.programs[keep].clone()];
        if let Some(f) = sh.still_fails(&cand) {
            cur = cand;
            finding = f;
            break;
        }
    }
    for knob in [
        (|c: &mut FuzzCase| c.config.predictor = PredictorKind::Tournament) as fn(&mut FuzzCase),
        |c| c.config.load_policy = LoadSpecPolicy::ReissueTree,
    ] {
        let mut cand = cur.clone();
        knob(&mut cand);
        if let Some(f) = sh.still_fails(&cand) {
            cur = cand;
            finding = f;
        }
    }

    // Phase 2: instruction ddmin, per program (usually just one left).
    for t in 0..cur.programs.len() {
        let mut insts = cur.programs[t].insts.clone();
        let mut chunk = (insts.len() / 2).max(1);
        'outer: while chunk >= 1 && sh.attempts < MAX_ATTEMPTS {
            let mut start = 0;
            while start < insts.len() {
                let end = (start + chunk).min(insts.len());
                if let Some(reduced) = remove_range(&cur.programs[t], &insts, start, end) {
                    let mut cand = cur.clone();
                    cand.programs[t] = reduced;
                    if let Some(f) = sh.still_fails(&cand) {
                        insts = cand.programs[t].insts.clone();
                        cur = cand;
                        finding = f;
                        chunk = (insts.len() / 2).max(1);
                        continue 'outer;
                    }
                }
                start = end;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    Some(Shrunk {
        case: cur,
        finding,
        attempts: sh.attempts,
    })
}

/// Rebuild `base`'s program with instructions `[start, end)` removed,
/// remapping every PC-relative displacement. Returns `None` when the
/// candidate is structurally invalid: the entry instruction was removed,
/// nothing remains, or a surviving branch/call targeted a removed (or now
/// out-of-range) instruction.
fn remove_range(base: &Program, insts: &[Inst], start: usize, end: usize) -> Option<Program> {
    let n = insts.len();
    if end - start >= n {
        return None;
    }
    // Old index -> new index for kept instructions.
    let mut map = vec![usize::MAX; n];
    let mut kept = Vec::with_capacity(n - (end - start));
    for (old, inst) in insts.iter().enumerate() {
        if old < start || old >= end {
            map[old] = kept.len();
            kept.push(*inst);
        }
    }
    let entry = base.entry as usize;
    if entry >= n || map[entry] == usize::MAX {
        return None;
    }
    for (old, inst) in insts.iter().enumerate() {
        if map[old] == usize::MAX {
            continue;
        }
        if matches!(inst.class(), Class::CondBranch | Class::Branch) {
            let target = old as i64 + 1 + inst.imm as i64;
            if target < 0 || target >= n as i64 || map[target as usize] == usize::MAX {
                return None;
            }
            let new_imm = map[target as usize] as i64 - (map[old] as i64 + 1);
            kept[map[old]].imm = new_imm as i32;
        }
    }
    Some(Program {
        name: base.name.clone(),
        insts: kept,
        entry: map[entry] as u64,
        init_data: base.init_data.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{Inst, Reg};

    fn straight_line() -> Program {
        // 0: addi r4, r31, 1
        // 1: addi r5, r31, 2
        // 2: bne  r4, +1  (skip 3)
        // 3: addi r6, r31, 3   <- branch target region
        // 4: halt
        Program {
            name: "t".into(),
            insts: vec![
                Inst::op_ri(looseloops_isa::Opcode::Add, Reg::int(4), Reg::int(31), 1),
                Inst::op_ri(looseloops_isa::Opcode::Add, Reg::int(5), Reg::int(31), 2),
                Inst::branch(looseloops_isa::Opcode::Bne, Reg::int(4), 1),
                Inst::op_ri(looseloops_isa::Opcode::Add, Reg::int(6), Reg::int(31), 3),
                Inst::halt(),
            ],
            entry: 0,
            init_data: Vec::new(),
        }
    }

    #[test]
    fn removal_remaps_branch_displacements() {
        let p = straight_line();
        // Remove instruction 1: the branch at old index 2 moves to 1, its
        // target (old 4... wait, target = 2 + 1 + 1 = 4) moves to 3.
        let r = remove_range(&p, &p.insts, 1, 2).expect("valid removal");
        assert_eq!(r.insts.len(), 4);
        // Branch now at index 1; target halt now at index 3 => imm = 1.
        assert_eq!(r.insts[1].imm, 1);
    }

    #[test]
    fn removing_a_branch_target_invalidates_the_candidate() {
        let p = straight_line();
        // Old branch target is index 4 (the halt). Removing it must fail.
        assert!(remove_range(&p, &p.insts, 4, 5).is_none());
    }

    #[test]
    fn removing_the_entry_invalidates_the_candidate() {
        let mut p = straight_line();
        p.entry = 0;
        assert!(remove_range(&p, &p.insts, 0, 1).is_none());
    }

    #[test]
    fn removing_everything_is_rejected() {
        let p = straight_line();
        assert!(remove_range(&p, &p.insts, 0, p.insts.len()).is_none());
    }
}
