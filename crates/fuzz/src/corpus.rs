//! The regression corpus: shrunk reproducers as self-describing text.
//!
//! Every file under `fuzz/corpus/` is a complete differential test case:
//!
//! ```text
//! ; looseloops-fuzz corpus v1
//! ; name: seed-0x2a-retire
//! ; finding: retire divergence
//! ; config: scheme=dra rf=5 dec=8 ex=4 policy=tree predictor=tournament threads=1
//! ; faults: none
//! ; max-cycles: 2000000
//! ; oracle-steps: 1000000
//! .data 0x10000, 0x1234, ...
//!     addi r1, r31, 65536
//!     ...
//!     halt
//! ```
//!
//! The first line is a **format version banner** and is checked exactly:
//! if the corpus format ever changes incompatibly, old files fail loudly
//! at load time instead of silently replaying the wrong thing. Unknown
//! header keys are likewise hard errors. Two-thread cases separate their
//! programs with a `; thread 1` line.
//!
//! The body is the standard assembler syntax ([`looseloops_isa::asm`]),
//! produced by [`looseloops_isa::disassemble`] — so every corpus entry is
//! also readable (and hand-editable) as a plain program listing.

use crate::case::{Finding, FuzzCase};
use crate::gen::GenProfile;
use looseloops::branch::PredictorKind;
use looseloops_isa::{assemble, disassemble};
use looseloops_pipeline::{FaultPlan, LoadSpecPolicy, PipelineConfig, RegisterScheme};
use std::fmt;
use std::path::{Path, PathBuf};

/// Exact first line of every corpus file.
pub const BANNER: &str = "; looseloops-fuzz corpus v1";

/// Why a corpus file could not be loaded. Every variant names the file —
/// a stale or corrupt corpus must fail loudly, not skip quietly.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem error.
    Io(PathBuf, std::io::Error),
    /// First line is not the v1 banner.
    BadBanner { path: PathBuf, got: String },
    /// A `; key: value` header has an unknown key or malformed value.
    BadHeader { path: PathBuf, line: String },
    /// A required header is missing.
    MissingHeader { path: PathBuf, key: &'static str },
    /// The program body failed to assemble.
    BadProgram { path: PathBuf, err: String },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            CorpusError::BadBanner { path, got } => write!(
                f,
                "{}: not a corpus v1 file (first line {got:?}, expected {BANNER:?}); \
                 regenerate the corpus if the format changed",
                path.display()
            ),
            CorpusError::BadHeader { path, line } => {
                write!(f, "{}: bad header line {line:?}", path.display())
            }
            CorpusError::MissingHeader { path, key } => {
                write!(f, "{}: missing required header `{key}`", path.display())
            }
            CorpusError::BadProgram { path, err } => {
                write!(f, "{}: program does not assemble: {err}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A corpus file, parsed back into a runnable case.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem (for reporting).
    pub name: String,
    /// The finding recorded when the entry was saved (informational).
    pub recorded_finding: String,
    /// The runnable case.
    pub case: FuzzCase,
}

fn policy_token(p: LoadSpecPolicy) -> &'static str {
    match p {
        LoadSpecPolicy::ReissueTree => "tree",
        LoadSpecPolicy::ReissueShadow => "shadow",
        LoadSpecPolicy::Stall => "stall",
        LoadSpecPolicy::Refetch => "refetch",
    }
}

fn policy_from(tok: &str) -> Option<LoadSpecPolicy> {
    Some(match tok {
        "tree" => LoadSpecPolicy::ReissueTree,
        "shadow" => LoadSpecPolicy::ReissueShadow,
        "stall" => LoadSpecPolicy::Stall,
        "refetch" => LoadSpecPolicy::Refetch,
        _ => return None,
    })
}

fn predictor_token(p: PredictorKind) -> &'static str {
    match p {
        PredictorKind::Tournament => "tournament",
        PredictorKind::Gshare => "gshare",
        PredictorKind::Local => "local",
        PredictorKind::Bimodal => "bimodal",
        PredictorKind::Taken => "taken",
    }
}

fn predictor_from(tok: &str) -> Option<PredictorKind> {
    Some(match tok {
        "tournament" => PredictorKind::Tournament,
        "gshare" => PredictorKind::Gshare,
        "local" => PredictorKind::Local,
        "bimodal" => PredictorKind::Bimodal,
        "taken" => PredictorKind::Taken,
        _ => return None,
    })
}

fn config_line(cfg: &PipelineConfig) -> String {
    let scheme = match cfg.scheme {
        RegisterScheme::Monolithic => "base",
        RegisterScheme::Dra { .. } => "dra",
    };
    format!(
        "scheme={scheme} rf={} dec={} ex={} policy={} predictor={} threads={}",
        cfg.rf_read_latency,
        cfg.dec_iq_stages,
        cfg.iq_ex_stages,
        policy_token(cfg.load_policy),
        predictor_token(cfg.predictor),
        cfg.threads
    )
}

fn faults_line(plan: &Option<FaultPlan>) -> String {
    match plan {
        None => "none".to_string(),
        Some(p) => {
            let window = match p.window {
                None => "none".to_string(),
                Some((a, b)) => format!("{a}:{b}"),
            };
            format!(
                "seed={} branch={} load={}:{} operand={} window={window}",
                p.seed,
                p.branch_flip_rate,
                p.load_spike_rate,
                p.load_spike_cycles,
                p.operand_miss_rate
            )
        }
    }
}

fn parse_kv<'a>(field: &'a str, key: &str) -> Option<&'a str> {
    field.strip_prefix(key)?.strip_prefix('=')
}

fn config_from(line: &str) -> Option<PipelineConfig> {
    let mut scheme = None;
    let mut rf = None;
    let mut dec = None;
    let mut ex = None;
    let mut policy = None;
    let mut predictor = None;
    let mut threads = None;
    for field in line.split_whitespace() {
        if let Some(v) = parse_kv(field, "scheme") {
            scheme = Some(v.to_string());
        } else if let Some(v) = parse_kv(field, "rf") {
            rf = v.parse::<u32>().ok();
        } else if let Some(v) = parse_kv(field, "dec") {
            dec = v.parse::<u32>().ok();
        } else if let Some(v) = parse_kv(field, "ex") {
            ex = v.parse::<u32>().ok();
        } else if let Some(v) = parse_kv(field, "policy") {
            policy = policy_from(v);
        } else if let Some(v) = parse_kv(field, "predictor") {
            predictor = predictor_from(v);
        } else if let Some(v) = parse_kv(field, "threads") {
            threads = v.parse::<usize>().ok();
        } else {
            return None;
        }
    }
    let rf = rf?;
    let mut cfg = match scheme?.as_str() {
        "base" => PipelineConfig::base_for_rf(rf),
        "dra" => PipelineConfig::dra_for_rf(rf),
        _ => return None,
    };
    cfg.dec_iq_stages = dec?;
    cfg.iq_ex_stages = ex?;
    cfg.load_policy = policy?;
    cfg.predictor = predictor?;
    cfg.threads = threads?;
    cfg.audit = true;
    cfg.watchdog_window = 50_000;
    Some(cfg)
}

fn faults_from(line: &str) -> Option<Option<FaultPlan>> {
    if line.trim() == "none" {
        return Some(None);
    }
    let mut plan = FaultPlan::default();
    for field in line.split_whitespace() {
        if let Some(v) = parse_kv(field, "seed") {
            plan.seed = v.parse().ok()?;
        } else if let Some(v) = parse_kv(field, "branch") {
            plan.branch_flip_rate = v.parse().ok()?;
        } else if let Some(v) = parse_kv(field, "load") {
            let (rate, cycles) = v.split_once(':')?;
            plan.load_spike_rate = rate.parse().ok()?;
            plan.load_spike_cycles = cycles.parse().ok()?;
        } else if let Some(v) = parse_kv(field, "operand") {
            plan.operand_miss_rate = v.parse().ok()?;
        } else if let Some(v) = parse_kv(field, "window") {
            plan.window = if v == "none" {
                None
            } else {
                let (a, b) = v.split_once(':')?;
                Some((a.parse().ok()?, b.parse().ok()?))
            };
        } else {
            return None;
        }
    }
    Some(Some(plan))
}

/// Serialize a case (plus the finding it reproduced) to corpus text.
pub fn to_text(name: &str, case: &FuzzCase, finding: &Finding) -> String {
    let mut out = String::new();
    out.push_str(BANNER);
    out.push('\n');
    out.push_str(&format!("; name: {name}\n"));
    out.push_str(&format!("; finding: {}\n", finding.kind));
    out.push_str(&format!("; config: {}\n", config_line(&case.config)));
    out.push_str(&format!("; faults: {}\n", faults_line(&case.config.faults)));
    out.push_str(&format!("; max-cycles: {}\n", case.max_cycles));
    out.push_str(&format!("; oracle-steps: {}\n", case.oracle_steps));
    for (t, prog) in case.programs.iter().enumerate() {
        if t > 0 {
            out.push_str(&format!("; thread {t}\n"));
        }
        out.push_str(&disassemble(prog));
    }
    out
}

/// Parse corpus text back into a runnable case.
pub fn from_text(path: &Path, text: &str) -> Result<CorpusEntry, CorpusError> {
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("").trim_end();
    if first != BANNER {
        return Err(CorpusError::BadBanner {
            path: path.to_path_buf(),
            got: first.to_string(),
        });
    }
    let mut name = None;
    let mut finding = None;
    let mut config = None;
    let mut faults = None;
    let mut max_cycles = None;
    let mut oracle_steps = None;
    let mut bodies: Vec<String> = Vec::new();
    let mut in_header = true;
    for line in lines {
        let header = line.strip_prefix("; ").map(str::trim);
        if in_header {
            if let Some(h) = header {
                let (key, value) = h.split_once(':').ok_or_else(|| CorpusError::BadHeader {
                    path: path.to_path_buf(),
                    line: line.to_string(),
                })?;
                let value = value.trim();
                let bad = || CorpusError::BadHeader {
                    path: path.to_path_buf(),
                    line: line.to_string(),
                };
                match key.trim() {
                    "name" => name = Some(value.to_string()),
                    "finding" => finding = Some(value.to_string()),
                    "config" => config = Some(config_from(value).ok_or_else(bad)?),
                    "faults" => faults = Some(faults_from(value).ok_or_else(bad)?),
                    "max-cycles" => max_cycles = Some(value.parse().map_err(|_| bad())?),
                    "oracle-steps" => oracle_steps = Some(value.parse().map_err(|_| bad())?),
                    _ => return Err(bad()),
                }
                continue;
            }
            in_header = false;
            bodies.push(String::new());
        }
        if let Some(h) = header {
            if let Some(t) = h.strip_prefix("thread ") {
                if t.trim().parse::<usize>().is_err() {
                    return Err(CorpusError::BadHeader {
                        path: path.to_path_buf(),
                        line: line.to_string(),
                    });
                }
                bodies.push(String::new());
                continue;
            }
        }
        if let Some(body) = bodies.last_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    let missing = |key| CorpusError::MissingHeader {
        path: path.to_path_buf(),
        key,
    };
    let mut config = config.ok_or_else(|| missing("config"))?;
    config.faults = faults.ok_or_else(|| missing("faults"))?;
    if bodies.is_empty() || bodies.len() != config.threads {
        return Err(CorpusError::BadProgram {
            path: path.to_path_buf(),
            err: format!(
                "{} program bodies for {} threads",
                bodies.len(),
                config.threads
            ),
        });
    }
    let mut programs = Vec::with_capacity(bodies.len());
    for body in &bodies {
        programs.push(assemble(body).map_err(|e| CorpusError::BadProgram {
            path: path.to_path_buf(),
            err: e.to_string(),
        })?);
    }
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    Ok(CorpusEntry {
        name: name.unwrap_or_else(|| stem.clone()),
        recorded_finding: finding.ok_or_else(|| missing("finding"))?,
        case: FuzzCase {
            seed: 0,
            profile: GenProfile::Mixed,
            config,
            programs,
            max_cycles: max_cycles.ok_or_else(|| missing("max-cycles"))?,
            oracle_steps: oracle_steps.ok_or_else(|| missing("oracle-steps"))?,
        },
    })
}

/// Write one corpus entry to `dir/<name>.ll`.
pub fn save_entry(
    dir: &Path,
    name: &str,
    case: &FuzzCase,
    finding: &Finding,
) -> Result<PathBuf, CorpusError> {
    std::fs::create_dir_all(dir).map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?;
    let path = dir.join(format!("{name}.ll"));
    std::fs::write(&path, to_text(name, case, finding))
        .map_err(|e| CorpusError::Io(path.clone(), e))?;
    Ok(path)
}

/// Load every `.ll` file in a directory, sorted by file name. Any
/// unreadable or stale entry is a hard error.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let rd = std::fs::read_dir(dir).map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ll"))
        .collect();
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).map_err(|e| CorpusError::Io(path.clone(), e))?;
        entries.push(from_text(&path, &text)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{run_case, FindingKind};
    use std::path::Path;

    fn sample_case() -> FuzzCase {
        FuzzCase::from_seed(7, Some(GenProfile::Mixed))
    }

    fn sample_finding() -> Finding {
        Finding {
            kind: FindingKind::RetireDivergence,
            detail: "test".into(),
        }
    }

    #[test]
    fn corpus_text_round_trips() {
        let case = sample_case();
        let text = to_text("t", &case, &sample_finding());
        let entry = from_text(Path::new("t.ll"), &text).expect("parse");
        assert_eq!(entry.case.programs.len(), case.programs.len());
        for (a, b) in entry.case.programs.iter().zip(&case.programs) {
            assert_eq!(a.insts, b.insts);
            assert_eq!(a.init_data, b.init_data);
        }
        assert_eq!(
            format!("{:?}", entry.case.config),
            format!("{:?}", case.config)
        );
        assert_eq!(entry.case.max_cycles, case.max_cycles);
        // And the round-tripped case actually runs.
        assert!(run_case(&entry.case).finding.is_none());
    }

    #[test]
    fn faults_round_trip_exactly() {
        let mut case = sample_case();
        case.config.faults = Some(FaultPlan {
            seed: 0xdead_beef,
            branch_flip_rate: 0.123456789,
            load_spike_rate: 0.25,
            load_spike_cycles: 77,
            operand_miss_rate: 0.0625,
            window: Some((100, 9_999)),
        });
        let text = to_text("t", &case, &sample_finding());
        let entry = from_text(Path::new("t.ll"), &text).expect("parse");
        let got = entry.case.config.faults.expect("plan survives");
        let want = case.config.faults.unwrap();
        assert_eq!(got.seed, want.seed);
        assert_eq!(got.branch_flip_rate, want.branch_flip_rate);
        assert_eq!(got.load_spike_rate, want.load_spike_rate);
        assert_eq!(got.load_spike_cycles, want.load_spike_cycles);
        assert_eq!(got.operand_miss_rate, want.operand_miss_rate);
        assert_eq!(got.window, want.window);
    }

    #[test]
    fn wrong_version_banner_fails_loudly() {
        let case = sample_case();
        let mut text = to_text("t", &case, &sample_finding());
        text = text.replace("corpus v1", "corpus v0");
        let err = from_text(Path::new("stale.ll"), &text).unwrap_err();
        assert!(matches!(err, CorpusError::BadBanner { .. }), "{err}");
        assert!(err.to_string().contains("stale.ll"));
    }

    #[test]
    fn unknown_header_key_fails_loudly() {
        let case = sample_case();
        let text =
            to_text("t", &case, &sample_finding()).replace("; max-cycles:", "; cycle-budget:");
        let err = from_text(Path::new("t.ll"), &text).unwrap_err();
        assert!(matches!(err, CorpusError::BadHeader { .. }), "{err}");
    }

    #[test]
    fn missing_header_fails_loudly() {
        let case = sample_case();
        let text: String = to_text("t", &case, &sample_finding())
            .lines()
            .filter(|l| !l.starts_with("; faults:"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = from_text(Path::new("t.ll"), &text).unwrap_err();
        assert!(matches!(
            err,
            CorpusError::MissingHeader { key: "faults", .. }
        ));
    }
}
