//! Campaign driver: sweep a seed range across a worker pool, shrink what
//! fails, and report.
//!
//! Determinism contract: a campaign's findings depend only on
//! `(start, seeds, profile)` — never on `jobs`. Cases are independent by
//! construction (each derives everything from its own seed) and the pool
//! reassembles results by index ([`looseloops::parallel_map`]), so
//! `--jobs 1` and `--jobs 8` produce byte-identical reports.

use crate::case::{run_case, CaseOutcome, Finding, FuzzCase};
use crate::gen::GenProfile;
use crate::shrink::shrink;
use std::fmt;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// First seed.
    pub start: u64,
    /// Number of consecutive seeds.
    pub seeds: u64,
    /// Worker threads (affects wall clock only, never results).
    pub jobs: usize,
    /// Restrict generation to one profile; `None` mixes all of them.
    pub profile: Option<GenProfile>,
    /// Minimize failures before reporting.
    pub shrink: bool,
    /// Override each case's timing-simulation cycle budget.
    pub budget: Option<u64>,
}

/// One failing seed, optionally minimized.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// The seed that failed.
    pub seed: u64,
    /// The finding from the full-size case.
    pub finding: Finding,
    /// The minimized case and its finding, when shrinking was requested
    /// and succeeded.
    pub shrunk: Option<(FuzzCase, Finding)>,
}

/// Aggregate results of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: u64,
    /// Instructions retired by the timing machine across all cases.
    pub retired: u64,
    /// Cycles simulated across all cases.
    pub cycles: u64,
    /// Every failing seed, in seed order.
    pub failures: Vec<CampaignFailure>,
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz: {} cases, {} retired, {} cycles, {} failure(s)",
            self.cases,
            self.retired,
            self.cycles,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  seed {:#x}: {}", fail.seed, fail.finding)?;
            if let Some((case, finding)) = &fail.shrunk {
                writeln!(
                    f,
                    "    shrunk to {} instruction(s), {} thread(s): {}",
                    case.programs.iter().map(|p| p.insts.len()).sum::<usize>(),
                    case.programs.len(),
                    finding
                )?;
            }
        }
        Ok(())
    }
}

/// Run a campaign. Findings are deterministic in `(start, seeds, profile)`
/// regardless of `jobs`; shrinking runs serially afterwards (failures are
/// rare and shrink budgets bounded).
pub fn run_campaign(opts: &CampaignOpts) -> CampaignReport {
    let mk = |seed| {
        let mut case = FuzzCase::from_seed(seed, opts.profile);
        if let Some(budget) = opts.budget {
            case.max_cycles = budget;
        }
        case
    };
    let outcomes = looseloops::parallel_map(opts.jobs, opts.seeds as usize, |i| {
        let seed = opts.start + i as u64;
        (seed, run_case(&mk(seed)))
    });
    let mut report = CampaignReport {
        cases: opts.seeds,
        retired: 0,
        cycles: 0,
        failures: Vec::new(),
    };
    for (seed, outcome) in outcomes {
        let CaseOutcome {
            finding,
            retired,
            cycles,
        } = outcome;
        report.retired += retired;
        report.cycles += cycles;
        if let Some(finding) = finding {
            let shrunk = if opts.shrink {
                shrink(&mk(seed)).map(|s| (s.case, s.finding))
            } else {
                None
            };
            report.failures.push(CampaignFailure {
                seed,
                finding,
                shrunk,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_deterministic_across_job_counts() {
        let mk = |jobs| CampaignOpts {
            start: 100,
            seeds: 6,
            jobs,
            profile: None,
            shrink: false,
            budget: None,
        };
        let a = run_campaign(&mk(1));
        let b = run_campaign(&mk(4));
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.retired, b.retired);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.failures.len(), b.failures.len());
        for (fa, fb) in a.failures.iter().zip(&b.failures) {
            assert_eq!(fa.seed, fb.seed);
            assert_eq!(fa.finding.detail, fb.finding.detail);
        }
    }
}
