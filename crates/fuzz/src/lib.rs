//! Differential fuzzing for the loose-loops machine model.
//!
//! The timing simulator ([`looseloops_pipeline::Machine`]) and the
//! functional interpreter ([`looseloops_isa::ArchState`]) implement the
//! same ISA twice, from independent code. This crate weaponizes that
//! redundancy:
//!
//! 1. [`gen`] — a structure-aware program generator. From one seed it
//!    emits a terminating program full of the things the pipeline finds
//!    hard: nested counted loops, data-dependent branch nests, aliased
//!    loads and stores, long dependence chains, memory barriers, leaf
//!    calls and cross-bank FP conversions.
//! 2. [`case`] — the differential harness. Each seed also samples a
//!    machine configuration (scheme × RF latency × policies × predictor ×
//!    SMT × fault storm) and compares the pipeline against the oracle on
//!    the full retire stream, final architectural state and final memory.
//! 3. [`shrink`] — delta-debugging. A failing case is minimized first in
//!    configuration space (drop faults, drop the second thread, simplify
//!    policies), then instruction by instruction with branch-displacement
//!    fixup, until a small reproducer remains.
//! 4. [`corpus`] — shrunk reproducers serialize to a self-describing
//!    versioned text format under `fuzz/corpus/`, replayed forever by a
//!    tier-1 regression test.
//! 5. [`campaign`] — ties it together: seed ranges across a worker pool
//!    with results that are bit-identical regardless of `--jobs`.

pub mod campaign;
pub mod case;
pub mod corpus;
pub mod gen;
pub mod shrink;

pub use campaign::{run_campaign, CampaignOpts, CampaignReport};
pub use case::{run_case, run_seed_range, CaseOutcome, Finding, FindingKind, FuzzCase};
pub use corpus::{load_dir, save_entry, CorpusError};
pub use gen::{generate, GenProfile};
pub use shrink::{shrink, Shrunk};
