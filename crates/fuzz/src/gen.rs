//! Structure-aware program generator.
//!
//! Emits random — but always *valid and terminating* — [`Program`]s through
//! [`ProgramBuilder`]. The generator is structured rather than byte-level:
//! it composes bounded nested loops, forward branch nests, aliased
//! load/store traffic against a small seeded table, long register
//! dependence chains, memory barriers, and non-recursive subroutine calls,
//! so every generated program stresses one of the paper's
//! micro-architectural loops while still halting by construction.
//!
//! Determinism: the whole program is a pure function of `(seed, profile,
//! thread)` through `looseloops_rng`, so any failing case replays exactly.
//!
//! # Register discipline
//!
//! | registers        | role                                        |
//! |------------------|---------------------------------------------|
//! | `r1`             | memory base pointer (per-thread, disjoint)  |
//! | `r4`–`r7`        | condition / address / PRNG scratch          |
//! | `r8`             | xorshift64 data-PRNG state (never zero)     |
//! | `r9`             | integer dependence chain                    |
//! | `r10`–`r14`      | loop counters (one per nesting level)       |
//! | `r16`–`r23`      | integer accumulators                        |
//! | `r26`            | subroutine link register                    |
//! | `f8`             | fp dependence chain                         |
//! | `f16`–`f23`      | fp accumulators                             |
//!
//! Loop counters are never written by block bodies, every loop strictly
//! counts a positive constant down to zero, and subroutines neither recurse
//! nor touch counters or the link register — together these guarantee
//! termination within a dynamic budget the generator tracks.

use looseloops_isa::{Inst, Opcode, Program, ProgramBuilder, Reg};
use looseloops_rng::Rng;
use std::fmt;

/// Size of the per-thread data table, in 64-bit words.
const TABLE_WORDS: u64 = 64;

/// Which micro-architectural loop a generated program leans on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenProfile {
    /// Deep forward-branch nests and data-dependent directions: the branch
    /// resolution loop.
    BranchHeavy,
    /// Aliased loads and stores against one small table: the load
    /// resolution loop and store-queue forwarding.
    MemoryAlias,
    /// Long serial register chains: the operand resolution loop (DRA) and
    /// the forwarding window.
    DependenceChain,
    /// Frequent memory barriers between memory bursts: the memory-barrier
    /// loop.
    Barriers,
    /// Subroutine calls and branchy straight-line code: the fetch/predict
    /// front end (BTB, RAS, line predictor).
    Frontend,
    /// Floating-point heavy bodies: the FP clusters and long-latency units.
    FpMix,
    /// Everything with uniform weights.
    Mixed,
}

impl GenProfile {
    /// All profiles, in a stable order (the campaign cycles through them).
    pub fn all() -> [GenProfile; 7] {
        [
            GenProfile::BranchHeavy,
            GenProfile::MemoryAlias,
            GenProfile::DependenceChain,
            GenProfile::Barriers,
            GenProfile::Frontend,
            GenProfile::FpMix,
            GenProfile::Mixed,
        ]
    }

    /// Stable CLI/corpus name.
    pub fn name(self) -> &'static str {
        match self {
            GenProfile::BranchHeavy => "branch",
            GenProfile::MemoryAlias => "memory",
            GenProfile::DependenceChain => "chain",
            GenProfile::Barriers => "barrier",
            GenProfile::Frontend => "frontend",
            GenProfile::FpMix => "fp",
            GenProfile::Mixed => "mixed",
        }
    }

    /// Parse a [`GenProfile::name`].
    pub fn from_name(s: &str) -> Option<GenProfile> {
        GenProfile::all().into_iter().find(|p| p.name() == s)
    }

    /// Block-kind weights: `[operate, chain, mem, loop, branch, barrier,
    /// call, fp]`.
    fn weights(self) -> [u32; 8] {
        match self {
            GenProfile::BranchHeavy => [2, 1, 1, 3, 8, 0, 1, 0],
            GenProfile::MemoryAlias => [2, 1, 8, 2, 1, 1, 0, 1],
            GenProfile::DependenceChain => [2, 8, 1, 2, 1, 0, 0, 1],
            GenProfile::Barriers => [2, 1, 4, 2, 1, 6, 0, 0],
            GenProfile::Frontend => [3, 1, 1, 2, 4, 0, 6, 0],
            GenProfile::FpMix => [2, 2, 2, 2, 1, 0, 0, 8],
            GenProfile::Mixed => [3, 3, 3, 3, 3, 1, 1, 3],
        }
    }
}

impl fmt::Display for GenProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const INT_ACCS: [u8; 8] = [16, 17, 18, 19, 20, 21, 22, 23];
const FP_ACCS: [u8; 8] = [16, 17, 18, 19, 20, 21, 22, 23];

/// Per-thread data base: disjoint 1 MiB-strided regions, all reachable by
/// a single `addi` (the immediate field is ±2^23).
pub fn thread_base(thread: usize) -> u64 {
    0x10_000 + (thread as u64) * 0x100_000
}

struct Gen {
    rng: Rng,
    b: ProgramBuilder,
    weights: [u32; 8],
    /// Monotonic label counter (labels are unique by construction).
    labels: u64,
    /// Loop nesting depth (bounds counters to r10..r14).
    depth: u32,
    /// Product of enclosing loop trip counts; bounds the dynamic budget.
    trip_product: u64,
    /// Static instructions emitted so far.
    emitted: u64,
    /// Subroutines to append after `halt`: (label, body seed).
    subs: Vec<(String, u64)>,
}

impl Gen {
    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels)
    }

    fn int_acc(&mut self) -> Reg {
        Reg::int(*self.rng.choose(&INT_ACCS).unwrap())
    }

    fn fp_acc(&mut self) -> Reg {
        Reg::fp(*self.rng.choose(&FP_ACCS).unwrap())
    }

    fn emit(&mut self, inst: Inst) {
        self.b.push(inst);
        self.emitted += 1;
    }

    /// Advance the r8 data PRNG (xorshift64; nonzero stays nonzero).
    fn prng_step(&mut self) {
        let (r7, r8) = (Reg::int(7), Reg::int(8));
        self.emit(Inst::op_ri(Opcode::Sll, r7, r8, 13));
        self.emit(Inst::op_rr(Opcode::Xor, r8, r8, r7));
        self.emit(Inst::op_ri(Opcode::Srl, r7, r8, 7));
        self.emit(Inst::op_rr(Opcode::Xor, r8, r8, r7));
        self.emit(Inst::op_ri(Opcode::Sll, r7, r8, 17));
        self.emit(Inst::op_rr(Opcode::Xor, r8, r8, r7));
    }

    /// A short burst of integer operate instructions over the accumulators.
    fn operate_burst(&mut self) {
        for _ in 0..self.rng.gen_range(2u32..6) {
            let rd = self.int_acc();
            let rs1 = self.int_acc();
            let rs2 = self.int_acc();
            let inst = match self.rng.gen_range(0u32..6) {
                0 => Inst::op_rr(Opcode::Add, rd, rs1, rs2),
                1 => Inst::op_rr(Opcode::Sub, rd, rs1, Reg::int(8)),
                2 => Inst::op_rr(Opcode::Xor, rd, rs1, rs2),
                3 => Inst::op_rr(Opcode::Mul, rd, rs1, rs2),
                4 => Inst::op_ri(Opcode::Add, rd, rs1, self.rng.gen_range(-64i32..64)),
                _ => Inst::op_ri(Opcode::Sll, rd, rs1, self.rng.gen_range(1i32..8)),
            };
            self.emit(inst);
        }
    }

    /// A serial dependence chain through r9 (every op reads the last).
    fn chain(&mut self) {
        let r9 = Reg::int(9);
        for _ in 0..self.rng.gen_range(4u32..14) {
            let acc = self.int_acc();
            let inst = match self.rng.gen_range(0u32..4) {
                0 => Inst::op_rr(Opcode::Add, r9, r9, acc),
                1 => Inst::op_rr(Opcode::Xor, r9, r9, Reg::int(8)),
                2 => Inst::op_rr(Opcode::Mul, r9, r9, acc),
                _ => Inst::op_ri(Opcode::Add, r9, r9, 1),
            };
            self.emit(inst);
        }
        // Fold the chain into an accumulator so it stays live.
        let acc = self.int_acc();
        self.emit(Inst::op_rr(Opcode::Add, acc, acc, r9));
    }

    /// Aliased loads/stores against the thread's table. Addresses come
    /// either straight off `r1` (static aliasing, exercises store-queue
    /// forwarding) or through an r8-derived masked index (dynamic aliasing,
    /// exercises memory-dependence prediction).
    fn mem_block(&mut self) {
        let (r1, r5) = (Reg::int(1), Reg::int(5));
        for _ in 0..self.rng.gen_range(2u32..6) {
            let base = if self.rng.gen_bool(0.5) {
                // r5 = r1 + (r8 & 0xf8): 8-aligned, within the table.
                self.emit(Inst::op_ri(Opcode::And, r5, Reg::int(8), 0xf8));
                self.emit(Inst::op_rr(Opcode::Add, r5, r1, r5));
                r5
            } else {
                r1
            };
            let disp = self.rng.gen_range(0i32..31) * 8;
            match self.rng.gen_range(0u32..4) {
                0 => {
                    let acc = self.int_acc();
                    self.emit(Inst::load(Opcode::Ldq, acc, base, disp));
                }
                1 => {
                    let v = self.int_acc();
                    self.emit(Inst::store(Opcode::Stq, v, base, disp));
                }
                2 => {
                    // Store-then-load of the same slot: forwarding path.
                    let v = self.int_acc();
                    let acc = self.int_acc();
                    self.emit(Inst::store(Opcode::Stq, v, base, disp));
                    self.emit(Inst::load(Opcode::Ldq, acc, base, disp));
                }
                _ => {
                    let facc = self.fp_acc();
                    self.emit(Inst::load(Opcode::FLdq, facc, base, disp));
                }
            }
        }
    }

    /// FP burst over the fp accumulators, with occasional conversions that
    /// couple the banks.
    fn fp_block(&mut self) {
        for _ in 0..self.rng.gen_range(2u32..6) {
            let fd = self.fp_acc();
            let fs1 = self.fp_acc();
            let fs2 = self.fp_acc();
            match self.rng.gen_range(0u32..6) {
                0 => self.emit(Inst::op_rr(Opcode::FAdd, fd, fs1, fs2)),
                1 => self.emit(Inst::op_rr(Opcode::FSub, fd, fs1, Reg::fp(8))),
                2 => self.emit(Inst::op_rr(Opcode::FMul, fd, fs1, fs2)),
                3 => self.emit(Inst::op_rr(Opcode::FDiv, fd, fs1, fs2)),
                4 => {
                    // Cross-bank round trip: int → fp → int.
                    let rs = self.int_acc();
                    let rd = self.int_acc();
                    self.emit(Inst::op_rr(Opcode::FCvtIf, fd, rs, Reg::FZERO));
                    self.emit(Inst::op_rr(Opcode::FCvtFi, rd, fs1, Reg::FZERO));
                }
                _ => self.emit(Inst::op_rr(Opcode::FCmpLt, fd, fs1, fs2)),
            }
        }
        // Keep the fp chain register moving.
        let f8 = Reg::fp(8);
        let facc = self.fp_acc();
        self.emit(Inst::op_rr(Opcode::FAdd, f8, f8, facc));
    }

    /// Forward branch nest with a data-dependent direction:
    /// `if (r8 & mask) { then } else { else }`.
    fn branch_nest(&mut self, budget: u32) {
        let r4 = Reg::int(4);
        let l_else = self.fresh_label("else");
        let l_end = self.fresh_label("end");
        let mask = 1 << self.rng.gen_range(0u32..3);
        self.emit(Inst::op_ri(Opcode::And, r4, Reg::int(8), mask));
        let op = if self.rng.gen_bool(0.5) {
            Opcode::Beq
        } else {
            Opcode::Bne
        };
        self.b
            .push_to_label(Inst::branch(op, r4, 0), l_else.clone());
        self.emitted += 1;
        self.blocks(budget, 1);
        self.b.push_to_label(Inst::br(0), l_end.clone());
        self.emitted += 1;
        self.b.label(l_else);
        self.blocks(budget, 1);
        self.b.label(l_end);
    }

    /// Bounded counted loop: counter strictly decrements to zero.
    fn counted_loop(&mut self, budget: u32) {
        let iters = self.rng.gen_range(2i32..6);
        // Depth caps at 5 (counters r10..r14) and the dynamic budget caps
        // the trip product; at either cap, degrade to a straight block.
        if self.depth >= 5 || self.trip_product * iters as u64 > 4_000 {
            self.blocks(budget, 2);
            return;
        }
        let ctr = Reg::int(10 + self.depth as u8);
        let top = self.fresh_label("top");
        self.emit(Inst::op_ri(Opcode::Add, ctr, Reg::ZERO, iters));
        self.b.label(top.clone());
        self.depth += 1;
        self.trip_product *= iters as u64;
        self.blocks(budget, 2);
        self.trip_product /= iters as u64;
        self.depth -= 1;
        self.emit(Inst::op_ri(Opcode::Sub, ctr, ctr, 1));
        self.b.push_to_label(Inst::branch(Opcode::Bne, ctr, 0), top);
        self.emitted += 1;
    }

    /// Call a (possibly shared) leaf subroutine through r26.
    fn call(&mut self) {
        let label = if self.subs.is_empty() || (self.subs.len() < 3 && self.rng.gen_bool(0.5)) {
            let l = self.fresh_label("sub");
            let body_seed = self.rng.next_u64();
            self.subs.push((l.clone(), body_seed));
            l
        } else {
            self.rng.choose(&self.subs).unwrap().0.clone()
        };
        self.b.push_to_label(Inst::jsr(Reg::int(26), 0), label);
        self.emitted += 1;
    }

    /// Emit up to `count` blocks chosen by the profile weights. `budget`
    /// decays with nesting so nests stay bounded.
    fn blocks(&mut self, budget: u32, count: u32) {
        if budget == 0 || self.emitted > 200 {
            // Leaf: keep control flow joinable with a tiny burst.
            self.operate_burst();
            return;
        }
        for _ in 0..count {
            let total: u32 = self.weights.iter().sum();
            let mut pick = self.rng.gen_range(0..total);
            let mut kind = 0;
            for (k, w) in self.weights.iter().enumerate() {
                if pick < *w {
                    kind = k;
                    break;
                }
                pick -= w;
            }
            match kind {
                0 => self.operate_burst(),
                1 => self.chain(),
                2 => self.mem_block(),
                3 => self.counted_loop(budget - 1),
                4 => self.branch_nest(budget - 1),
                5 => {
                    self.emit(Inst::mb());
                    self.mem_block();
                }
                6 => self.call(),
                _ => self.fp_block(),
            }
            if self.rng.gen_bool(0.4) {
                self.prng_step();
            }
        }
    }
}

/// Generate the program for `(seed, profile)` on hardware thread `thread`
/// (threads get disjoint memory regions, so SMT runs stay oracle-exact).
pub fn generate(seed: u64, profile: GenProfile, thread: usize) -> Program {
    let rng = Rng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let base = thread_base(thread);
    let mut g = Gen {
        rng,
        b: ProgramBuilder::new(format!("fuzz-{seed:#x}-{}-t{thread}", profile.name())),
        weights: profile.weights(),
        labels: 0,
        depth: 0,
        trip_product: 1,
        emitted: 0,
        subs: Vec::new(),
    };

    // Seeded table so loads observe deterministic non-zero data.
    let words: Vec<u64> = (0..TABLE_WORDS)
        .map(|i| {
            seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(i * 0x9e37)
                | 1
        })
        .collect();
    g.b.data_words(base, &words);

    // Prologue: base pointer, PRNG state, chain seeds, accumulators.
    let r1 = Reg::int(1);
    g.emit(Inst::op_ri(Opcode::Add, r1, Reg::ZERO, base as i32));
    let r8_init = (g.rng.next_u64() & 0x3f_ffff) as i32 | 1;
    g.emit(Inst::op_ri(Opcode::Add, Reg::int(8), Reg::ZERO, r8_init));
    g.emit(Inst::op_ri(Opcode::Add, Reg::int(9), Reg::ZERO, 7));
    for (i, &a) in INT_ACCS.iter().enumerate() {
        g.emit(Inst::op_ri(
            Opcode::Add,
            Reg::int(a),
            Reg::ZERO,
            (i as i32 + 1) * 3,
        ));
    }
    // FP bank: real f64 values converted from the freshly set int accs,
    // plus one fp load to seed the chain register.
    for &a in &FP_ACCS {
        g.emit(Inst::op_rr(
            Opcode::FCvtIf,
            Reg::fp(a),
            Reg::int(a),
            Reg::FZERO,
        ));
    }
    g.emit(Inst::load(Opcode::FLdq, Reg::fp(8), r1, 0));

    // Body.
    let top_blocks = g.rng.gen_range(3u32..7);
    g.blocks(3, top_blocks);

    // Epilogue: fold everything into r16 so the whole dataflow graph is
    // architecturally live at the halt.
    for &a in &INT_ACCS[1..] {
        g.emit(Inst::op_rr(
            Opcode::Add,
            Reg::int(16),
            Reg::int(16),
            Reg::int(a),
        ));
    }
    g.emit(Inst::store(Opcode::Stq, Reg::int(16), r1, 0));
    g.emit(Inst::halt());

    // Leaf subroutines (after the halt; reachable only via jsr).
    let subs = std::mem::take(&mut g.subs);
    for (label, body_seed) in subs {
        g.b.label(label);
        g.rng = Rng::seed_from_u64(body_seed);
        g.operate_burst();
        g.emit(Inst::ret(Reg::int(26)));
    }

    g.b.build()
        .expect("generator emits structurally valid programs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{ArchState, FlatMemory};

    #[test]
    fn generated_programs_build_and_halt_in_the_oracle() {
        for seed in 0..40u64 {
            for profile in GenProfile::all() {
                let prog = generate(seed, profile, 0);
                assert!(!prog.is_empty());
                let mut mem = FlatMemory::with_program(&prog);
                let mut st = ArchState::new(&prog);
                let summary = st
                    .run(&prog, &mut mem, 1_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed} {profile}: {e}"));
                assert!(
                    summary.halted,
                    "seed {seed} {profile}: did not halt in 1M steps"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 7, 0xdead] {
            let a = generate(seed, GenProfile::Mixed, 0);
            let b = generate(seed, GenProfile::Mixed, 0);
            assert_eq!(a.insts, b.insts);
            assert_eq!(a.init_data, b.init_data);
        }
    }

    #[test]
    fn threads_use_disjoint_memory_regions() {
        assert_ne!(thread_base(0), thread_base(1));
        let p0 = generate(3, GenProfile::MemoryAlias, 0);
        let p1 = generate(3, GenProfile::MemoryAlias, 1);
        // Different bases mean the data images never overlap.
        let (a0, _) = p0.init_data[0].clone();
        let (a1, b1) = p1.init_data[0].clone();
        assert!(a0 + 8 * TABLE_WORDS <= a1 || a1 + b1.len() as u64 <= a0);
    }

    #[test]
    fn profiles_produce_distinct_programs() {
        let a = generate(5, GenProfile::BranchHeavy, 0);
        let b = generate(5, GenProfile::MemoryAlias, 0);
        assert_ne!(a.insts, b.insts);
    }
}
