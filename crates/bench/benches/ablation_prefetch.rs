//! Prefetcher extension ablation: attack the load loop's mis-speculation
//! rate (prefetch) vs its delay (DRA), and both together.

use looseloops::{ablation_prefetch_on, Benchmark, Workload};

fn main() {
    let ws: Vec<Workload> = [
        Benchmark::Swim,
        Benchmark::Turb3d,
        Benchmark::Hydro2d,
        Benchmark::Mgrid,
        Benchmark::Gcc,
        Benchmark::Apsi,
    ]
    .into_iter()
    .map(Workload::Single)
    .collect();
    looseloops_bench::run_figure("ablation-prefetch", |sweep, budget| {
        ablation_prefetch_on(sweep, &ws, budget)
    });
}
