//! Direction-predictor ablation: how much the branch-resolution loop
//! costs under weaker predictors.

use looseloops::{ablation_predictors_on, Benchmark, Workload};

fn main() {
    let ws: Vec<Workload> = [
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::M88ksim,
        Benchmark::Swim,
    ]
    .into_iter()
    .map(Workload::Single)
    .collect();
    looseloops_bench::run_figure("ablation-predictor", |sweep, budget| {
        ablation_predictors_on(sweep, &ws, budget)
    });
}
