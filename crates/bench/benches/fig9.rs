//! Figure 9: operand-source breakdown under the DRA (7_3, 5-cycle register
//! file): pre-read / forwarding buffer / CRC / miss.

use looseloops::{fig9_operand_sources_on, Workload};

fn main() {
    looseloops_bench::run_figure("fig9", |sweep, budget| {
        fig9_operand_sources_on(sweep, &Workload::paper_set(), budget)
    });
}
