//! Sim-MIPS regression harness: times the fig4 and fig8 reference
//! sweeps, the full `figure all` pass on one shared engine, and the
//! functional fast-forward interpreter, on a single-worker engine at a
//! fixed budget, recording wall time, instructions, and simulated MIPS
//! as JSON.
//!
//! The checked-in baseline lives at the repo root as `BENCH_pr10.json`;
//! the CI smoke job re-runs this bench and fails on a >20% sim-MIPS
//! regression (see `scripts/check_simmips.py`). Budgets are fixed so
//! the comparison is apples-to-apples, but the usual `LOOSELOOPS_WARMUP`
//! / `LOOSELOOPS_MEASURE` overrides still work for quick local runs —
//! the budget is recorded in the JSON and the checker refuses to compare
//! mismatched budgets.
//!
//! Output path: `LOOSELOOPS_BENCH_OUT` if set, else `BENCH_pr10.json` at
//! the workspace root (i.e. running the bench with no overrides
//! regenerates the baseline).

use looseloops::{
    ablation_dra_design_on, ablation_fwd_window_on, ablation_iq_size_on, ablation_load_policies_on,
    ablation_predictors_on, ablation_prefetch_on, capture_checkpoint, fig4_pipeline_length_on,
    fig5_fixed_total_on, fig6_operand_gap_cdf_on, fig8_dra_speedup_on, fig9_operand_sources_on,
    Benchmark, FigureResult, PipelineConfig, RunBudget, SweepEngine, Workload,
};
use std::path::PathBuf;
use std::time::Instant;

/// Fixed reference budget for the regression gate (smaller than
/// `RunBudget::bench` so the CI smoke job stays fast, large enough that
/// per-run setup cost does not dominate).
fn reference_budget() -> RunBudget {
    let mut b = RunBudget {
        warmup: 20_000,
        measure: 100_000,
        max_cycles: 20_000_000,
    };
    let parse = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    };
    if let Some(v) = parse("LOOSELOOPS_WARMUP") {
        b.warmup = v;
    }
    if let Some(v) = parse("LOOSELOOPS_MEASURE") {
        b.measure = v;
    }
    b
}

struct Entry {
    figure: &'static str,
    jobs: u64,
    instructions: u64,
    wall_s: f64,
    sim_mips: f64,
}

/// Run one figure generator on a fresh single-worker engine and record
/// the sweep's wall time and sim-MIPS.
fn measure(
    figure: &'static str,
    budget: RunBudget,
    gen: impl FnOnce(&SweepEngine, RunBudget) -> FigureResult,
) -> Entry {
    let sweep = SweepEngine::new(1);
    let t0 = Instant::now();
    let fig = gen(&sweep, budget);
    let wall = t0.elapsed();
    let s = sweep.summary();
    eprintln!(
        "[simmips] {figure}: {} series, {}",
        fig.series.len(),
        s.line()
    );
    Entry {
        figure,
        jobs: s.jobs_run,
        instructions: s.instructions,
        wall_s: wall.as_secs_f64(),
        sim_mips: s.instructions as f64 / s.wall.as_secs_f64().max(1e-9) / 1e6,
    }
}

/// Time the full `looseloops figure all` pass — every figure and
/// ablation on ONE shared single-worker engine, so overlapping grid
/// points (the base machine appears in several figures) simulate once
/// and the rest come from the memo cache, exactly as the CLI runs it.
/// This is the cumulative end-to-end number the roadmap's 10× goal is
/// measured against.
type FigureGen<'a> = &'a dyn Fn(&SweepEngine, RunBudget) -> FigureResult;

fn measure_figure_all(budget: RunBudget, workloads: &[Workload]) -> Entry {
    let sweep = SweepEngine::new(1);
    let t0 = Instant::now();
    let mut series = 0;
    let figures: [(&str, FigureGen); 11] = [
        ("fig4", &|s, b| fig4_pipeline_length_on(s, workloads, b)),
        ("fig5", &|s, b| fig5_fixed_total_on(s, workloads, b)),
        ("fig6", &|s, b| fig6_operand_gap_cdf_on(s, b)),
        ("fig8", &|s, b| fig8_dra_speedup_on(s, workloads, b)),
        ("fig9", &|s, b| fig9_operand_sources_on(s, workloads, b)),
        ("load-policy", &|s, b| {
            ablation_load_policies_on(s, workloads, b)
        }),
        ("dra-design", &|s, b| {
            ablation_dra_design_on(s, workloads, b)
        }),
        ("fwd-window", &|s, b| {
            ablation_fwd_window_on(s, workloads, b)
        }),
        ("iq-size", &|s, b| ablation_iq_size_on(s, workloads, b)),
        ("prefetch", &|s, b| ablation_prefetch_on(s, workloads, b)),
        ("predictor", &|s, b| ablation_predictors_on(s, workloads, b)),
    ];
    for (_, gen) in figures {
        series += gen(&sweep, budget).series.len();
    }
    let wall = t0.elapsed();
    let s = sweep.summary();
    eprintln!("[simmips] figure-all: {series} series, {}", s.line());
    Entry {
        figure: "figure-all",
        jobs: s.jobs_run,
        instructions: s.instructions,
        wall_s: wall.as_secs_f64(),
        sim_mips: s.instructions as f64 / s.wall.as_secs_f64().max(1e-9) / 1e6,
    }
}

/// Time the functional fast-forward interpreter (with cache/TLB/
/// predictor warming) on the compress proxy. Its sim-MIPS is what makes
/// checkpointed warm-up and interval sampling pay off, so the checker
/// gates the *ratio* of this entry to the detailed sweeps' sim-MIPS
/// (`check_simmips.py --min-ff-ratio`).
fn measure_functional_ff() -> Entry {
    const INSTRUCTIONS: u64 = 2_000_000;
    let cfg = PipelineConfig::base();
    let workload = Workload::Single(Benchmark::Compress);
    let wcfg = workload.config_for(&cfg);
    let t0 = Instant::now();
    let ckpt =
        capture_checkpoint(&wcfg, workload.programs(), INSTRUCTIONS).expect("functional warm-up");
    let wall = t0.elapsed();
    assert_eq!(ckpt.instructions, INSTRUCTIONS, "compress must not halt");
    let entry = Entry {
        figure: "functional-ff",
        jobs: 1,
        instructions: INSTRUCTIONS,
        wall_s: wall.as_secs_f64(),
        sim_mips: INSTRUCTIONS as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
    };
    eprintln!(
        "[simmips] functional-ff: {INSTRUCTIONS} instructions in {:.3}s ({:.1} sim-MIPS)",
        entry.wall_s, entry.sim_mips
    );
    entry
}

fn to_json(budget: RunBudget, entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"budget\": {{\"warmup\": {}, \"measure\": {}, \"max_cycles\": {}}},\n",
        budget.warmup, budget.measure, budget.max_cycles
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": \"{}\", \"jobs\": {}, \"instructions\": {}, \"wall_s\": {:.4}, \"sim_mips\": {:.3}}}{}\n",
            e.figure,
            e.jobs,
            e.instructions,
            e.wall_s,
            e.sim_mips,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let budget = reference_budget();
    eprintln!(
        "[simmips] reference sweeps, warmup={} measure={} instructions per run, 1 worker",
        budget.warmup, budget.measure
    );
    let workloads = Workload::paper_set();
    let entries = [
        measure("fig4", budget, |s, b| {
            fig4_pipeline_length_on(s, &workloads, b)
        }),
        measure("fig8", budget, |s, b| fig8_dra_speedup_on(s, &workloads, b)),
        measure_figure_all(budget, &workloads),
        measure_functional_ff(),
    ];
    let json = to_json(budget, &entries);
    let path = std::env::var("LOOSELOOPS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_pr10.json")
        });
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[simmips] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[simmips] cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
