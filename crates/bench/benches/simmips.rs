//! Sim-MIPS regression harness: times the fig4 and fig8 reference sweeps
//! on a single-worker engine at a fixed budget and records wall time,
//! instructions, and simulated MIPS as JSON.
//!
//! The checked-in baseline lives at the repo root as `BENCH_pr4.json`;
//! the CI smoke job re-runs this bench and fails on a >20% sim-MIPS
//! regression (see `scripts/check_simmips.py`). Budgets are fixed so
//! the comparison is apples-to-apples, but the usual `LOOSELOOPS_WARMUP`
//! / `LOOSELOOPS_MEASURE` overrides still work for quick local runs —
//! the budget is recorded in the JSON and the checker refuses to compare
//! mismatched budgets.
//!
//! Output path: `LOOSELOOPS_BENCH_OUT` if set, else `BENCH_pr4.json` at
//! the workspace root (i.e. running the bench with no overrides
//! regenerates the baseline).

use looseloops::{
    capture_checkpoint, fig4_pipeline_length_on, fig8_dra_speedup_on, Benchmark, FigureResult,
    PipelineConfig, RunBudget, SweepEngine, Workload,
};
use std::path::PathBuf;
use std::time::Instant;

/// Fixed reference budget for the regression gate (smaller than
/// `RunBudget::bench` so the CI smoke job stays fast, large enough that
/// per-run setup cost does not dominate).
fn reference_budget() -> RunBudget {
    let mut b = RunBudget {
        warmup: 20_000,
        measure: 100_000,
        max_cycles: 20_000_000,
    };
    let parse = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    };
    if let Some(v) = parse("LOOSELOOPS_WARMUP") {
        b.warmup = v;
    }
    if let Some(v) = parse("LOOSELOOPS_MEASURE") {
        b.measure = v;
    }
    b
}

struct Entry {
    figure: &'static str,
    jobs: u64,
    instructions: u64,
    wall_s: f64,
    sim_mips: f64,
}

/// Run one figure generator on a fresh single-worker engine and record
/// the sweep's wall time and sim-MIPS.
fn measure(
    figure: &'static str,
    budget: RunBudget,
    gen: impl FnOnce(&SweepEngine, RunBudget) -> FigureResult,
) -> Entry {
    let sweep = SweepEngine::new(1);
    let t0 = Instant::now();
    let fig = gen(&sweep, budget);
    let wall = t0.elapsed();
    let s = sweep.summary();
    eprintln!(
        "[simmips] {figure}: {} series, {}",
        fig.series.len(),
        s.line()
    );
    Entry {
        figure,
        jobs: s.jobs_run,
        instructions: s.instructions,
        wall_s: wall.as_secs_f64(),
        sim_mips: s.instructions as f64 / s.wall.as_secs_f64().max(1e-9) / 1e6,
    }
}

/// Time the functional fast-forward interpreter (with cache/TLB/
/// predictor warming) on the compress proxy. Its sim-MIPS is what makes
/// checkpointed warm-up and interval sampling pay off, so the checker
/// gates the *ratio* of this entry to the detailed sweeps' sim-MIPS
/// (`check_simmips.py --min-ff-ratio`).
fn measure_functional_ff() -> Entry {
    const INSTRUCTIONS: u64 = 2_000_000;
    let cfg = PipelineConfig::base();
    let workload = Workload::Single(Benchmark::Compress);
    let wcfg = workload.config_for(&cfg);
    let t0 = Instant::now();
    let ckpt =
        capture_checkpoint(&wcfg, workload.programs(), INSTRUCTIONS).expect("functional warm-up");
    let wall = t0.elapsed();
    assert_eq!(ckpt.instructions, INSTRUCTIONS, "compress must not halt");
    let entry = Entry {
        figure: "functional-ff",
        jobs: 1,
        instructions: INSTRUCTIONS,
        wall_s: wall.as_secs_f64(),
        sim_mips: INSTRUCTIONS as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
    };
    eprintln!(
        "[simmips] functional-ff: {INSTRUCTIONS} instructions in {:.3}s ({:.1} sim-MIPS)",
        entry.wall_s, entry.sim_mips
    );
    entry
}

fn to_json(budget: RunBudget, entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"budget\": {{\"warmup\": {}, \"measure\": {}, \"max_cycles\": {}}},\n",
        budget.warmup, budget.measure, budget.max_cycles
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"figure\": \"{}\", \"jobs\": {}, \"instructions\": {}, \"wall_s\": {:.4}, \"sim_mips\": {:.3}}}{}\n",
            e.figure,
            e.jobs,
            e.instructions,
            e.wall_s,
            e.sim_mips,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let budget = reference_budget();
    eprintln!(
        "[simmips] reference sweeps, warmup={} measure={} instructions per run, 1 worker",
        budget.warmup, budget.measure
    );
    let workloads = Workload::paper_set();
    let entries = [
        measure("fig4", budget, |s, b| {
            fig4_pipeline_length_on(s, &workloads, b)
        }),
        measure("fig8", budget, |s, b| fig8_dra_speedup_on(s, &workloads, b)),
        measure_functional_ff(),
    ];
    let json = to_json(budget, &entries);
    let path = std::env::var("LOOSELOOPS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_pr4.json")
        });
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[simmips] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[simmips] cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    print!("{json}");
}
