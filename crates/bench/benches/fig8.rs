//! Figure 8: DRA speedup over the base machine for 3/5/7-cycle register
//! files (DRA:5_3 vs Base:5_5, DRA:7_3 vs Base:5_7, DRA:9_3 vs Base:5_9).

use looseloops::{fig8_dra_speedup_on, Workload};

fn main() {
    looseloops_bench::run_figure("fig8", |sweep, budget| {
        fig8_dra_speedup_on(sweep, &Workload::paper_set(), budget)
    });
}
