//! DRA design-choice ablation: CRC size, CRC replacement policy, and
//! idealized insertion-table cleanup (DESIGN.md section 3).

use looseloops::{ablation_dra_design_on, Benchmark, Workload};

fn main() {
    // The DRA-sensitive subset: the pathological case, the load-loop
    // winners, and one branchy integer code.
    let ws = vec![
        Workload::Single(Benchmark::Apsi),
        Workload::Single(Benchmark::Swim),
        Workload::Single(Benchmark::Turb3d),
        Workload::Single(Benchmark::Gcc),
        Workload::Pair(Benchmark::pairs()[2]), // apsi-swim
    ];
    looseloops_bench::run_figure("ablation-dra-design", |sweep, budget| {
        ablation_dra_design_on(sweep, &ws, budget)
    });
}
