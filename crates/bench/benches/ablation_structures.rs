//! Structure-capacity ablations: the forwarding window (paper §2.2.1) and
//! the instruction-queue size (paper §2.2.2).

use looseloops::{ablation_fwd_window, ablation_iq_size, Benchmark, Workload};

fn main() {
    let ws: Vec<Workload> = [
        Benchmark::M88ksim,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Apsi,
        Benchmark::Go,
    ]
    .into_iter()
    .map(Workload::Single)
    .collect();
    looseloops_bench::run_figure("ablation-fwd-window", |budget| {
        ablation_fwd_window(&ws, budget)
    });
    looseloops_bench::run_figure("ablation-iq-size", |budget| ablation_iq_size(&ws, budget));
}
