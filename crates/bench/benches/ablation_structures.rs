//! Structure-capacity ablations: the forwarding window (paper §2.2.1) and
//! the instruction-queue size (paper §2.2.2).

use looseloops::{ablation_fwd_window_on, ablation_iq_size_on, Benchmark, Workload};

fn main() {
    let ws: Vec<Workload> = [
        Benchmark::M88ksim,
        Benchmark::Swim,
        Benchmark::Su2cor,
        Benchmark::Apsi,
        Benchmark::Go,
    ]
    .into_iter()
    .map(Workload::Single)
    .collect();
    looseloops_bench::run_figure("ablation-fwd-window", |sweep, budget| {
        ablation_fwd_window_on(sweep, &ws, budget)
    });
    looseloops_bench::run_figure("ablation-iq-size", |sweep, budget| {
        ablation_iq_size_on(sweep, &ws, budget)
    });
}
