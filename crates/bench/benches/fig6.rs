//! Figure 6: CDF of cycles between first- and second-operand availability
//! (turb3d, base machine).

use looseloops::fig6_operand_gap_cdf_on;

fn main() {
    looseloops_bench::run_figure("fig6", fig6_operand_gap_cdf_on);
}
