//! Figure 5: fixed 12-cycle DEC→EX, shifting stages between DEC-IQ and
//! IQ-EX (3_9 / 5_7 / 7_5 / 9_3).

use looseloops::{fig5_fixed_total_on, Workload};

fn main() {
    looseloops_bench::run_figure("fig5", |sweep, budget| {
        fig5_fixed_total_on(sweep, &Workload::paper_set(), budget)
    });
}
