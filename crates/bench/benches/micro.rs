//! Micro-benchmarks for the simulator's hot structures and for end-to-end
//! simulation throughput (simulated instructions per wall second). These do
//! not reproduce paper figures; they keep the simulator itself honest.
//!
//! A tiny self-contained harness (median-of-N wall-clock timing) stands in
//! for criterion so the workspace builds offline with no external
//! dependencies. Run with `cargo bench --bench micro`.

use looseloops::branch::{DirectionPredictor, TournamentPredictor};
use looseloops::mem::{Cache, CacheConfig};
use looseloops::regs::{ClusterRegCache, ForwardingBuffer, FreeList, PhysReg, RenameMap};
use looseloops::{Machine, PipelineConfig};
use looseloops_workload::Benchmark;
use std::hint::black_box;
use std::time::Instant;

/// Time `f` for `iters` repetitions, `samples` times, and report the median
/// per-element rate.
fn report<F: FnMut()>(name: &str, elements: u64, samples: usize, mut f: F) {
    // One warmup pass.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = times[times.len() / 2];
    let rate = elements as f64 / median;
    println!(
        "{name:<40} {:>10.1} ns/iter   {:>12.2} Melem/s",
        median * 1e9,
        rate / 1e6
    );
}

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::l1d_default());
    let mut addr = 0u64;
    report("cache/l1d_access_stream", 1024, 50, || {
        for _ in 0..1024 {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(cache.access(addr));
        }
    });
    let mut cache = Cache::new(CacheConfig::l1d_default());
    let mut x = 0x9e3779b97f4a7c15u64;
    report("cache/l1d_access_random", 1024, 50, || {
        for _ in 0..1024 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(cache.access(x & 0xf_ffff));
        }
    });
}

fn bench_predictor() {
    let mut p = TournamentPredictor::new_21264_like();
    report("predictor/tournament_predict_train", 1024, 50, || {
        for pc in 0..1024u64 {
            let (t, ctx) = p.predict_ctx(pc);
            p.train_ctx(pc, ctx, t ^ (pc & 3 == 0));
        }
    });
}

fn bench_regs() {
    let mut crc = ClusterRegCache::new(16);
    report("regs/crc_insert_lookup", 1024, 50, || {
        for i in 0..1024u16 {
            crc.insert(PhysReg(i % 64), i as u64);
            black_box(crc.lookup(PhysReg((i / 2) % 64)));
        }
    });
    let mut fwd = ForwardingBuffer::new(9);
    report("regs/forwarding_insert_lookup", 1024, 50, || {
        for i in 0..1024u64 {
            fwd.insert(PhysReg((i % 128) as u16), i, i);
            black_box(fwd.lookup(PhysReg(((i + 5) % 128) as u16), i));
            if i % 8 == 0 {
                fwd.evict_expired(i);
            }
        }
    });
    let mut fl = FreeList::new(512);
    let mut rm = RenameMap::new(&mut fl);
    let arch = looseloops::isa::Reg::int(5);
    report("regs/rename_rollback", 128, 50, || {
        let mut undo = Vec::with_capacity(128);
        for _ in 0..128 {
            let (_, prev) = rm.rename_dest(arch, &mut fl).unwrap();
            undo.push(prev);
        }
        for prev in undo.into_iter().rev() {
            rm.rollback(arch, prev, &mut fl);
        }
    });
}

/// The predecode win in isolation: per-instruction static-info cost on
/// the rename/execute path. `reinterrogate` is the old per-dynamic cost
/// (class/srcs/dest/affinity recomputed from the `Inst` each time);
/// `table_lookup` is the new one (flat per-PC index into the table built
/// once at machine construction).
fn bench_predecode() {
    let prog = Benchmark::M88ksim.program();
    let n = prog.insts.len() as u64;
    report("predecode/table_build_per_inst", n, 50, || {
        black_box(looseloops_isa::Predecode::of(black_box(&prog)));
    });
    let code = looseloops_isa::Predecode::of(&prog);
    report("predecode/table_lookup", 1024, 50, || {
        for pc in 0..1024u64 {
            let info = code.info(pc % n).expect("in range");
            black_box((info.class, info.srcs, info.dest, info.affinity));
        }
    });
    report("predecode/reinterrogate", 1024, 50, || {
        for pc in 0..1024u64 {
            let inst = prog.insts[(pc % n) as usize];
            black_box(looseloops_isa::StaticInstInfo::of(black_box(inst)));
        }
    });
}

/// Per-instruction cost of the rename and execute stages: dependency-chain
/// ALU kernels keep the front end and the execution core saturated, so
/// wall time per retired instruction tracks exactly the per-dynamic work
/// the predecode table and the hot/cold `DynInst` split compress. A
/// layout regression (fatter hot record, rebuilt static info) moves these
/// numbers without needing a full figure run.
fn bench_rename_execute() {
    // Long ALU dependency chains: rename pressure (2 sources, 1 dest per
    // instruction) with trivially predictable control.
    let alu = "
            addi r1, r31, 10000
            addi r2, r31, 1
        top:
            add  r3, r2, r1
            add  r4, r3, r2
            add  r5, r4, r3
            add  r6, r5, r4
            add  r7, r6, r5
            add  r8, r7, r6
            subi r1, r1, 1
            bne  r1, top
            halt
    ";
    let prog = looseloops::isa::asm::assemble(alu).expect("valid kernel");
    for (name, cfg) in [
        ("rename_execute_base", PipelineConfig::base()),
        ("rename_execute_dra", PipelineConfig::dra_for_rf(3)),
    ] {
        report(&format!("machine/{name}_per_inst"), 30_000, 5, || {
            let mut m = Machine::must(cfg.clone(), vec![prog.clone()]);
            m.run(30_000, 2_000_000).expect("kernel runs");
            black_box(m.stats().total_retired());
        });
    }
}

/// Tracer gating: with the tracer off there is no `PipelineTracer` at all,
/// so fetch formats no Kanata label strings — the off rate must sit at the
/// plain machine rate, far from the tracer-on rate which pays one
/// formatted label line per fetched instruction plus stage records.
fn bench_tracer_gating() {
    let prog = Benchmark::M88ksim.program();
    let cfg = PipelineConfig::base();
    report("machine/fetch_tracer_off_per_inst", 20_000, 5, || {
        let mut m = Machine::must(cfg.clone(), vec![prog.clone()]);
        m.run(20_000, 2_000_000).expect("kernel runs");
        black_box(m.stats().total_retired());
    });
    report("machine/fetch_tracer_on_per_inst", 20_000, 5, || {
        let mut m = Machine::must(cfg.clone(), vec![prog.clone()]);
        m.enable_trace();
        m.run(20_000, 2_000_000).expect("kernel runs");
        black_box(m.take_trace().len());
    });
}

fn bench_machine() {
    for (name, cfg) in [
        ("base_m88ksim", PipelineConfig::base()),
        ("dra_m88ksim", PipelineConfig::dra_for_rf(3)),
    ] {
        report(&format!("machine/{name}_20k_insts"), 20_000, 5, || {
            let mut m = Machine::must(cfg.clone(), vec![Benchmark::M88ksim.program()]);
            m.run(20_000, 2_000_000)
                .expect("benchmark kernels never deadlock");
            black_box(m.stats().total_retired());
        });
    }
}

fn main() {
    bench_cache();
    bench_predictor();
    bench_regs();
    bench_predecode();
    bench_rename_execute();
    bench_tracer_gating();
    bench_machine();
}
