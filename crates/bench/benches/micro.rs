//! Criterion micro-benchmarks for the simulator's hot structures and for
//! end-to-end simulation throughput (simulated instructions per wall
//! second). These do not reproduce paper figures; they keep the simulator
//! itself honest.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use looseloops::branch::{DirectionPredictor, TournamentPredictor};
use looseloops::mem::{Cache, CacheConfig};
use looseloops::regs::{ClusterRegCache, ForwardingBuffer, FreeList, PhysReg, RenameMap};
use looseloops::{Machine, PipelineConfig};
use looseloops_workload::Benchmark;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("l1d_access_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1d_default());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                addr = addr.wrapping_add(64) & 0xf_ffff;
                black_box(cache.access(addr));
            }
        })
    });
    g.bench_function("l1d_access_random", |b| {
        let mut cache = Cache::new(CacheConfig::l1d_default());
        let mut x = 0x9e3779b97f4a7c15u64;
        b.iter(|| {
            for _ in 0..1024 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                black_box(cache.access(x & 0xf_ffff));
            }
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("tournament_predict_train", |b| {
        let mut p = TournamentPredictor::new_21264_like();
        b.iter(|| {
            for pc in 0..1024u64 {
                let (t, ctx) = p.predict_ctx(pc);
                p.train_ctx(pc, ctx, t ^ (pc & 3 == 0));
            }
        })
    });
    g.finish();
}

fn bench_regs(c: &mut Criterion) {
    let mut g = c.benchmark_group("regs");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("crc_insert_lookup", |b| {
        let mut crc = ClusterRegCache::new(16);
        b.iter(|| {
            for i in 0..1024u16 {
                crc.insert(PhysReg(i % 64), i as u64);
                black_box(crc.lookup(PhysReg((i / 2) % 64)));
            }
        })
    });
    g.bench_function("forwarding_insert_lookup", |b| {
        let mut fwd = ForwardingBuffer::new(9);
        b.iter(|| {
            for i in 0..1024u64 {
                fwd.insert(PhysReg((i % 128) as u16), i, i);
                black_box(fwd.lookup(PhysReg(((i + 5) % 128) as u16), i));
                if i % 8 == 0 {
                    fwd.evict_expired(i);
                }
            }
        })
    });
    g.bench_function("rename_rollback", |b| {
        let mut fl = FreeList::new(512);
        let mut rm = RenameMap::new(&mut fl);
        let arch = looseloops::isa::Reg::int(5);
        b.iter(|| {
            let mut undo = Vec::with_capacity(128);
            for _ in 0..128 {
                let (_, prev) = rm.rename_dest(arch, &mut fl).unwrap();
                undo.push(prev);
            }
            for prev in undo.into_iter().rev() {
                rm.rollback(arch, prev, &mut fl);
            }
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    for (name, cfg) in [
        ("base_m88ksim", PipelineConfig::base()),
        ("dra_m88ksim", PipelineConfig::dra_for_rf(3)),
    ] {
        g.throughput(Throughput::Elements(20_000));
        g.bench_function(format!("{name}_20k_insts"), |b| {
            b.iter(|| {
                let mut m = Machine::new(cfg.clone(), vec![Benchmark::M88ksim.program()]);
                m.run(20_000, 2_000_000);
                black_box(m.stats().total_retired())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache, bench_predictor, bench_regs, bench_machine);
criterion_main!(benches);
