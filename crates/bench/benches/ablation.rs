//! §2.2.2 ablation: load-resolution-loop management policies
//! (tree reissue / 21264 shadow reissue / stall / refetch).

use looseloops::{ablation_load_policies, Workload};

fn main() {
    looseloops_bench::run_figure("ablation-load-policy", |budget| {
        ablation_load_policies(&Workload::paper_set(), budget)
    });
}
