//! §2.2.2 ablation: load-resolution-loop management policies
//! (tree reissue / 21264 shadow reissue / stall / refetch).

use looseloops::{ablation_load_policies_on, Workload};

fn main() {
    looseloops_bench::run_figure("ablation-load-policy", |sweep, budget| {
        ablation_load_policies_on(sweep, &Workload::paper_set(), budget)
    });
}
