//! Figure 4: performance vs pipeline length (DEC→EX = 6/10/14/18 cycles).

use looseloops::{fig4_pipeline_length_on, Workload};

fn main() {
    looseloops_bench::run_figure("fig4", |sweep, budget| {
        fig4_pipeline_length_on(sweep, &Workload::paper_set(), budget)
    });
}
