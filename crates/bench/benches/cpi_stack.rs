//! Per-loop CPI stacks: base vs DRA machine (5-cycle register file).
//!
//! The table makes the paper's argument quantitative per workload: on the
//! base machine the lost retire slots concentrate in the branch- and
//! load-resolution loops; the DRA shortens IQ-EX (shrinking both) at the
//! price of a new operand-resolution component.

use looseloops::{cpi_stack_report_on, PipelineConfig, SweepEngine, Workload};
use std::time::Instant;

fn main() {
    let budget = looseloops_bench::budget_from_env();
    let sweep = SweepEngine::from_env();
    eprintln!(
        "[cpi-stack] warmup={} measure={} instructions per run, {} sweep workers…",
        budget.warmup,
        budget.measure,
        sweep.workers()
    );
    let base = PipelineConfig::base_for_rf(5);
    let dra = PipelineConfig::dra_for_rf(5);
    let configs = [
        (
            format!("base:{}_{}", base.dec_iq_stages, base.iq_ex_stages),
            base,
        ),
        (
            format!("dra:{}_{}", dra.dec_iq_stages, dra.iq_ex_stages),
            dra,
        ),
    ];
    let t0 = Instant::now();
    let rep = cpi_stack_report_on(
        &sweep,
        "cpi-stack",
        "Per-loop CPI stacks, base vs DRA (5-cycle register file)",
        &configs,
        &Workload::paper_set(),
        budget,
    );
    eprintln!("[cpi-stack] done in {:.1}s", t0.elapsed().as_secs_f64());
    eprintln!("[cpi-stack] sweep: {}", sweep.summary().line());
    println!("{rep}");
    let dir = std::path::PathBuf::from("target/figures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("cpi_stack.json");
        if std::fs::write(&path, rep.to_json()).is_ok() {
            println!("(archived to {})", path.display());
        }
    }
}
