//! Shared harness for the figure benches.
//!
//! Each `benches/figN.rs` target regenerates one figure of the paper's
//! evaluation (see DESIGN.md §3). They run under `cargo bench` with
//! `harness = false`, print the paper-style table, and archive JSON under
//! `target/figures/`.
//!
//! Budgets and parallelism are overridable for quick runs:
//!
//! ```text
//! LOOSELOOPS_WARMUP=5000 LOOSELOOPS_MEASURE=50000 cargo bench --bench fig4
//! LOOSELOOPS_JOBS=8 cargo bench --bench fig8        # 8 sweep workers
//! LOOSELOOPS_SWEEP_VERBOSE=1 cargo bench --bench fig4   # per-job timing
//! ```
//!
//! Every figure runs on a [`SweepEngine`]: the grid of independent
//! simulations is spread over `LOOSELOOPS_JOBS` workers (default: all
//! cores) and memoized, and the harness prints a sweep summary line —
//! jobs run, cache hits, aggregate simulated MIPS — after each figure.

use looseloops::{FigureResult, RunBudget, SweepEngine};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Apply `LOOSELOOPS_WARMUP` / `LOOSELOOPS_MEASURE` / `LOOSELOOPS_MAX_CYCLES`
/// overrides from `lookup` to the default bench budget.
///
/// # Errors
///
/// A value that does not parse as an unsigned integer is an error naming
/// the variable and the offending value.
pub fn budget_from_vars(lookup: impl Fn(&str) -> Option<String>) -> Result<RunBudget, String> {
    fn parse(name: &str, value: &str) -> Result<u64, String> {
        value
            .trim()
            .parse()
            .map_err(|_| format!("{name}: cannot parse `{value}` as an unsigned integer"))
    }
    let mut b = RunBudget::bench();
    if let Some(v) = lookup("LOOSELOOPS_WARMUP") {
        b.warmup = parse("LOOSELOOPS_WARMUP", &v)?;
    }
    if let Some(v) = lookup("LOOSELOOPS_MEASURE") {
        b.measure = parse("LOOSELOOPS_MEASURE", &v)?;
    }
    if let Some(v) = lookup("LOOSELOOPS_MAX_CYCLES") {
        b.max_cycles = parse("LOOSELOOPS_MAX_CYCLES", &v)?;
    }
    Ok(b)
}

/// Read the run budget from the environment, defaulting to
/// [`RunBudget::bench`].
///
/// # Errors
///
/// As [`budget_from_vars`].
pub fn try_budget_from_env() -> Result<RunBudget, String> {
    budget_from_vars(|name| std::env::var(name).ok())
}

/// [`try_budget_from_env`] for the bench mains: a malformed variable
/// prints a clear error and exits instead of unwinding through a panic.
pub fn budget_from_env() -> RunBudget {
    try_budget_from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Print the figure table and archive it as JSON under `target/figures/`.
pub fn emit(fig: &FigureResult) {
    println!("{fig}");
    let dir = PathBuf::from("target/figures");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", fig.id));
        if fs::write(&path, fig.to_json()).is_ok() {
            println!("(archived to {})", path.display());
        }
    }
}

/// Run a named figure generator on an environment-sized sweep engine,
/// with wall-clock reporting and a sweep summary (jobs run, cache hits,
/// simulated MIPS). Set `LOOSELOOPS_SWEEP_VERBOSE=1` for per-job timing.
pub fn run_figure(name: &str, gen: impl FnOnce(&SweepEngine, RunBudget) -> FigureResult) {
    let budget = budget_from_env();
    let sweep = SweepEngine::from_env();
    eprintln!(
        "[{name}] warmup={} measure={} instructions per run, {} sweep workers…",
        budget.warmup,
        budget.measure,
        sweep.workers()
    );
    let t0 = Instant::now();
    let fig = gen(&sweep, budget);
    eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
    if std::env::var("LOOSELOOPS_SWEEP_VERBOSE").is_ok_and(|v| v != "0") {
        for job in sweep.take_job_log() {
            eprintln!(
                "[{name}]   {:<24} {:>8.1} ms  {:>8.2} sim-MIPS",
                job.label,
                job.wall.as_secs_f64() * 1e3,
                job.sim_mips()
            );
        }
    }
    eprintln!("[{name}] sweep: {}", sweep.summary().line());
    emit(&fig);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn defaults_when_unset() {
        let b = budget_from_vars(|_| None).unwrap();
        assert_eq!(b, RunBudget::bench());
    }

    #[test]
    fn all_three_overrides_apply() {
        let b = budget_from_vars(vars(&[
            ("LOOSELOOPS_WARMUP", "10"),
            ("LOOSELOOPS_MEASURE", "20"),
            ("LOOSELOOPS_MAX_CYCLES", "30"),
        ]))
        .unwrap();
        assert_eq!((b.warmup, b.measure, b.max_cycles), (10, 20, 30));
    }

    #[test]
    fn max_cycles_alone_is_honored() {
        let b = budget_from_vars(vars(&[("LOOSELOOPS_MAX_CYCLES", "123456")])).unwrap();
        assert_eq!(b.max_cycles, 123_456);
        assert_eq!(b.warmup, RunBudget::bench().warmup);
    }

    #[test]
    fn bad_values_name_the_variable_and_value() {
        let e = budget_from_vars(vars(&[("LOOSELOOPS_MEASURE", "lots")])).unwrap_err();
        assert!(
            e.contains("LOOSELOOPS_MEASURE") && e.contains("`lots`"),
            "{e}"
        );
        let e = budget_from_vars(vars(&[("LOOSELOOPS_MAX_CYCLES", "-3")])).unwrap_err();
        assert!(
            e.contains("LOOSELOOPS_MAX_CYCLES") && e.contains("`-3`"),
            "{e}"
        );
    }
}
