//! Shared harness for the figure benches.
//!
//! Each `benches/figN.rs` target regenerates one figure of the paper's
//! evaluation (see DESIGN.md §3). They run under `cargo bench` with
//! `harness = false`, print the paper-style table, and archive JSON under
//! `target/figures/`.
//!
//! Budgets are overridable for quick runs:
//!
//! ```text
//! LOOSELOOPS_WARMUP=5000 LOOSELOOPS_MEASURE=50000 cargo bench --bench fig4
//! ```

use looseloops::{FigureResult, RunBudget};
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Read the run budget from the environment, defaulting to
/// [`RunBudget::bench`].
pub fn budget_from_env() -> RunBudget {
    let mut b = RunBudget::bench();
    if let Ok(v) = std::env::var("LOOSELOOPS_WARMUP") {
        b.warmup = v.parse().expect("LOOSELOOPS_WARMUP must be an integer");
    }
    if let Ok(v) = std::env::var("LOOSELOOPS_MEASURE") {
        b.measure = v.parse().expect("LOOSELOOPS_MEASURE must be an integer");
    }
    b
}

/// Print the figure table and archive it as JSON under `target/figures/`.
pub fn emit(fig: &FigureResult) {
    println!("{fig}");
    let dir = PathBuf::from("target/figures");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", fig.id));
        if fs::write(&path, fig.to_json()).is_ok() {
            println!("(archived to {})", path.display());
        }
    }
}

/// Run a named figure generator with wall-clock reporting.
pub fn run_figure(name: &str, gen: impl FnOnce(RunBudget) -> FigureResult) {
    let budget = budget_from_env();
    eprintln!(
        "[{name}] warmup={} measure={} instructions per run…",
        budget.warmup, budget.measure
    );
    let t0 = Instant::now();
    let fig = gen(budget);
    eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
    emit(&fig);
}
