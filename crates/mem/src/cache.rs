//! Set-associative timing cache with true-LRU replacement.
//!
//! The cache is a *timing directory*: it tracks tags and recency only. The
//! pipeline asks [`Cache::access`] whether an address would hit and lets the
//! functional memory hold the actual bytes.

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set); 1 = direct mapped.
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles on a hit.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's base 64 KiB, 2-way, 64 B-line, 3-cycle data cache.
    pub fn l1d_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 << 10,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 3,
        }
    }

    /// 64 KiB, 2-way, 64 B-line, single-cycle instruction cache.
    pub fn l1i_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 64 << 10,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        }
    }

    /// 1 MiB, 8-way unified second-level cache, 12-cycle access.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 1 << 20,
            assoc: 8,
            line_bytes: 64,
            hit_latency: 12,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    // Monotonic use stamp for true LRU.
    last_use: u64,
}

/// A set-associative, true-LRU, write-allocate timing cache.
///
/// ```
/// use looseloops_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 64, hit_latency: 3 });
/// assert!(!c.access(0x40));   // cold miss, line now resident
/// assert!(c.access(0x40));    // hit
/// assert!(c.access(0x7f));    // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * assoc, row-major by set
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, or capacity not divisible by `assoc * line_bytes`).
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two() && cfg.line_bytes > 0,
            "bad line size"
        );
        assert!(cfg.assoc > 0, "associativity must be positive");
        assert!(
            cfg.size_bytes.is_multiple_of(cfg.assoc * cfg.line_bytes) && cfg.num_sets() > 0,
            "capacity must be a whole number of sets"
        );
        assert!(
            cfg.num_sets().is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            lines: vec![Line::default(); cfg.num_sets() * cfg.assoc],
            cfg,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) as usize) & (self.cfg.num_sets() - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64 / self.cfg.num_sets() as u64
    }

    /// Access `addr`: returns `true` on a hit. On a miss the line is filled
    /// (write-allocate), evicting the LRU way. Recency and statistics are
    /// updated either way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = &mut self.lines[set * self.cfg.assoc..(set + 1) * self.cfg.assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = stamp;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("assoc > 0");
        *victim = Line {
            tag,
            valid: true,
            last_use: stamp,
        };
        false
    }

    /// Would `addr` hit right now? No state is modified.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[set * self.cfg.assoc..(set + 1) * self.cfg.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Fill `addr`'s line without counting an access (used for prefetch-like
    /// warm-up and by tests).
    pub fn fill(&mut self, addr: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let assoc = self.cfg.assoc;
        let ways = &mut self.lines[set * assoc..(set + 1) * assoc];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = stamp;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("assoc");
        *victim = Line {
            tag,
            valid: true,
            last_use: stamp,
        };
    }

    /// Snapshot the directory for a checkpoint: the recency stamp and one
    /// `(tag, valid, last_use)` triple per line (sets × ways, row-major by
    /// set — the in-memory layout). Statistics are not included.
    pub fn export_state(&self) -> (u64, Vec<(u64, bool, u64)>) {
        (
            self.stamp,
            self.lines
                .iter()
                .map(|l| (l.tag, l.valid, l.last_use))
                .collect(),
        )
    }

    /// Restore a snapshot from [`Cache::export_state`]. Rejects snapshots
    /// whose line count does not match this cache's geometry.
    pub fn import_state(&mut self, stamp: u64, lines: &[(u64, bool, u64)]) -> Result<(), String> {
        if lines.len() != self.lines.len() {
            return Err(format!(
                "snapshot has {} lines, geometry needs {}",
                lines.len(),
                self.lines.len()
            ));
        }
        self.stamp = stamp;
        for (dst, &(tag, valid, last_use)) in self.lines.iter_mut().zip(lines) {
            *dst = Line {
                tag,
                valid,
                last_use,
            };
        }
        Ok(())
    }

    /// Invalidate the line containing `addr`, if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for l in &mut self.lines[set * self.cfg.assoc..(set + 1) * self.cfg.assoc] {
            if l.valid && l.tag == tag {
                l.valid = false;
            }
        }
    }

    /// Empty the cache and reset recency (statistics are preserved).
    pub fn invalidate_all(&mut self) {
        self.lines.fill(Line::default());
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B/{}-way/{}B-line cache: {} hits, {} misses ({:.2}% miss)",
            self.cfg.size_bytes,
            self.cfg.assoc,
            self.cfg.line_bytes,
            self.stats.hits,
            self.stats.misses,
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64B lines.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 3,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line, different set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with addresses ≡ 0 (mod 128).
        c.access(0); // way A
        c.access(128); // way B
        c.access(0); // touch A so B is LRU
        c.access(256); // evicts B
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0);
        c.access(128);
        assert!(c.probe(0) && c.probe(128));
        let before = c.stats();
        assert!(!c.probe(256));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        c.invalidate(0);
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn invalidate_all_flushes() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        c.invalidate_all();
        assert!(!c.probe(0) && !c.probe(64));
    }

    #[test]
    fn fill_counts_no_access() {
        let mut c = tiny();
        c.fill(0);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.probe(0));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny();
        // 8 distinct lines mapping to 2 sets x 2 ways: 2x over capacity,
        // round-robin access defeats LRU entirely.
        for _ in 0..4 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn working_set_within_capacity_reuses() {
        let mut c = tiny();
        for _ in 0..4 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.stats().misses, 4, "only cold misses");
        assert_eq!(c.stats().hits, 12);
    }

    #[test]
    fn miss_rate_math() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn default_geometries_are_sane() {
        assert_eq!(CacheConfig::l1d_default().num_sets(), 512);
        assert_eq!(CacheConfig::l2_default().num_sets(), 2048);
        let _ = Cache::new(CacheConfig::l1d_default());
        let _ = Cache::new(CacheConfig::l1i_default());
        let _ = Cache::new(CacheConfig::l2_default());
    }

    #[test]
    #[should_panic]
    fn degenerate_geometry_rejected() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 7,
            hit_latency: 1,
        });
    }
}
