//! Stride-based stream prefetcher (an extension beyond the paper).
//!
//! The paper's load-resolution loop hurts exactly when loads miss; a
//! prefetcher attacks the miss *rate* where the DRA attacks the loop
//! *delay* — making this the natural companion ablation. The design is a
//! classic PC-indexed stride table: when a load PC shows the same address
//! stride twice, the prefetcher starts issuing fills `degree` strides
//! ahead.

/// Configuration for the [`StreamPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// PC-indexed stride-table entries (power of two).
    pub entries: usize,
    /// How many strides ahead to fetch once a stream is confirmed.
    pub degree: u32,
}

impl Default for PrefetchConfig {
    fn default() -> PrefetchConfig {
        PrefetchConfig {
            entries: 256,
            degree: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u64,
    last_addr: u64,
    stride: i64,
    confirmed: bool,
}

/// PC-indexed stride prefetcher. The owner (the memory hierarchy) feeds it
/// every demand access via [`StreamPrefetcher::observe`] and receives the
/// line addresses to prefetch.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<StrideEntry>,
    issued: u64,
}

impl StreamPrefetcher {
    /// Build a prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(cfg: PrefetchConfig) -> StreamPrefetcher {
        assert!(
            cfg.entries.is_power_of_two(),
            "table must be a power of two"
        );
        assert!(cfg.degree > 0, "degree must be positive");
        StreamPrefetcher {
            table: vec![StrideEntry::default(); cfg.entries],
            cfg,
            issued: 0,
        }
    }

    /// Observe a demand access by the load at `pc` to `addr`; returns the
    /// addresses to prefetch (empty until the stride is confirmed).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let i = (pc as usize) & (self.table.len() - 1);
        let e = &mut self.table[i];
        let mut out = Vec::new();
        if e.tag == pc {
            let stride = addr.wrapping_sub(e.last_addr) as i64;
            if stride != 0 && stride == e.stride {
                if e.confirmed {
                    for k in 1..=self.cfg.degree as i64 {
                        out.push(addr.wrapping_add((stride * k) as u64));
                    }
                    self.issued += out.len() as u64;
                } else {
                    e.confirmed = true;
                }
            } else {
                e.stride = stride;
                e.confirmed = false;
            }
            e.last_addr = addr;
        } else {
            *e = StrideEntry {
                tag: pc,
                last_addr: addr,
                stride: 0,
                confirmed: false,
            };
        }
        out
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stride_confirms_then_streams() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            entries: 16,
            degree: 2,
        });
        assert!(p.observe(0x10, 1000).is_empty()); // learn addr
        assert!(p.observe(0x10, 1064).is_empty()); // learn stride
        assert!(p.observe(0x10, 1128).is_empty()); // confirm
        let pf = p.observe(0x10, 1192);
        assert_eq!(pf, vec![1256, 1320], "stream of 64s, degree 2");
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn changing_stride_resets_confirmation() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            entries: 16,
            degree: 1,
        });
        p.observe(0x20, 0);
        p.observe(0x20, 64);
        p.observe(0x20, 128);
        assert!(p.observe(0x20, 512).is_empty(), "stride broke");
        assert!(
            p.observe(0x20, 896).is_empty(),
            "new stride not yet confirmed"
        );
        p.observe(0x20, 1280);
        assert!(!p.observe(0x20, 1664).is_empty(), "new stride confirmed");
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            entries: 16,
            degree: 1,
        });
        p.observe(0x30, 10_000);
        p.observe(0x30, 9_936);
        p.observe(0x30, 9_872);
        let pf = p.observe(0x30, 9_808);
        assert_eq!(pf, vec![9_744]);
    }

    #[test]
    fn pc_aliasing_replaces_entries() {
        let mut p = StreamPrefetcher::new(PrefetchConfig {
            entries: 16,
            degree: 1,
        });
        p.observe(0x1, 0);
        p.observe(0x1, 64);
        p.observe(0x11, 0); // aliases 0x1 in a 16-entry table
        assert!(p.observe(0x1, 128).is_empty(), "entry was stolen");
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        for _ in 0..10 {
            assert!(p.observe(0x40, 4096).is_empty());
        }
    }
}
