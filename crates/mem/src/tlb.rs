//! Data-TLB timing model.
//!
//! The paper attributes part of `turb3d`'s pipeline-length sensitivity to
//! dTLB misses "where recovery from the beginning of the pipeline impacts
//! performance" — i.e. a dTLB miss is handled as a trap that refetches from
//! the start of the pipe. [`TlbMissPolicy`] lets the pipeline choose between
//! that trap behaviour and a simpler fixed walk penalty.

/// What a TLB miss does to the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbMissPolicy {
    /// Add a fixed fill penalty to the access latency (hardware walker).
    Penalty(u32),
    /// Raise a trap; the pipeline squashes and refetches from the faulting
    /// instruction (the fill still happens so the retry hits).
    Trap,
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Translation present.
    Hit,
    /// Missed; a fixed `extra` cycles were added by the hardware walker.
    MissPenalty {
        /// Extra cycles added to the access.
        extra: u32,
    },
    /// Missed under [`TlbMissPolicy::Trap`]; the pipeline must trap.
    MissTrap,
}

/// TLB geometry and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Miss handling.
    pub miss_policy: TlbMissPolicy,
}

impl Default for TlbConfig {
    fn default() -> TlbConfig {
        TlbConfig {
            entries: 64,
            page_bytes: 8192,
            miss_policy: TlbMissPolicy::Penalty(30),
        }
    }
}

/// Fully-associative, true-LRU translation look-aside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    // (vpn, last_use)
    entries: Vec<(u64, u64)>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(cfg: TlbConfig) -> Tlb {
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        assert!(
            cfg.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            cfg,
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// This TLB's configuration.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    /// Translate the page containing `addr`, filling on a miss.
    pub fn access(&mut self, addr: u64) -> TlbOutcome {
        self.stamp += 1;
        let vpn = addr / self.cfg.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.stamp;
            self.hits += 1;
            return TlbOutcome::Hit;
        }
        self.misses += 1;
        if self.entries.len() == self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        match self.cfg.miss_policy {
            TlbMissPolicy::Penalty(extra) => TlbOutcome::MissPenalty { extra },
            TlbMissPolicy::Trap => TlbOutcome::MissTrap,
        }
    }

    /// Would `addr` translate without missing? No state is modified.
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr / self.cfg.page_bytes;
        self.entries.iter().any(|(v, _)| *v == vpn)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Snapshot the translations for a checkpoint: the recency stamp and
    /// the resident `(vpn, last_use)` pairs. Statistics are not included.
    pub fn export_state(&self) -> (u64, Vec<(u64, u64)>) {
        (self.stamp, self.entries.clone())
    }

    /// Restore a snapshot from [`Tlb::export_state`]. Rejects snapshots
    /// holding more entries than this TLB's capacity.
    pub fn import_state(&mut self, stamp: u64, entries: &[(u64, u64)]) -> Result<(), String> {
        if entries.len() > self.cfg.entries {
            return Err(format!(
                "snapshot has {} entries, capacity is {}",
                entries.len(),
                self.cfg.entries
            ));
        }
        self.stamp = stamp;
        self.entries.clear();
        self.entries.extend_from_slice(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: TlbMissPolicy) -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_policy: policy,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut t = tiny(TlbMissPolicy::Penalty(30));
        assert_eq!(t.access(0x1000), TlbOutcome::MissPenalty { extra: 30 });
        assert_eq!(t.access(0x1fff), TlbOutcome::Hit, "same page");
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = tiny(TlbMissPolicy::Penalty(1));
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0
        t.access(0x2000); // evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn trap_policy_fills_so_retry_hits() {
        let mut t = tiny(TlbMissPolicy::Trap);
        assert_eq!(t.access(0x5000), TlbOutcome::MissTrap);
        assert_eq!(
            t.access(0x5000),
            TlbOutcome::Hit,
            "trap handler filled the entry"
        );
    }

    #[test]
    fn probe_is_pure() {
        let t = tiny(TlbMissPolicy::Trap);
        assert!(!t.probe(0x1234));
    }
}
