//! Cache-bank contention tracking.
//!
//! The paper's load-resolution loop exists because a load's latency is
//! non-deterministic: it may hit, miss, *or suffer a bank conflict* (§2.2.2).
//! [`BankTracker`] models the conflict part: each bank can start one access
//! per cycle; a second access to the same bank in the same cycle is delayed.

/// Per-cycle bank-busy bookkeeping for an interleaved cache.
#[derive(Debug, Clone)]
pub struct BankTracker {
    busy_until: Vec<u64>,
    line_bytes: u64,
    conflicts: u64,
}

impl BankTracker {
    /// A tracker for `banks` banks interleaved at `line_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or not a power of two.
    pub fn new(banks: usize, line_bytes: u64) -> BankTracker {
        assert!(
            banks > 0 && banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        BankTracker {
            busy_until: vec![0; banks],
            line_bytes,
            conflicts: 0,
        }
    }

    /// Which bank serves `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) as usize) & (self.busy_until.len() - 1)
    }

    /// Reserve `addr`'s bank starting at cycle `now`. Returns the number of
    /// extra cycles the access must wait for the bank (0 if free).
    pub fn reserve(&mut self, addr: u64, now: u64) -> u64 {
        let b = self.bank_of(addr);
        let free_at = self.busy_until[b];
        let start = now.max(free_at);
        self.busy_until[b] = start + 1;
        let wait = start - now;
        if wait > 0 {
            self.conflicts += 1;
        }
        wait
    }

    /// Total accesses that experienced a conflict delay.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.busy_until.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_bank_same_cycle_conflicts() {
        let mut b = BankTracker::new(4, 64);
        assert_eq!(b.reserve(0, 10), 0);
        assert_eq!(b.reserve(0, 10), 1, "second access to bank 0 waits");
        assert_eq!(b.reserve(0, 10), 2);
        assert_eq!(b.conflicts(), 2);
    }

    #[test]
    fn different_banks_no_conflict() {
        let mut b = BankTracker::new(4, 64);
        assert_eq!(b.reserve(0, 5), 0);
        assert_eq!(b.reserve(64, 5), 0);
        assert_eq!(b.reserve(128, 5), 0);
        assert_eq!(b.reserve(192, 5), 0);
        assert_eq!(b.conflicts(), 0);
    }

    #[test]
    fn banks_free_up_next_cycle() {
        let mut b = BankTracker::new(2, 64);
        assert_eq!(b.reserve(0, 1), 0);
        assert_eq!(b.reserve(0, 2), 0);
        assert_eq!(b.conflicts(), 0);
    }

    #[test]
    fn bank_mapping_interleaves_by_line() {
        let b = BankTracker::new(4, 64);
        assert_eq!(b.bank_of(0), 0);
        assert_eq!(b.bank_of(63), 0);
        assert_eq!(b.bank_of(64), 1);
        assert_eq!(b.bank_of(256), 0);
        assert_eq!(b.num_banks(), 4);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_banks_rejected() {
        let _ = BankTracker::new(3, 64);
    }
}
