//! Memory-hierarchy timing models for the *Loose Loops* reproduction.
//!
//! The functional data lives in a flat byte-addressed memory
//! ([`looseloops_isa::FlatMemory`](https://docs.rs/looseloops-isa)); the
//! structures in this crate are *timing directories*: they track which lines
//! would be resident in each cache level and answer "how long would this
//! access take, and where did it hit?". Keeping data and timing separate
//! makes the timing model trivially coherent and lets the pipeline
//! replay/flush speculative work without un-doing memory traffic.
//!
//! Components:
//!
//! - [`Cache`]: set-associative, LRU, write-allocate timing cache.
//! - [`BankTracker`]: per-cycle bank-busy accounting for bank conflicts.
//! - [`Tlb`]: small fully-associative translation buffer whose misses can
//!   either add a fixed walk penalty or raise a pipeline trap (the paper's
//!   `turb3d` discussion relies on dTLB-miss traps recovering from fetch).
//! - [`MemHierarchy`]: L1I + L1D + unified L2 + main memory — the
//!   configuration of the paper's base machine — returning an
//!   [`AccessResult`] per access.

pub mod bank;
pub mod cache;
pub mod hierarchy;
pub mod prefetch;
pub mod tlb;

pub use bank::BankTracker;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{
    AccessKind, AccessResult, HierarchyConfig, HierarchyStats, HierarchyWarmState, HitLevel,
    MemHierarchy,
};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use tlb::{Tlb, TlbConfig, TlbMissPolicy, TlbOutcome};
