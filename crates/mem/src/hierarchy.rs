//! The full memory hierarchy of the paper's base machine: split first-level
//! caches, a unified second level, banked L1D access, a data TLB, and a flat
//! main-memory latency.

use crate::bank::BankTracker;
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::tlb::{Tlb, TlbConfig, TlbOutcome};

/// Which port an access uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I, no TLB modelled).
    InstFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache.
    L1,
    /// Unified second-level cache.
    L2,
    /// Main memory.
    Memory,
}

/// Timing outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles, including bank-conflict and TLB-walk delays.
    pub latency: u32,
    /// The level that supplied the line.
    pub level: HitLevel,
    /// The access missed in the data TLB and the policy is `Trap`; the
    /// pipeline must squash and refetch.
    pub tlb_trap: bool,
    /// Extra cycles spent waiting for a busy bank.
    pub bank_wait: u32,
}

impl AccessResult {
    /// True if this access hit in the first-level cache with no TLB trap —
    /// the case the paper's load-hit speculation bets on.
    pub fn is_l1_hit(&self) -> bool {
        self.level == HitLevel::L1 && !self.tlb_trap
    }
}

/// Configuration of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level instruction cache.
    pub l1i: CacheConfig,
    /// First-level data cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Main-memory access latency (beyond L2) in cycles.
    pub mem_latency: u32,
    /// Number of L1D banks (power of two).
    pub l1d_banks: usize,
    /// Miss-status holding registers: maximum concurrent outstanding L1D
    /// misses. Further misses wait for a free MSHR (bounding memory-level
    /// parallelism).
    pub mshrs: usize,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Optional L1D stride prefetcher (an extension beyond the paper's
    /// machine; `None` reproduces the paper).
    pub prefetch: Option<PrefetchConfig>,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::l1i_default(),
            l1d: CacheConfig::l1d_default(),
            l2: CacheConfig::l2_default(),
            mem_latency: 120,
            l1d_banks: 8,
            mshrs: 8,
            dtlb: TlbConfig::default(),
            prefetch: None,
        }
    }
}

/// Aggregate statistics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction cache hits/misses.
    pub l1i: CacheStats,
    /// L1 data cache hits/misses.
    pub l1d: CacheStats,
    /// Unified L2 hits/misses.
    pub l2: CacheStats,
    /// Data-TLB (hits, misses).
    pub dtlb_hits: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// L1D bank conflicts.
    pub bank_conflicts: u64,
    /// Accesses delayed waiting for a free MSHR.
    pub mshr_waits: u64,
    /// Prefetch fills issued (0 without a prefetcher).
    pub prefetches: u64,
}

/// Portable warm-state snapshot of the hierarchy — cache/TLB tags and
/// recency only. Each cache entry is `(stamp, lines)` with lines as
/// `(tag, valid, last_use)`; the TLB entry is `(stamp, (vpn, last_use))`.
/// In-flight timing state (banks, MSHRs) is intentionally absent: a
/// checkpoint is taken at a quiesced functional boundary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchyWarmState {
    /// L1 instruction-cache lines.
    pub l1i: (u64, Vec<(u64, bool, u64)>),
    /// L1 data-cache lines.
    pub l1d: (u64, Vec<(u64, bool, u64)>),
    /// Unified L2 lines.
    pub l2: (u64, Vec<(u64, bool, u64)>),
    /// Data-TLB entries.
    pub dtlb: (u64, Vec<(u64, u64)>),
}

/// L1I + L1D + L2 + memory timing model.
///
/// ```
/// use looseloops_mem::{MemHierarchy, HierarchyConfig, AccessKind, HitLevel};
/// let mut m = MemHierarchy::new(HierarchyConfig::default());
/// let first = m.access(AccessKind::DataRead, 0x1000, 0);
/// assert_eq!(first.level, HitLevel::Memory);
/// let again = m.access(AccessKind::DataRead, 0x1000, 10);
/// assert_eq!(again.level, HitLevel::L1);
/// assert!(again.latency < first.latency);
/// ```
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    banks: BankTracker,
    // Completion cycles of outstanding L1D misses.
    mshr_busy: Vec<u64>,
    mshr_waits: u64,
    prefetcher: Option<StreamPrefetcher>,
}

impl MemHierarchy {
    /// Build the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> MemHierarchy {
        MemHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            dtlb: Tlb::new(cfg.dtlb),
            banks: BankTracker::new(cfg.l1d_banks, cfg.l1d.line_bytes as u64),
            mshr_busy: Vec::with_capacity(cfg.mshrs),
            mshr_waits: 0,
            prefetcher: cfg.prefetch.map(StreamPrefetcher::new),
            cfg,
        }
    }

    /// Feed the prefetcher a demand load (`pc`, `addr`); confirmed streams
    /// fill L1D and L2 directly (an idealized zero-contention fill path).
    pub fn observe_load(&mut self, pc: u64, addr: u64) {
        if let Some(p) = &mut self.prefetcher {
            for target in p.observe(pc, addr) {
                self.l1d.fill(target);
                self.l2.fill(target);
            }
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Perform one timed access at cycle `now`.
    pub fn access(&mut self, kind: AccessKind, addr: u64, now: u64) -> AccessResult {
        match kind {
            AccessKind::InstFetch => {
                let (l1, l1_lat) = (&mut self.l1i, self.cfg.l1i.hit_latency);
                if l1.access(addr) {
                    return AccessResult {
                        latency: l1_lat,
                        level: HitLevel::L1,
                        tlb_trap: false,
                        bank_wait: 0,
                    };
                }
                if self.l2.access(addr) {
                    return AccessResult {
                        latency: l1_lat + self.cfg.l2.hit_latency,
                        level: HitLevel::L2,
                        tlb_trap: false,
                        bank_wait: 0,
                    };
                }
                AccessResult {
                    latency: l1_lat + self.cfg.l2.hit_latency + self.cfg.mem_latency,
                    level: HitLevel::Memory,
                    tlb_trap: false,
                    bank_wait: 0,
                }
            }
            AccessKind::DataRead | AccessKind::DataWrite => {
                // Stalls the request suffers *before* it can allocate an
                // MSHR: the L1 pipeline itself, a TLB walk, a busy bank.
                let mut pre = self.cfg.l1d.hit_latency;
                let mut tlb_trap = false;
                match self.dtlb.access(addr) {
                    TlbOutcome::Hit => {}
                    TlbOutcome::MissPenalty { extra } => pre += extra,
                    TlbOutcome::MissTrap => tlb_trap = true,
                }
                let bank_wait = self.banks.reserve(addr, now) as u32;
                pre += bank_wait;
                // The miss's own service time below L1.
                let mut service = 0u32;
                let level = if self.l1d.access(addr) {
                    HitLevel::L1
                } else if self.l2.access(addr) {
                    service += self.cfg.l2.hit_latency;
                    HitLevel::L2
                } else {
                    service += self.cfg.l2.hit_latency + self.cfg.mem_latency;
                    HitLevel::Memory
                };
                let mut mshr_wait = 0u32;
                if level != HitLevel::L1 {
                    // An L1 miss allocates an MSHR once it reaches the cache
                    // (after its pre-MSHR stalls) and holds it until the fill
                    // returns. When all MSHRs are busy the miss waits for the
                    // earliest to free — measured from its own arrival, not
                    // the call cycle, so a cycle spent in the TLB walk or a
                    // bank queue is never also charged as MSHR wait, and the
                    // slot's recorded flight time covers exactly its own
                    // wait + service.
                    let t_req = now + u64::from(pre);
                    self.mshr_busy.retain(|&done| done > t_req);
                    if self.mshr_busy.len() >= self.cfg.mshrs {
                        let earliest = *self.mshr_busy.iter().min().expect("non-empty");
                        // > 0 by the retain above; saturate rather than
                        // silently truncate a pathological wait.
                        let wait = earliest - t_req;
                        debug_assert!(
                            u32::try_from(wait).is_ok(),
                            "MSHR wait {wait} overflows u32"
                        );
                        mshr_wait = u32::try_from(wait).unwrap_or(u32::MAX);
                        self.mshr_waits += 1;
                        // Retire the slot we are taking over.
                        if let Some(pos) = self.mshr_busy.iter().position(|&d| d == earliest) {
                            self.mshr_busy.swap_remove(pos);
                        }
                    }
                    self.mshr_busy
                        .push(t_req + u64::from(mshr_wait) + u64::from(service));
                }
                AccessResult {
                    latency: pre.saturating_add(mshr_wait).saturating_add(service),
                    level,
                    tlb_trap,
                    bank_wait,
                }
            }
        }
    }

    /// Functionally warm the hierarchy: update cache/TLB contents and
    /// recency exactly as [`MemHierarchy::access`] would, but with no
    /// bank/MSHR timing and no latency computation. This is the hook the
    /// fast-forward interpreter drives; after a warm-up done entirely
    /// through it, tag/LRU state matches a detailed warm-up of the same
    /// access stream (in-flight MSHR/bank state is empty, which is the
    /// correct quiesced state at a functional/detailed boundary).
    pub fn warm_access(&mut self, kind: AccessKind, addr: u64) {
        match kind {
            AccessKind::InstFetch => {
                if !self.l1i.access(addr) {
                    self.l2.access(addr);
                }
            }
            AccessKind::DataRead | AccessKind::DataWrite => {
                let _ = self.dtlb.access(addr);
                if !self.l1d.access(addr) {
                    self.l2.access(addr);
                }
            }
        }
    }

    /// Number of MSHRs still occupied by misses in flight at cycle `now`.
    pub fn mshrs_in_flight(&self, now: u64) -> usize {
        self.mshr_busy.iter().filter(|&&done| done > now).count()
    }

    /// Structural self-check for the invariant auditor: the outstanding-miss
    /// list may never exceed the configured MSHR count (the `access` path
    /// displaces a slot before pushing, so a violation means the accounting
    /// fix regressed).
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.mshr_busy.len() > self.cfg.mshrs {
            return Err(format!(
                "{} outstanding misses exceed {} MSHRs",
                self.mshr_busy.len(),
                self.cfg.mshrs
            ));
        }
        Ok(())
    }

    /// Snapshot the warm state (cache/TLB tags and recency) for a
    /// checkpoint. Timing state (banks, MSHRs) is deliberately excluded:
    /// it has no meaning across a functional/detailed boundary.
    pub fn export_warm(&self) -> HierarchyWarmState {
        HierarchyWarmState {
            l1i: self.l1i.export_state(),
            l1d: self.l1d.export_state(),
            l2: self.l2.export_state(),
            dtlb: self.dtlb.export_state(),
        }
    }

    /// Restore warm state captured by [`MemHierarchy::export_warm`].
    /// Fails (leaving some levels possibly updated) if any snapshot does
    /// not match this hierarchy's geometry.
    pub fn import_warm(&mut self, warm: &HierarchyWarmState) -> Result<(), String> {
        self.l1i
            .import_state(warm.l1i.0, &warm.l1i.1)
            .map_err(|e| format!("l1i: {e}"))?;
        self.l1d
            .import_state(warm.l1d.0, &warm.l1d.1)
            .map_err(|e| format!("l1d: {e}"))?;
        self.l2
            .import_state(warm.l2.0, &warm.l2.1)
            .map_err(|e| format!("l2: {e}"))?;
        self.dtlb
            .import_state(warm.dtlb.0, &warm.dtlb.1)
            .map_err(|e| format!("dtlb: {e}"))?;
        Ok(())
    }

    /// Would a data access to `addr` hit in L1D? (No state change.)
    pub fn probe_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Latency of an L1D hit with no hazards — the deterministic value the
    /// issue logic schedules load consumers against (the paper's load-hit
    /// speculation).
    pub fn l1d_hit_latency(&self) -> u32 {
        self.cfg.l1d.hit_latency
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        let (dtlb_hits, dtlb_misses) = self.dtlb.stats();
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            dtlb_hits,
            dtlb_misses,
            bank_conflicts: self.banks.conflicts(),
            mshr_waits: self.mshr_waits,
            prefetches: self.prefetcher.as_ref().map_or(0, StreamPrefetcher::issued),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::TlbMissPolicy;

    fn small() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 8192,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 12,
            },
            mem_latency: 100,
            l1d_banks: 2,
            mshrs: 8,
            dtlb: TlbConfig {
                entries: 4,
                page_bytes: 4096,
                miss_policy: TlbMissPolicy::Penalty(20),
            },
            prefetch: None,
        })
    }

    #[test]
    fn prefetcher_converts_stream_misses_to_hits() {
        let mut with = MemHierarchy::new(HierarchyConfig {
            prefetch: Some(crate::prefetch::PrefetchConfig::default()),
            ..HierarchyConfig::default()
        });
        let mut without = MemHierarchy::new(HierarchyConfig::default());
        let mut now = 0;
        for i in 0..64u64 {
            let addr = 0x40_0000 + i * 64;
            with.access(AccessKind::DataRead, addr, now);
            with.observe_load(0x99, addr);
            without.access(AccessKind::DataRead, addr, now);
            now += 200; // let MSHRs drain
        }
        let (w, wo) = (with.stats(), without.stats());
        assert!(
            w.prefetches > 20,
            "stream must be detected: {}",
            w.prefetches
        );
        assert!(
            w.l1d.misses < wo.l1d.misses / 2,
            "prefetching must remove most stream misses: {} vs {}",
            w.l1d.misses,
            wo.l1d.misses
        );
    }

    #[test]
    fn mshr_limit_serializes_excess_misses() {
        let mut m = MemHierarchy::new(HierarchyConfig {
            mshrs: 1,
            ..HierarchyConfig::default()
        });
        // Two cold misses in the same cycle to different lines/banks/pages.
        let a = m.access(AccessKind::DataRead, 0x10_0000, 0);
        let b = m.access(AccessKind::DataRead, 0x20_0040, 0);
        assert!(!a.is_l1_hit() && !b.is_l1_hit());
        // a: 3 (L1D) + 30 (TLB walk) + 12 (L2) + 120 (mem) = 165, with its
        // MSHR allocated at t_req = 33 and held until 165.
        assert_eq!(a.latency, 3 + 30 + 12 + 120);
        // b arrives at its own t_req = 33, waits 165 - 33 = 132 for the
        // single MSHR, then serves its own 132-cycle miss: 33 + 132 + 132.
        // (The old accounting folded the wait into the slot's flight time
        // and measured it from the call cycle, giving 330.)
        assert_eq!(b.latency, 33 + 132 + 132);
        assert_eq!(m.stats().mshr_waits, 1);
    }

    #[test]
    fn mshr_saturation_pins_occupancy_and_latency() {
        // Zero-penalty TLB and plenty of banks so the only contention is
        // the 2-entry MSHR file; all three accesses are cold L2+mem misses
        // issued in the same cycle to distinct lines on distinct banks.
        let mut m = MemHierarchy::new(HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 3,
            },
            l2: CacheConfig {
                size_bytes: 8192,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 12,
            },
            mem_latency: 100,
            l1d_banks: 8,
            mshrs: 2,
            dtlb: TlbConfig {
                entries: 64,
                page_bytes: 4096,
                miss_policy: TlbMissPolicy::Penalty(0),
            },
            ..HierarchyConfig::default()
        });
        let a = m.access(AccessKind::DataRead, 0x00, 0);
        let b = m.access(AccessKind::DataRead, 0x40, 0);
        let c = m.access(AccessKind::DataRead, 0x80, 0);
        // a, b: pre = 3, service = 12 + 100; MSHRs held over (3, 115].
        assert_eq!(a.latency, 3 + 12 + 100);
        assert_eq!(b.latency, 3 + 12 + 100);
        // c: arrives at t_req = 3 with both MSHRs busy until 115; waits
        // 112, then its own 112-cycle service: 3 + 112 + 112 = 227. The
        // pre-fix accounting measured the wait from cycle 0 and would
        // report 230 here (and record the slot busy for 230 cycles).
        assert_eq!(c.latency, 3 + 112 + 112);
        assert_eq!(m.stats().mshr_waits, 1);
        // Occupancy: c displaced one of the (a, b) slots, so exactly two
        // misses are in flight until 115, then only c's until 227.
        assert_eq!(m.mshrs_in_flight(4), 2);
        assert_eq!(m.mshrs_in_flight(116), 1);
        assert_eq!(m.mshrs_in_flight(227), 0);
        m.check_consistency().expect("bounded occupancy");
    }

    #[test]
    fn warm_access_matches_detailed_residency() {
        let mut warm = small();
        let mut timed = small();
        let mut now = 0;
        for i in 0..48u64 {
            let addr = (i * 64) % 2048;
            warm.warm_access(AccessKind::DataRead, addr);
            timed.access(AccessKind::DataRead, addr, now);
            warm.warm_access(AccessKind::InstFetch, addr);
            timed.access(AccessKind::InstFetch, addr, now);
            now += 200; // drain banks/MSHRs so timing never skews recency
        }
        let (w, t) = (warm.export_warm(), timed.export_warm());
        assert_eq!(
            w, t,
            "functional warm-up must leave identical tag/LRU state"
        );
        let s = warm.stats();
        assert_eq!(s.bank_conflicts, 0);
        assert_eq!(s.mshr_waits, 0, "warm path models no MSHR timing");
    }

    #[test]
    fn warm_state_round_trips() {
        let mut m = small();
        for i in 0..32u64 {
            m.warm_access(AccessKind::DataRead, i * 64);
            m.warm_access(AccessKind::InstFetch, 4096 + i * 64);
        }
        let warm = m.export_warm();
        let mut fresh = small();
        fresh.import_warm(&warm).expect("matching geometry");
        assert_eq!(fresh.export_warm(), warm);
        // Restored residency answers probes like the original.
        assert_eq!(fresh.probe_l1d(0x40), m.probe_l1d(0x40));

        // Mismatched geometry is rejected, not silently truncated.
        let mut tiny = MemHierarchy::new(HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 3,
            },
            ..HierarchyConfig::default()
        });
        assert!(tiny.import_warm(&warm).is_err());
    }

    #[test]
    fn plentiful_mshrs_do_not_wait() {
        let mut m = MemHierarchy::new(HierarchyConfig::default());
        for i in 0..8u64 {
            m.access(AccessKind::DataRead, 0x10_0000 + i * 64, 0);
        }
        assert_eq!(m.stats().mshr_waits, 0);
    }

    #[test]
    fn latency_accumulates_down_the_hierarchy() {
        let mut m = small();
        let r = m.access(AccessKind::DataRead, 0, 0);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.latency, 3 + 20 + 12 + 100); // l1 + tlb walk + l2 + mem
        let r = m.access(AccessKind::DataRead, 0, 1);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, 3);
        assert!(r.is_l1_hit());
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut m = small();
        // Fill 32 lines: 2x the 1 KiB L1D, well within the 8 KiB L2.
        // Keep all lines within one TLB page to isolate cache effects, and
        // space accesses far enough apart that banks and MSHRs fully drain.
        let mut now = 0;
        for i in 0..32u64 {
            m.access(AccessKind::DataRead, i * 64, now);
            now += 200;
        }
        let r = m.access(AccessKind::DataRead, 0, now);
        assert_eq!(r.level, HitLevel::L2, "evicted from L1 but resident in L2");
        assert_eq!(r.latency, 3 + 12);
    }

    #[test]
    fn bank_conflicts_add_wait() {
        let mut m = small();
        m.access(AccessKind::DataRead, 0, 0);
        // Lines 0 and 128 both map to bank 0 of 2 at 64B interleave.
        m.access(AccessKind::DataRead, 128, 50);
        let r = m.access(AccessKind::DataRead, 0, 50);
        assert_eq!(r.bank_wait, 1);
        assert_eq!(m.stats().bank_conflicts, 1);
    }

    #[test]
    fn tlb_trap_surfaces() {
        let mut m = MemHierarchy::new(HierarchyConfig {
            dtlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
                miss_policy: TlbMissPolicy::Trap,
            },
            ..HierarchyConfig::default()
        });
        let r = m.access(AccessKind::DataRead, 0x9000, 0);
        assert!(r.tlb_trap);
        assert!(!r.is_l1_hit());
        let r = m.access(AccessKind::DataRead, 0x9000, 1);
        assert!(!r.tlb_trap, "retry after trap hits the TLB");
    }

    #[test]
    fn ifetch_bypasses_tlb_and_banks() {
        let mut m = small();
        let r = m.access(AccessKind::InstFetch, 0, 0);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.latency, 1 + 12 + 100);
        let r = m.access(AccessKind::InstFetch, 0, 0);
        assert_eq!(r.latency, 1);
        assert_eq!(m.stats().l1i.hits, 1);
    }

    #[test]
    fn stats_roll_up() {
        let mut m = small();
        m.access(AccessKind::DataRead, 0, 0);
        m.access(AccessKind::DataWrite, 0, 1);
        m.access(AccessKind::InstFetch, 0, 2);
        let s = m.stats();
        assert_eq!(s.l1d.accesses(), 2);
        assert_eq!(s.l1i.accesses(), 1);
        assert_eq!(s.dtlb_hits + s.dtlb_misses, 2);
    }
}
