//! Randomized property tests for the memory-hierarchy timing models
//! against executable reference models, driven by a deterministic seed
//! schedule from `looseloops-rng`.

use looseloops_mem::{BankTracker, Cache, CacheConfig, Tlb, TlbConfig, TlbMissPolicy, TlbOutcome};
use looseloops_rng::Rng;

/// Reference set-associative LRU cache: naive timestamps.
struct RefCache {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_use)
    assoc: usize,
    line: u64,
    stamp: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line: u64) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
            line,
            stamp: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let nsets = self.sets.len() as u64;
        let set = ((addr / self.line) % nsets) as usize;
        let tag = addr / self.line / nsets;
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.stamp;
            return true;
        }
        if ways.len() == self.assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, u))| *u)
                .map(|(i, _)| i)
                .unwrap();
            ways.swap_remove(lru);
        }
        ways.push((tag, self.stamp));
        false
    }
}

/// The timing cache agrees hit-for-hit with the reference LRU model.
#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng::seed_from_u64(0x3e31);
    for _ in 0..64 {
        // 4 sets x 2 ways x 64B lines = 512 B — tiny, to force evictions.
        let cfg = CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg.num_sets(), cfg.assoc, cfg.line_bytes as u64);
        let n = rng.gen_range(1usize..400);
        for _ in 0..n {
            let a = rng.gen_range(0u64..4096);
            assert_eq!(cache.access(a), reference.access(a), "addr {a}");
        }
    }
}

/// Hits + misses always equals accesses; a just-accessed line always
/// probes resident.
#[test]
fn cache_accounting_invariants() {
    let mut rng = Rng::seed_from_u64(0x3e32);
    for _ in 0..32 {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 1024,
            assoc: 4,
            line_bytes: 32,
            hit_latency: 2,
        });
        let n = rng.gen_range(1usize..200);
        for i in 0..n {
            let a = rng.gen_range(0u64..100_000);
            cache.access(a);
            assert!(cache.probe(a), "just-accessed line must be resident");
            assert_eq!(cache.stats().accesses(), i as u64 + 1);
        }
    }
}

/// Bank reservations never allow two grants of the same bank in the
/// same cycle, and waits are exactly the backlog.
#[test]
fn bank_grants_are_serialized() {
    let mut rng = Rng::seed_from_u64(0x3e33);
    for _ in 0..64 {
        let mut banks = BankTracker::new(4, 64);
        let mut grants: Vec<(usize, u64)> = Vec::new(); // (bank, grant cycle)
        let n = rng.gen_range(1usize..100);
        let mut reqs: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0u64..16), rng.gen_range(0u64..8)))
            .collect();
        reqs.sort_by_key(|&(_, t)| t);
        for (line, t) in reqs {
            let addr = line * 64;
            let wait = banks.reserve(addr, t);
            let bank = banks.bank_of(addr);
            let grant = t + wait;
            assert!(
                !grants.contains(&(bank, grant)),
                "double grant of bank {bank} at cycle {grant}"
            );
            grants.push((bank, grant));
        }
    }
}

/// TLB: after any access, an immediate re-access of the same page hits;
/// the (hits, misses) tally is conserved.
#[test]
fn tlb_refill_and_accounting() {
    let mut rng = Rng::seed_from_u64(0x3e34);
    for _ in 0..32 {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_policy: TlbMissPolicy::Trap,
        });
        let mut accesses = 0u64;
        let n = rng.gen_range(1usize..200);
        for _ in 0..n {
            let addr = rng.gen_range(0u64..32) * 4096;
            let _ = tlb.access(addr);
            accesses += 1;
            assert_eq!(tlb.access(addr), TlbOutcome::Hit, "refill must stick");
            accesses += 1;
            let (h, m) = tlb.stats();
            assert_eq!(h + m, accesses);
        }
    }
}
