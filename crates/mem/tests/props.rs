//! Property tests for the memory-hierarchy timing models against
//! executable reference models.

use looseloops_mem::{BankTracker, Cache, CacheConfig, Tlb, TlbConfig, TlbMissPolicy, TlbOutcome};
use proptest::prelude::*;

/// Reference set-associative LRU cache: naive timestamps.
struct RefCache {
    sets: Vec<Vec<(u64, u64)>>, // (tag, last_use)
    assoc: usize,
    line: u64,
    stamp: u64,
}

impl RefCache {
    fn new(sets: usize, assoc: usize, line: u64) -> RefCache {
        RefCache { sets: vec![Vec::new(); sets], assoc, line, stamp: 0 }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let nsets = self.sets.len() as u64;
        let set = ((addr / self.line) % nsets) as usize;
        let tag = addr / self.line / nsets;
        let ways = &mut self.sets[set];
        if let Some(e) = ways.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.stamp;
            return true;
        }
        if ways.len() == self.assoc {
            let lru = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, u))| *u)
                .map(|(i, _)| i)
                .unwrap();
            ways.swap_remove(lru);
        }
        ways.push((tag, self.stamp));
        false
    }
}

proptest! {
    /// The timing cache agrees hit-for-hit with the reference LRU model.
    #[test]
    fn cache_matches_reference_lru(
        addrs in prop::collection::vec(0u64..4096, 1..400)
    ) {
        // 4 sets x 2 ways x 64B lines = 512 B — tiny, to force evictions.
        let cfg = CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg.num_sets(), cfg.assoc, cfg.line_bytes as u64);
        for a in addrs {
            prop_assert_eq!(cache.access(a), reference.access(a), "addr {}", a);
        }
    }

    /// Hits + misses always equals accesses; a just-accessed line always
    /// probes resident.
    #[test]
    fn cache_accounting_invariants(addrs in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 1024,
            assoc: 4,
            line_bytes: 32,
            hit_latency: 2,
        });
        for (i, a) in addrs.iter().enumerate() {
            cache.access(*a);
            prop_assert!(cache.probe(*a), "just-accessed line must be resident");
            prop_assert_eq!(cache.stats().accesses(), i as u64 + 1);
        }
    }

    /// Bank reservations never allow two grants of the same bank in the
    /// same cycle, and waits are exactly the backlog.
    #[test]
    fn bank_grants_are_serialized(
        reqs in prop::collection::vec((0u64..16, 0u64..8), 1..100)
    ) {
        let mut banks = BankTracker::new(4, 64);
        let mut grants: Vec<(usize, u64)> = Vec::new(); // (bank, grant cycle)
        let mut reqs = reqs.clone();
        reqs.sort_by_key(|&(_, t)| t);
        for (line, t) in reqs {
            let addr = line * 64;
            let wait = banks.reserve(addr, t);
            let bank = banks.bank_of(addr);
            let grant = t + wait;
            prop_assert!(
                !grants.contains(&(bank, grant)),
                "double grant of bank {bank} at cycle {grant}"
            );
            grants.push((bank, grant));
        }
    }

    /// TLB: after any access, an immediate re-access of the same page hits;
    /// the (hits, misses) tally is conserved.
    #[test]
    fn tlb_refill_and_accounting(pages in prop::collection::vec(0u64..32, 1..200)) {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 8,
            page_bytes: 4096,
            miss_policy: TlbMissPolicy::Trap,
        });
        let mut accesses = 0u64;
        for p in pages {
            let addr = p * 4096;
            let _ = tlb.access(addr);
            accesses += 1;
            prop_assert_eq!(tlb.access(addr), TlbOutcome::Hit, "refill must stick");
            accesses += 1;
            let (h, m) = tlb.stats();
            prop_assert_eq!(h + m, accesses);
        }
    }
}
