//! Accuracy gate for interval sampling: the sampled CPI estimate must
//! land near the full detailed CPI, and the reported error bar must be a
//! defensible summary of the estimator's spread — otherwise sampled
//! figures would silently mislead.
//!
//! Referenced from `looseloops::sampling`'s module docs: the detailed
//! path is the reference; this test pins the estimator against it.

use looseloops::checkpoint::{run_fast_forwarded, CheckpointStore, WarmMemo};
use looseloops::{
    run_sampled, Benchmark, ExecMode, Job, PipelineConfig, RunBudget, SamplingPlan, SweepEngine,
    Workload,
};

fn job(bench: Benchmark) -> Job {
    let budget = RunBudget {
        warmup: 5_000,
        measure: 60_000,
        max_cycles: 6_000_000,
    };
    Job::new(PipelineConfig::base(), Workload::Single(bench), budget)
}

#[test]
fn sampled_cpi_tracks_detailed_cpi_within_ten_percent() {
    let memo = WarmMemo::default();
    for bench in [Benchmark::Compress, Benchmark::Swim] {
        let job = job(bench);
        let detailed = job
            .workload
            .try_run(&job.config, job.budget)
            .expect("detailed reference");
        let d_cpi = 1.0 / detailed.ipc();

        let plan = SamplingPlan::for_budget(job.budget);
        let run = run_sampled(&job, plan, None, &memo).expect("sampled run");
        let s_cpi = 1.0 / run.stats.ipc();

        let rel = (s_cpi - d_cpi).abs() / d_cpi;
        assert!(
            rel < 0.10,
            "{}: sampled CPI {s_cpi:.4} vs detailed {d_cpi:.4} ({:.1}% off)",
            bench.name(),
            rel * 100.0
        );
        // The estimate must actually be an estimate: far fewer detailed
        // instructions than the full run.
        assert!(run.stats.total_retired() <= plan.detailed_instructions());
        assert!(run.stats.total_retired() * 3 < detailed.total_retired());
        // The error bar must be finite, non-negative, and small relative
        // to the mean (these are steady-state loop proxies).
        let (mean, se) = (run.cpi_mean(), run.cpi_stderr());
        assert!(se.is_finite() && se >= 0.0);
        assert!(
            se < 0.5 * mean,
            "{}: stderr {se:.4} vs mean {mean:.4}",
            bench.name()
        );
    }
}

#[test]
fn fast_forward_preserves_steady_state_cpi() {
    // Functional warm-up must leave caches/predictors warm enough that
    // the measured window's CPI matches a detailed warm-up within 5%.
    let job = job(Benchmark::Compress);
    let detailed = job
        .workload
        .try_run(&job.config, job.budget)
        .expect("detailed reference");
    let ff = run_fast_forwarded(&job, None, &WarmMemo::default()).expect("fast-forwarded run");
    let (d, f) = (1.0 / detailed.ipc(), 1.0 / ff.ipc());
    assert!(
        (f - d).abs() / d < 0.05,
        "fast-forwarded CPI {f:.4} vs detailed {d:.4}"
    );
    assert_eq!(ff.total_retired(), detailed.total_retired());
}

#[test]
fn sampled_sweep_engine_reuses_one_checkpoint_across_depths() {
    // Sweep points differing only in pipeline depth share a warm-up
    // prefix; through the engine they must hit one stored checkpoint.
    let dir = std::env::temp_dir().join(format!(
        "looseloops-sampling-accuracy-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).expect("store");
    let budget = RunBudget {
        warmup: 4_000,
        measure: 12_000,
        max_cycles: 2_000_000,
    };
    let plan = SamplingPlan::parse("w=4,detail=600,warm=120", budget).unwrap();
    let engine = SweepEngine::with_mode(1, ExecMode::Sampled(plan), Some(store));
    let jobs: Vec<Job> = [3u32, 5, 7]
        .iter()
        .map(|&rf| {
            Job::new(
                PipelineConfig::base_for_rf(rf),
                Workload::Single(Benchmark::Compress),
                budget,
            )
        })
        .collect();
    let stats = engine.run_jobs(&jobs);
    assert_eq!(stats.len(), 3);
    let files = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "llck"))
        .count();
    assert_eq!(
        files, 1,
        "three register-file depths must share one warm-up checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
