//! Result containers and table rendering for the figure harnesses.

use looseloops_pipeline::{CpiComponent, SimStats};
use std::fmt;

/// One data series (a line/bar group in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (usually a configuration like "9_3").
    pub label: String,
    /// One value per workload (or per x-axis point).
    pub values: Vec<f64>,
}

/// A reproduced figure: labeled rows × labeled columns of numbers.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier ("fig4", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (workload names or x values).
    pub columns: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// What to expect from the paper, for EXPERIMENTS.md.
    pub paper_expectation: String,
}

impl FigureResult {
    /// Render as an aligned text table (the bench harnesses print this).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let wide = self
            .columns
            .iter()
            .map(String::len)
            .chain(self.series.iter().map(|s| s.label.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>wide$}", "", wide = wide + 1));
        for c in &self.columns {
            out.push_str(&format!(" {c:>wide$}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:>wide$} ", s.label, wide = wide + 1));
            for v in &s.values {
                out.push_str(&format!(" {v:>wide$.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("paper: {}\n", self.paper_expectation));
        out
    }

    /// Render as CSV (one row per series, workloads as columns) for
    /// spreadsheet/plotting pipelines. Column headers and series labels
    /// go through the same field escaping.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("series");
        for c in &self.columns {
            out.push(',');
            out.push_str(&csv_field(c));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&csv_field(&s.label));
            for v in &s.values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON (for archiving bench output).
    ///
    /// # Panics
    ///
    /// Never in practice: the structure contains only plain data.
    pub fn to_json(&self) -> String {
        json::render(self)
    }
}

/// CSV field escaping, shared by headers and series labels: commas become
/// semicolons (the output stays one-value-per-comma without quoting
/// rules), CR/LF become spaces so a field cannot break the row structure.
fn csv_field(s: &str) -> String {
    s.replace(',', ";").replace(['\r', '\n'], " ")
}

/// One machine/workload point of a CPI-stack report: the measured CPI and
/// its decomposition into per-loop components (in [`CpiComponent::ALL`]
/// order). The components sum to `cpi` by construction — see
/// [`LoopCostStack::cpi_components`](looseloops_pipeline::LoopCostStack).
#[derive(Debug, Clone)]
pub struct CpiStackRow {
    /// Row label ("3_3/compute", …).
    pub label: String,
    /// Measured cycles per retired instruction.
    pub cpi: f64,
    /// CPI attributed to each component, [`CpiComponent::ALL`] order.
    pub components: Vec<f64>,
}

impl CpiStackRow {
    /// Build a row from a finished run's loop-cost stack.
    pub fn from_stats(label: impl Into<String>, stats: &SimStats) -> CpiStackRow {
        CpiStackRow {
            label: label.into(),
            cpi: stats.loop_cost.cpi(),
            components: stats.loop_cost.cpi_components().to_vec(),
        }
    }
}

/// A per-loop CPI-stack table: one row per machine/workload point, one
/// column per [`CpiComponent`]. Rendered alongside (never inside) the
/// figure's [`FigureResult`], so figure output is unchanged when stacks
/// are not requested.
#[derive(Debug, Clone)]
pub struct CpiStackReport {
    /// Identifier ("fig4-stacks", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Component column headers, [`CpiComponent::ALL`] order.
    pub components: Vec<String>,
    /// The rows.
    pub rows: Vec<CpiStackRow>,
}

impl CpiStackReport {
    /// A report with the standard component columns and no rows yet.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> CpiStackReport {
        CpiStackReport {
            id: id.into(),
            title: title.into(),
            components: CpiComponent::ALL.iter().map(|c| c.name().into()).collect(),
            rows: Vec::new(),
        }
    }

    /// Render as an aligned text table with a trailing `cpi` column (the
    /// sum of the component columns, up to float rounding).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self.components.iter().map(String::len).max().unwrap_or(8);
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>label_w$}", ""));
        for c in &self.components {
            out.push_str(&format!(" {c:>col_w$}"));
        }
        out.push_str(&format!(" {:>col_w$}\n", "cpi"));
        for r in &self.rows {
            out.push_str(&format!("{:>label_w$}", r.label));
            for v in &r.components {
                out.push_str(&format!(" {v:>col_w$.4}"));
            }
            out.push_str(&format!(" {:>col_w$.4}\n", r.cpi));
        }
        out
    }

    /// Render as CSV (one row per point, components then total CPI).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("point");
        for c in &self.components {
            out.push(',');
            out.push_str(&csv_field(c));
        }
        out.push_str(",cpi\n");
        for r in &self.rows {
            out.push_str(&csv_field(&r.label));
            for v in &r.components {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push_str(&format!(",{}\n", r.cpi));
        }
        out
    }

    /// Serialize to JSON (for archiving bench output).
    pub fn to_json(&self) -> String {
        json::render_stack(self)
    }
}

impl fmt::Display for CpiStackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// Escape `s` as a JSON string literal (RFC 8259), quotes included — the
/// writer half of the dependency-free JSON story ([`crate::json::parse`]
/// is the reader). Public because the serve protocol and the CLI build
/// their newline-delimited JSON through this one escaper.
pub fn json_escape(s: &str) -> String {
    json::string(s)
}

// Tiny hand-rolled JSON writer: the structures are flat and fully known,
// so a dependency is not warranted.
mod json {
    use super::{CpiStackReport, FigureResult};

    /// Escape `s` as a JSON string literal (RFC 8259), quotes included.
    /// Every string in the output — id, title, columns, labels, the paper
    /// expectation — goes through this one path. Unlike Rust's `{:?}`,
    /// non-ASCII passes through verbatim (JSON is UTF-8) and control
    /// characters use `\u00XX`, not Rust's `\u{XX}`.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    pub fn render(fig: &FigureResult) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"id\": {},\n", string(&fig.id)));
        s.push_str(&format!("  \"title\": {},\n", string(&fig.title)));
        s.push_str(&format!(
            "  \"columns\": [{}],\n",
            fig.columns
                .iter()
                .map(|c| string(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"series\": [\n");
        for (i, ser) in fig.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": {}, \"values\": [{}] }}{}\n",
                string(&ser.label),
                ser.values
                    .iter()
                    .map(|v| {
                        if v.is_finite() {
                            format!("{v}")
                        } else {
                            "null".to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == fig.series.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"paper_expectation\": {}\n",
            string(&fig.paper_expectation)
        ));
        s.push('}');
        s
    }

    fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    pub fn render_stack(rep: &CpiStackReport) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"id\": {},\n", string(&rep.id)));
        s.push_str(&format!("  \"title\": {},\n", string(&rep.title)));
        s.push_str(&format!(
            "  \"components\": [{}],\n",
            rep.components
                .iter()
                .map(|c| string(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"rows\": [\n");
        for (i, r) in rep.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": {}, \"cpi\": {}, \"components\": [{}] }}{}\n",
                string(&r.label),
                number(r.cpi),
                r.components
                    .iter()
                    .map(|&v| number(v))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == rep.rows.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n");
        s.push('}');
        s
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            title: "sample".into(),
            columns: vec!["a".into(), "b".into()],
            series: vec![
                Series {
                    label: "s1".into(),
                    values: vec![1.0, 0.5],
                },
                Series {
                    label: "s2".into(),
                    values: vec![0.25, f64::NAN],
                },
            ],
            paper_expectation: "n/a".into(),
        }
    }

    #[test]
    fn table_contains_everything() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("s1"));
        assert!(t.contains("0.2500"));
        assert!(t.contains("paper: n/a"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\": \"figX\""));
        assert!(j.contains("null"), "NaN serializes as null");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("series,a,b"));
        assert_eq!(lines.next(), Some("s1,1,0.5"));
        assert!(lines.next().unwrap().starts_with("s2,0.25,"));
    }

    #[test]
    fn display_matches_table() {
        let f = sample();
        assert_eq!(f.to_string(), f.to_table());
    }

    #[test]
    fn csv_escapes_headers_and_labels_alike() {
        let mut f = sample();
        f.columns[0] = "go,su2cor".into();
        f.series[0].label = "DRA:7_3,base".into();
        let c = f.to_csv();
        let mut lines = c.lines();
        assert_eq!(
            lines.next(),
            Some("series,go;su2cor,b"),
            "comma in header must be escaped"
        );
        assert!(lines.next().unwrap().starts_with("DRA:7_3;base,1,"));
        // Every row has the same field count.
        for line in f.to_csv().lines() {
            assert_eq!(line.matches(',').count(), 2, "ragged CSV row: {line}");
        }
    }

    #[test]
    fn json_escapes_all_strings_through_one_path() {
        let mut f = sample();
        f.title = "a \"quoted\" title\nwith a newline".into();
        f.columns[1] = "tab\there".into();
        f.series[1].label = "back\\slash".into();
        let j = f.to_json();
        assert!(j.contains(r#""a \"quoted\" title\nwith a newline""#), "{j}");
        assert!(j.contains(r#""tab\there""#), "{j}");
        assert!(j.contains(r#""back\\slash""#), "{j}");
    }

    #[test]
    fn json_passes_utf8_through_and_escapes_controls() {
        assert_eq!(super::json::string("café π"), "\"café π\"");
        assert_eq!(super::json::string("\u{1}"), "\"\\u0001\"");
        assert_eq!(super::json::string("a\tb"), "\"a\\tb\"");
    }

    fn sample_stack() -> CpiStackReport {
        let mut rep = CpiStackReport::new("figX-stacks", "sample stacks");
        rep.rows.push(CpiStackRow {
            label: "3_3/compute".into(),
            cpi: 0.75,
            components: vec![0.5, 0.125, 0.125, 0.0, 0.0, 0.0, 0.0, 0.0],
        });
        rep
    }

    #[test]
    fn stack_report_has_standard_columns_and_renders() {
        let rep = sample_stack();
        assert_eq!(rep.components.len(), 8);
        assert_eq!(rep.components[0], "base");
        assert_eq!(rep.components[1], "branch-resolution");
        let t = rep.to_table();
        assert!(t.contains("figX-stacks"));
        assert!(t.contains("3_3/compute"));
        assert!(t.contains("0.5000"));
        assert!(t.contains(" cpi"));
    }

    #[test]
    fn stack_csv_is_rectangular() {
        let c = sample_stack().to_csv();
        let mut lines = c.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("point,base,branch-resolution,"));
        assert!(header.ends_with(",cpi"));
        let fields = header.matches(',').count();
        for line in c.lines() {
            assert_eq!(line.matches(',').count(), fields, "ragged row: {line}");
        }
    }

    #[test]
    fn stack_json_is_well_formed_enough() {
        let j = sample_stack().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\": \"figX-stacks\""));
        assert!(j.contains("\"cpi\": 0.75"));
        assert!(j.contains("\"components\": [\"base\""));
    }

    #[test]
    fn stack_row_from_stats_sums_to_cpi() {
        use looseloops_pipeline::CpiComponent;
        let mut stats = SimStats::new(1);
        for _ in 0..10 {
            stats.loop_cost.charge(8, 6, CpiComponent::BranchResolution);
        }
        stats.loop_cost.charge(8, 8, CpiComponent::Base);
        let row = CpiStackRow::from_stats("p", &stats);
        let sum: f64 = row.components.iter().sum();
        assert!((sum - row.cpi).abs() < 1e-12, "{sum} vs {}", row.cpi);
        assert_eq!(row.components.len(), 8);
    }
}
