//! Result containers and table rendering for the figure harnesses.

use std::fmt;

/// One data series (a line/bar group in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (usually a configuration like "9_3").
    pub label: String,
    /// One value per workload (or per x-axis point).
    pub values: Vec<f64>,
}

/// A reproduced figure: labeled rows × labeled columns of numbers.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier ("fig4", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (workload names or x values).
    pub columns: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// What to expect from the paper, for EXPERIMENTS.md.
    pub paper_expectation: String,
}

impl FigureResult {
    /// Render as an aligned text table (the bench harnesses print this).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let wide = self
            .columns
            .iter()
            .map(String::len)
            .chain(self.series.iter().map(|s| s.label.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>wide$}", "", wide = wide + 1));
        for c in &self.columns {
            out.push_str(&format!(" {c:>wide$}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:>wide$} ", s.label, wide = wide + 1));
            for v in &s.values {
                out.push_str(&format!(" {v:>wide$.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("paper: {}\n", self.paper_expectation));
        out
    }

    /// Render as CSV (one row per series, workloads as columns) for
    /// spreadsheet/plotting pipelines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("series");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&s.label.replace(',', ";"));
            for v in &s.values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON (for archiving bench output).
    ///
    /// # Panics
    ///
    /// Never in practice: the structure contains only plain data.
    pub fn to_json(&self) -> String {
        json::render(self)
    }
}

// Tiny hand-rolled JSON writer: the structures are flat and fully known,
// so a dependency is not warranted.
mod json {
    use super::FigureResult;

    pub fn render(fig: &FigureResult) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"id\": {:?},\n", fig.id));
        s.push_str(&format!("  \"title\": {:?},\n", fig.title));
        s.push_str(&format!(
            "  \"columns\": [{}],\n",
            fig.columns.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>().join(", ")
        ));
        s.push_str("  \"series\": [\n");
        for (i, ser) in fig.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": {:?}, \"values\": [{}] }}{}\n",
                ser.label,
                ser.values
                    .iter()
                    .map(|v| {
                        if v.is_finite() {
                            format!("{v}")
                        } else {
                            "null".to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == fig.series.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"paper_expectation\": {:?}\n", fig.paper_expectation));
        s.push('}');
        s
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            title: "sample".into(),
            columns: vec!["a".into(), "b".into()],
            series: vec![
                Series { label: "s1".into(), values: vec![1.0, 0.5] },
                Series { label: "s2".into(), values: vec![0.25, f64::NAN] },
            ],
            paper_expectation: "n/a".into(),
        }
    }

    #[test]
    fn table_contains_everything() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("s1"));
        assert!(t.contains("0.2500"));
        assert!(t.contains("paper: n/a"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\": \"figX\""));
        assert!(j.contains("null"), "NaN serializes as null");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("series,a,b"));
        assert_eq!(lines.next(), Some("s1,1,0.5"));
        assert!(lines.next().unwrap().starts_with("s2,0.25,"));
    }

    #[test]
    fn display_matches_table() {
        let f = sample();
        assert_eq!(f.to_string(), f.to_table());
    }
}
