//! Result containers and table rendering for the figure harnesses.

use std::fmt;

/// One data series (a line/bar group in a paper figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (usually a configuration like "9_3").
    pub label: String,
    /// One value per workload (or per x-axis point).
    pub values: Vec<f64>,
}

/// A reproduced figure: labeled rows × labeled columns of numbers.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure identifier ("fig4", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (workload names or x values).
    pub columns: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
    /// What to expect from the paper, for EXPERIMENTS.md.
    pub paper_expectation: String,
}

impl FigureResult {
    /// Render as an aligned text table (the bench harnesses print this).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let wide = self
            .columns
            .iter()
            .map(String::len)
            .chain(self.series.iter().map(|s| s.label.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("{:>wide$}", "", wide = wide + 1));
        for c in &self.columns {
            out.push_str(&format!(" {c:>wide$}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:>wide$} ", s.label, wide = wide + 1));
            for v in &s.values {
                out.push_str(&format!(" {v:>wide$.4}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("paper: {}\n", self.paper_expectation));
        out
    }

    /// Render as CSV (one row per series, workloads as columns) for
    /// spreadsheet/plotting pipelines. Column headers and series labels
    /// go through the same field escaping.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("series");
        for c in &self.columns {
            out.push(',');
            out.push_str(&csv_field(c));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&csv_field(&s.label));
            for v in &s.values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Serialize to JSON (for archiving bench output).
    ///
    /// # Panics
    ///
    /// Never in practice: the structure contains only plain data.
    pub fn to_json(&self) -> String {
        json::render(self)
    }
}

/// CSV field escaping, shared by headers and series labels: commas become
/// semicolons (the output stays one-value-per-comma without quoting
/// rules), CR/LF become spaces so a field cannot break the row structure.
fn csv_field(s: &str) -> String {
    s.replace(',', ";").replace(['\r', '\n'], " ")
}

// Tiny hand-rolled JSON writer: the structures are flat and fully known,
// so a dependency is not warranted.
mod json {
    use super::FigureResult;

    /// Escape `s` as a JSON string literal (RFC 8259), quotes included.
    /// Every string in the output — id, title, columns, labels, the paper
    /// expectation — goes through this one path. Unlike Rust's `{:?}`,
    /// non-ASCII passes through verbatim (JSON is UTF-8) and control
    /// characters use `\u00XX`, not Rust's `\u{XX}`.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    pub fn render(fig: &FigureResult) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"id\": {},\n", string(&fig.id)));
        s.push_str(&format!("  \"title\": {},\n", string(&fig.title)));
        s.push_str(&format!(
            "  \"columns\": [{}],\n",
            fig.columns
                .iter()
                .map(|c| string(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"series\": [\n");
        for (i, ser) in fig.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"label\": {}, \"values\": [{}] }}{}\n",
                string(&ser.label),
                ser.values
                    .iter()
                    .map(|v| {
                        if v.is_finite() {
                            format!("{v}")
                        } else {
                            "null".to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == fig.series.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"paper_expectation\": {}\n",
            string(&fig.paper_expectation)
        ));
        s.push('}');
        s
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        FigureResult {
            id: "figX".into(),
            title: "sample".into(),
            columns: vec!["a".into(), "b".into()],
            series: vec![
                Series {
                    label: "s1".into(),
                    values: vec![1.0, 0.5],
                },
                Series {
                    label: "s2".into(),
                    values: vec![0.25, f64::NAN],
                },
            ],
            paper_expectation: "n/a".into(),
        }
    }

    #[test]
    fn table_contains_everything() {
        let t = sample().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("s1"));
        assert!(t.contains("0.2500"));
        assert!(t.contains("paper: n/a"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\": \"figX\""));
        assert!(j.contains("null"), "NaN serializes as null");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("series,a,b"));
        assert_eq!(lines.next(), Some("s1,1,0.5"));
        assert!(lines.next().unwrap().starts_with("s2,0.25,"));
    }

    #[test]
    fn display_matches_table() {
        let f = sample();
        assert_eq!(f.to_string(), f.to_table());
    }

    #[test]
    fn csv_escapes_headers_and_labels_alike() {
        let mut f = sample();
        f.columns[0] = "go,su2cor".into();
        f.series[0].label = "DRA:7_3,base".into();
        let c = f.to_csv();
        let mut lines = c.lines();
        assert_eq!(
            lines.next(),
            Some("series,go;su2cor,b"),
            "comma in header must be escaped"
        );
        assert!(lines.next().unwrap().starts_with("DRA:7_3;base,1,"));
        // Every row has the same field count.
        for line in f.to_csv().lines() {
            assert_eq!(line.matches(',').count(), 2, "ragged CSV row: {line}");
        }
    }

    #[test]
    fn json_escapes_all_strings_through_one_path() {
        let mut f = sample();
        f.title = "a \"quoted\" title\nwith a newline".into();
        f.columns[1] = "tab\there".into();
        f.series[1].label = "back\\slash".into();
        let j = f.to_json();
        assert!(j.contains(r#""a \"quoted\" title\nwith a newline""#), "{j}");
        assert!(j.contains(r#""tab\there""#), "{j}");
        assert!(j.contains(r#""back\\slash""#), "{j}");
    }

    #[test]
    fn json_passes_utf8_through_and_escapes_controls() {
        assert_eq!(super::json::string("café π"), "\"café π\"");
        assert_eq!(super::json::string("\u{1}"), "\"\\u0001\"");
        assert_eq!(super::json::string("a\tb"), "\"a\\tb\"");
    }
}
