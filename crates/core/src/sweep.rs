//! Parallel sweep engine with memoized runs.
//!
//! Every figure of the evaluation is a grid of *independent* deterministic
//! simulations — `configs × workloads` at one [`RunBudget`]. The
//! [`SweepEngine`] executes such grids on a worker pool sized from
//! [`std::thread::available_parallelism`] (overridable with `--jobs` /
//! `LOOSELOOPS_JOBS`) and memoizes every completed run in a cache keyed by
//! a stable hash of `(config, workload, budget)`, so configurations shared
//! between figures (the base machine appears in Figure 4, Figure 8 and
//! three ablations) are simulated exactly once per process.
//!
//! The simulator is fully deterministic, so the engine only *reorders*
//! independent runs; results are bit-identical to the serial path
//! regardless of the worker count (`tests/sweep_determinism.rs` enforces
//! this).
//!
//! The workspace is dependency-free and offline, so there is no rayon
//! here: the pool is a hand-rolled job queue behind a `Mutex<VecDeque>`,
//! drained by scoped threads.

use crate::checkpoint::{CheckpointStore, WarmMemo};
use crate::experiments::Workload;
use crate::sampling::SamplingPlan;
use crate::simulator::RunBudget;
use crate::store::ResultStore;
use looseloops_pipeline::{LoopCostStack, PipelineConfig, SimError, SimStats};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Lock `m`, recovering from poisoning.
///
/// The engine's mutexes guard plain accumulators (memo map, merged stack,
/// timing log) whose updates are single `insert`/`merge`/`push` calls, so
/// a panic elsewhere in a worker can never leave them mid-mutation —
/// taking the inner value after a poisoning is always safe. Before this
/// helper, one panicked job permanently poisoned the process-global
/// engine and every later figure call died on
/// `expect("sweep cache poisoned")` even though `try_run_jobs` promises
/// failures don't sink the batch.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Human-readable message out of a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one executed sweep job yields: the run's statistics or the
/// [`SimError`] that stopped it.
type JobResult = Result<Arc<SimStats>, SimError>;

/// One point of a sweep: a machine configuration, a workload, a budget.
#[derive(Debug, Clone)]
pub struct Job {
    /// The machine to simulate (thread count is adjusted to the workload).
    pub config: PipelineConfig,
    /// What to run on it.
    pub workload: Workload,
    /// Warm-up/measurement instruction budget.
    pub budget: RunBudget,
}

/// How the engine executes a job's instruction budget.
///
/// Anything other than [`ExecMode::Detailed`] participates in the memo key
/// (see [`Job::key_with_mode`]), so an engine's cache never conflates a
/// sampled estimate with a full detailed run — and the detailed path's
/// keys (and therefore its results) are byte-identical to what they were
/// before execution modes existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Cycle-accurate simulation of warm-up and measured window (the
    /// reference behavior).
    #[default]
    Detailed,
    /// Functional fast-forward through the warm-up (restoring a shared
    /// checkpoint when one exists), then cycle-accurate simulation of the
    /// full measured window.
    FastForward,
    /// SMARTS-style interval sampling: functional fast-forward between
    /// short detailed windows spread across the measured budget.
    Sampled(SamplingPlan),
}

/// FNV-1a, the classic 64-bit offset-basis/prime pair. Stable across
/// processes and platforms, unlike `DefaultHasher`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Job {
    /// Bundle a sweep point.
    pub fn new(config: PipelineConfig, workload: Workload, budget: RunBudget) -> Job {
        Job {
            config,
            workload,
            budget,
        }
    }

    /// The full memoization key. Every field of the configuration, the
    /// workload and the budget participates via the `Debug` rendering
    /// (plain data throughout, so the rendering is total and stable);
    /// using the whole string as the map key makes collisions impossible.
    pub fn key(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.config, self.workload, self.budget)
    }

    /// [`Job::key`] plus the execution mode. [`ExecMode::Detailed`]
    /// contributes nothing, so every pre-existing cache key (and the
    /// `BENCH_*.json` digests derived from them) is unchanged.
    pub fn key_with_mode(&self, mode: ExecMode) -> String {
        match mode {
            ExecMode::Detailed => self.key(),
            other => format!("{}|{other:?}", self.key()),
        }
    }

    /// Stable 64-bit digest of [`Job::key`], for compact display.
    pub fn key_hash(&self) -> u64 {
        fnv1a64(self.key().as_bytes())
    }

    /// Short human label: workload name plus the full key digest. (An
    /// earlier version truncated the FNV digest to 32 bits, which made
    /// distinct jobs collide in logs at sweep sizes the birthday bound
    /// reaches easily; the label now carries all 64 bits.)
    pub fn label(&self) -> String {
        format!("{}#{:016x}", self.workload.name(), self.key_hash())
    }

    fn try_run(&self) -> Result<SimStats, SimError> {
        self.workload.try_run(&self.config, self.budget)
    }
}

/// Timing record for one executed (non-memoized) job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// [`Job::label`] of the run.
    pub label: String,
    /// Wall-clock time of the run on its worker.
    pub wall: Duration,
    /// Instructions simulated (warm-up + measured window).
    pub instructions: u64,
}

impl JobRecord {
    /// Simulated instructions per wall-clock second, in millions.
    pub fn sim_mips(&self) -> f64 {
        self.instructions as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }
}

/// Aggregate counters of everything an engine has executed so far.
#[derive(Debug, Clone, Copy)]
pub struct SweepSummary {
    /// Worker threads the engine runs with.
    pub workers: usize,
    /// Jobs requested through [`SweepEngine::run_jobs`] (memoized or not).
    pub jobs_requested: u64,
    /// Jobs actually simulated.
    pub jobs_run: u64,
    /// Jobs answered from the memo cache (including duplicates within one
    /// batch, which are simulated once and shared).
    pub cache_hits: u64,
    /// Jobs answered from the on-disk result store instead of simulating.
    pub store_hits: u64,
    /// Executed jobs that ended in a [`SimError`] (reported per job by
    /// [`SweepEngine::try_run_jobs`]; never cached, so a retry re-runs).
    pub jobs_failed: u64,
    /// Wall-clock time spent inside `run_jobs` (the parallel region).
    pub wall: Duration,
    /// Summed per-job simulation time across all workers.
    pub busy: Duration,
    /// Total instructions simulated (warm-up + measured, executed jobs
    /// only).
    pub instructions: u64,
    /// Per-loop CPI stack merged over every successfully executed job —
    /// the engine-wide view of where retire slots went.
    pub stack: LoopCostStack,
}

impl SweepSummary {
    /// Aggregate simulated MIPS: instructions over the parallel region's
    /// wall-clock — this is the number that scales with `--jobs`.
    pub fn sim_mips(&self) -> f64 {
        self.instructions as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }

    /// One-line rendering for harness logs. Store hits and failures
    /// appear only when there are any, so store-less clean runs read
    /// exactly as before.
    pub fn line(&self) -> String {
        let store = if self.store_hits > 0 {
            format!(", {} store hits", self.store_hits)
        } else {
            String::new()
        };
        let failed = if self.jobs_failed > 0 {
            format!(", {} FAILED", self.jobs_failed)
        } else {
            String::new()
        };
        format!(
            "{} jobs run, {} cache hits{store}{failed}, {:.1} sim-MIPS ({} workers, busy {:.2}s over {:.2}s wall)",
            self.jobs_run,
            self.cache_hits,
            self.sim_mips(),
            self.workers,
            self.busy.as_secs_f64(),
            self.wall.as_secs_f64()
        )
    }
}

/// Worker-pool executor with a per-process memo cache of completed runs.
pub struct SweepEngine {
    workers: usize,
    mode: ExecMode,
    ckpt_store: Option<CheckpointStore>,
    result_store: Option<ResultStore>,
    warm_memo: WarmMemo,
    cache: Mutex<HashMap<String, Arc<SimStats>>>,
    jobs_requested: AtomicU64,
    jobs_run: AtomicU64,
    cache_hits: AtomicU64,
    store_hits: AtomicU64,
    jobs_failed: AtomicU64,
    wall_nanos: AtomicU64,
    busy_nanos: AtomicU64,
    instructions: AtomicU64,
    job_log: Mutex<Vec<JobRecord>>,
    stack: Mutex<LoopCostStack>,
}

impl std::fmt::Debug for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepEngine")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

/// Worker count from the machine: `available_parallelism`, or 1 if that
/// is unknowable.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f(i)` for every `i in 0..n` on a pool of `workers` scoped
/// threads and return the results in index order.
///
/// This is the sweep engine's worker pool factored out for any embarrassingly
/// parallel indexed computation (the differential fuzzer maps seed indices
/// through it). The pool is the same hand-rolled shared-queue design —
/// the workspace is dependency-free, so no rayon. Because results are
/// reassembled by index, the output is identical whatever the worker
/// count; only wall-clock changes.
///
/// `workers` is clamped to `1..=n`; `n == 0` returns an empty vector
/// without spawning. A panic in `f` propagates out of the scope and
/// aborts the map.
pub fn parallel_map<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = lock_clean(&queue).pop_front();
                let Some(i) = next else { break };
                let r = f(i);
                lock_clean(&done).push((i, r));
            });
        }
    });
    let mut out = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Worker count from the `LOOSELOOPS_JOBS` environment variable, falling
/// back to [`default_jobs`]. A malformed value is reported on stderr and
/// ignored rather than silently treated as 1.
pub fn jobs_from_env() -> usize {
    match std::env::var("LOOSELOOPS_JOBS") {
        Err(_) => default_jobs(),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: LOOSELOOPS_JOBS: cannot parse `{v}` as a positive integer; \
                     using {} workers",
                    default_jobs()
                );
                default_jobs()
            }
        },
    }
}

impl SweepEngine {
    /// An engine with `workers` worker threads; `0` means "size from the
    /// machine" ([`default_jobs`]).
    pub fn new(workers: usize) -> SweepEngine {
        SweepEngine::with_mode(workers, ExecMode::Detailed, None)
    }

    /// An engine that executes jobs under `mode`. A `store` adds an
    /// on-disk checkpoint cache shared across processes; without one,
    /// warm-state checkpoints are still shared in memory between jobs of
    /// the same (config-warm-relevant, workload, warm-up) digest.
    pub fn with_mode(
        workers: usize,
        mode: ExecMode,
        store: Option<CheckpointStore>,
    ) -> SweepEngine {
        SweepEngine::with_stores(workers, mode, store, None)
    }

    /// The fully general constructor: execution mode, an optional on-disk
    /// checkpoint store (warm state), and an optional on-disk result store
    /// (completed runs). With a result store the cache is three-tiered:
    /// memory → disk → simulate; results loaded from disk enter the memory
    /// cache, and simulated results are written back, so any number of
    /// processes sharing one store directory converge to zero simulation.
    pub fn with_stores(
        workers: usize,
        mode: ExecMode,
        ckpt_store: Option<CheckpointStore>,
        result_store: Option<ResultStore>,
    ) -> SweepEngine {
        SweepEngine {
            workers: if workers == 0 {
                default_jobs()
            } else {
                workers
            },
            mode,
            ckpt_store,
            result_store,
            warm_memo: WarmMemo::default(),
            cache: Mutex::new(HashMap::new()),
            jobs_requested: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            instructions: AtomicU64::new(0),
            job_log: Mutex::new(Vec::new()),
            stack: Mutex::new(LoopCostStack::default()),
        }
    }

    /// An engine sized from `LOOSELOOPS_JOBS` / the machine.
    pub fn from_env() -> SweepEngine {
        SweepEngine::new(jobs_from_env())
    }

    /// A strictly serial engine (one worker) — the reference for the
    /// determinism tests.
    pub fn serial() -> SweepEngine {
        SweepEngine::new(1)
    }

    /// The process-wide shared engine, sized from the environment on first
    /// use. The budget-compatible figure entry points
    /// ([`crate::fig4_pipeline_length`] & co.) run on this engine, so
    /// figures generated in one process share the memo cache.
    pub fn global() -> &'static SweepEngine {
        static GLOBAL: OnceLock<SweepEngine> = OnceLock::new();
        GLOBAL.get_or_init(SweepEngine::from_env)
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The execution mode jobs run under.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Execute one job under the engine's mode.
    fn execute(&self, job: &Job) -> Result<SimStats, SimError> {
        match self.mode {
            ExecMode::Detailed => job.try_run(),
            ExecMode::FastForward => crate::checkpoint::run_fast_forwarded(
                job,
                self.ckpt_store.as_ref(),
                &self.warm_memo,
            ),
            ExecMode::Sampled(plan) => {
                crate::sampling::run_sampled(job, plan, self.ckpt_store.as_ref(), &self.warm_memo)
                    .map(|run| run.stats)
            }
        }
    }

    /// Execute `jobs`, returning one result per job in input order; a job
    /// that ends in a [`SimError`] yields its own `Err` without tearing
    /// down the batch — every other job still completes.
    ///
    /// Jobs already in the memo cache are answered without simulating;
    /// duplicates within the batch are simulated once (duplicates of a
    /// *failed* job all receive the same error). Successes are cached;
    /// failures are not, so a later request retries. The rest are drained
    /// from a shared queue by scoped worker threads. Because the simulator
    /// is deterministic and the jobs are independent, the returned
    /// statistics are identical whatever the worker count.
    pub fn try_run_jobs(&self, jobs: &[Job]) -> Vec<JobResult> {
        let t0 = Instant::now();
        self.jobs_requested
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        let keys: Vec<String> = jobs.iter().map(|j| j.key_with_mode(self.mode)).collect();

        // First occurrence of every key not already cached gets simulated
        // (or answered from the on-disk store, when one is attached).
        let pending: Vec<usize> = {
            let cache = lock_clean(&self.cache);
            let mut scheduled: HashSet<&str> = HashSet::new();
            keys.iter()
                .enumerate()
                .filter(|(_, k)| !cache.contains_key(*k) && scheduled.insert(k.as_str()))
                .map(|(i, _)| i)
                .collect()
        };
        self.cache_hits
            .fetch_add((jobs.len() - pending.len()) as u64, Ordering::Relaxed);

        // Key → error for this batch's failures (failures are never
        // cached, so the map is batch-local).
        let mut failed: HashMap<&str, SimError> = HashMap::new();
        if !pending.is_empty() {
            let results = parallel_map(self.workers, pending.len(), |k| {
                let job = &jobs[pending[k]];
                let key = &keys[pending[k]];
                // Second cache tier: the on-disk result store. A hit is a
                // finished run — no simulation, no jobs_run/busy/timing-log
                // accounting (like the memo cache, the metrics track work,
                // not requests). A corrupt or colliding entry is a miss.
                if let Some(store) = &self.result_store {
                    let digest = fnv1a64(key.as_bytes());
                    match store.load(digest, key) {
                        Ok(Some(stats)) => {
                            self.store_hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(Arc::new(stats));
                        }
                        Ok(None) => {}
                        Err(e) => {
                            eprintln!("warning: result store {}: {e}; re-simulating", job.label());
                        }
                    }
                }
                self.jobs_run.fetch_add(1, Ordering::Relaxed);
                let t = Instant::now();
                // Isolate panics: a worker that panics must report a
                // per-job error like any other failure, not unwind through
                // the pool (and poison the engine for every later batch).
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(job)))
                        .unwrap_or_else(|payload| {
                            Err(SimError::Panicked(panic_message(&*payload)))
                        });
                let wall = t.elapsed();
                self.busy_nanos
                    .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
                if let Ok(stats) = &result {
                    let instructions = job.budget.warmup + stats.total_retired();
                    self.instructions.fetch_add(instructions, Ordering::Relaxed);
                    lock_clean(&self.stack).merge(&stats.loop_cost);
                    lock_clean(&self.job_log).push(JobRecord {
                        label: job.label(),
                        wall,
                        instructions,
                    });
                    if let Some(store) = &self.result_store {
                        let digest = fnv1a64(key.as_bytes());
                        if let Err(e) = store.save(digest, key, stats) {
                            eprintln!("warning: cannot save result {}: {e}", job.label());
                        }
                    }
                } else {
                    self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                }
                result.map(Arc::new)
            });
            let mut cache = lock_clean(&self.cache);
            for (&i, result) in pending.iter().zip(results) {
                match result {
                    Ok(stats) => {
                        cache.insert(keys[i].clone(), stats);
                    }
                    Err(e) => {
                        failed.insert(keys[i].as_str(), e);
                    }
                }
            }
        }

        self.wall_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let cache = lock_clean(&self.cache);
        keys.iter()
            .map(|k| match cache.get(k) {
                Some(stats) => Ok(Arc::clone(stats)),
                None => Err(failed
                    .get(k.as_str())
                    .expect("every requested job was simulated or failed")
                    .clone()),
            })
            .collect()
    }

    /// [`SweepEngine::try_run_jobs`] for infallible contexts (the figure
    /// generators, whose configurations are known-valid).
    ///
    /// # Panics
    ///
    /// After the whole batch has drained, panics listing every failed
    /// job's label and error — a bad config cannot silently discard the
    /// results of the jobs that did complete.
    pub fn run_jobs(&self, jobs: &[Job]) -> Vec<Arc<SimStats>> {
        let results = self.try_run_jobs(jobs);
        let mut failures: Vec<String> = Vec::new();
        let mut out = Vec::with_capacity(results.len());
        for (job, result) in jobs.iter().zip(results) {
            match result {
                Ok(stats) => out.push(stats),
                Err(e) => failures.push(format!("{}: {e}", job.label())),
            }
        }
        assert!(
            failures.is_empty(),
            "{} sweep job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        );
        out
    }

    /// Execute the full `configs × workloads` grid at one budget.
    /// Returns `result[config][workload]`, row-major in input order.
    pub fn run_grid(
        &self,
        configs: &[PipelineConfig],
        workloads: &[Workload],
        budget: RunBudget,
    ) -> Vec<Vec<Arc<SimStats>>> {
        let jobs: Vec<Job> = configs
            .iter()
            .flat_map(|cfg| {
                workloads
                    .iter()
                    .map(move |w| Job::new(cfg.clone(), *w, budget))
            })
            .collect();
        let flat = self.run_jobs(&jobs);
        flat.chunks(workloads.len().max(1))
            .map(<[Arc<SimStats>]>::to_vec)
            .collect()
    }

    /// Counters since construction (or the last [`SweepEngine::reset_metrics`]).
    pub fn summary(&self) -> SweepSummary {
        SweepSummary {
            workers: self.workers,
            jobs_requested: self.jobs_requested.load(Ordering::Relaxed),
            jobs_run: self.jobs_run.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            wall: Duration::from_nanos(self.wall_nanos.load(Ordering::Relaxed)),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            instructions: self.instructions.load(Ordering::Relaxed),
            stack: *lock_clean(&self.stack),
        }
    }

    /// Drain the per-job timing log (completion order, which is
    /// scheduling-dependent — observability only, never results).
    pub fn take_job_log(&self) -> Vec<JobRecord> {
        std::mem::take(&mut *lock_clean(&self.job_log))
    }

    /// Zero the counters and timing log. The memo cache is kept — metrics
    /// describe work, the cache describes results.
    pub fn reset_metrics(&self) {
        self.jobs_requested.store(0, Ordering::Relaxed);
        self.jobs_run.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.store_hits.store(0, Ordering::Relaxed);
        self.jobs_failed.store(0, Ordering::Relaxed);
        self.wall_nanos.store(0, Ordering::Relaxed);
        self.busy_nanos.store(0, Ordering::Relaxed);
        self.instructions.store(0, Ordering::Relaxed);
        lock_clean(&self.job_log).clear();
        *lock_clean(&self.stack) = LoopCostStack::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_workload::Benchmark;

    fn tiny() -> RunBudget {
        RunBudget {
            warmup: 200,
            measure: 2_000,
            max_cycles: 1_000_000,
        }
    }

    fn job(b: Benchmark) -> Job {
        Job::new(PipelineConfig::base(), Workload::Single(b), tiny())
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let square = |i: usize| i * i;
        let reference: Vec<usize> = (0..97).map(square).collect();
        for workers in [0, 1, 3, 8, 200] {
            assert_eq!(parallel_map(workers, 97, square), reference);
        }
        assert!(parallel_map(4, 0, square).is_empty());
    }

    #[test]
    fn keys_are_stable_and_sensitive() {
        let a = job(Benchmark::Compress);
        assert_eq!(a.key(), job(Benchmark::Compress).key());
        assert_eq!(a.key_hash(), job(Benchmark::Compress).key_hash());
        assert_ne!(a.key(), job(Benchmark::Swim).key());
        let mut other_budget = job(Benchmark::Compress);
        other_budget.budget.measure += 1;
        assert_ne!(a.key(), other_budget.key());
        let dra = Job::new(PipelineConfig::dra_for_rf(5), a.workload, a.budget);
        assert_ne!(a.key(), dra.key());
    }

    #[test]
    fn duplicate_jobs_simulate_once() {
        let engine = SweepEngine::new(4);
        let jobs = [job(Benchmark::Compress), job(Benchmark::Compress)];
        let out = engine.run_jobs(&jobs);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].cycles, out[1].cycles);
        let s = engine.summary();
        assert_eq!(s.jobs_requested, 2);
        assert_eq!(s.jobs_run, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn cache_survives_across_batches() {
        let engine = SweepEngine::new(2);
        engine.run_jobs(&[job(Benchmark::Compress)]);
        engine.run_jobs(&[job(Benchmark::Compress)]);
        let s = engine.summary();
        assert_eq!((s.jobs_run, s.cache_hits), (1, 1));
        assert_eq!(engine.take_job_log().len(), 1, "only the miss is timed");
    }

    #[test]
    fn grid_matches_individual_runs() {
        let engine = SweepEngine::new(8);
        let configs = [
            PipelineConfig::base(),
            PipelineConfig::base_with_latencies(7, 7),
        ];
        let workloads = [
            Workload::Single(Benchmark::Compress),
            Workload::Single(Benchmark::Swim),
        ];
        let grid = engine.run_grid(&configs, &workloads, tiny());
        assert_eq!(grid.len(), 2);
        for (c, row) in configs.iter().zip(&grid) {
            assert_eq!(row.len(), 2);
            for (w, got) in workloads.iter().zip(row) {
                let reference = w.run(c, tiny());
                assert_eq!(got.cycles, reference.cycles);
                assert_eq!(got.total_retired(), reference.total_retired());
            }
        }
    }

    #[test]
    fn metrics_reset_keeps_cache() {
        let engine = SweepEngine::new(2);
        engine.run_jobs(&[job(Benchmark::Compress)]);
        engine.reset_metrics();
        assert_eq!(engine.summary().jobs_run, 0);
        engine.run_jobs(&[job(Benchmark::Compress)]);
        let s = engine.summary();
        assert_eq!(
            (s.jobs_run, s.cache_hits),
            (0, 1),
            "cache outlives metric resets"
        );
    }

    #[test]
    fn label_carries_the_full_64_bit_digest() {
        let j = job(Benchmark::Compress);
        assert_eq!(j.label(), format!("compress#{:016x}", j.key_hash()));
        let digest = j.label().split('#').nth(1).unwrap().to_string();
        assert_eq!(digest.len(), 16, "no 32-bit truncation: {digest}");
    }

    fn broken_job() -> Job {
        let cfg = PipelineConfig {
            clusters: 0,
            ..PipelineConfig::base()
        };
        Job::new(cfg, Workload::Single(Benchmark::Compress), tiny())
    }

    #[test]
    fn a_failing_job_does_not_sink_the_batch() {
        let engine = SweepEngine::new(4);
        let jobs = [
            job(Benchmark::Compress),
            broken_job(),
            job(Benchmark::Swim),
            broken_job(), // duplicate failure: same error, simulated once
        ];
        let out = engine.try_run_jobs(&jobs);
        assert!(out[0].is_ok() && out[2].is_ok(), "good jobs complete");
        assert!(out[1].is_err() && out[3].is_err(), "bad jobs report errors");
        assert_eq!(
            out[1].as_ref().unwrap_err(),
            out[3].as_ref().unwrap_err(),
            "duplicates share the error"
        );
        let s = engine.summary();
        assert_eq!(s.jobs_failed, 1, "one execution failed");
        // Failures are not cached: a retry re-runs (and fails again).
        let again = engine.try_run_jobs(&[broken_job()]);
        assert!(again[0].is_err());
        assert_eq!(engine.summary().jobs_failed, 2);
        assert!(engine.summary().line().contains("FAILED"));
    }

    #[test]
    #[should_panic(expected = "sweep job(s) failed")]
    fn run_jobs_panics_with_labeled_failures_after_draining() {
        let engine = SweepEngine::new(2);
        engine.run_jobs(&[job(Benchmark::Compress), broken_job()]);
    }

    fn panicking_job() -> Job {
        // An unknown micro name panics inside `Workload::programs` — a
        // deterministic stand-in for any worker panic.
        Job::new(PipelineConfig::base(), Workload::Micro("nonesuch"), tiny())
    }

    #[test]
    fn a_panicking_job_is_isolated_and_the_engine_stays_usable() {
        let engine = SweepEngine::new(4);
        let jobs = [
            job(Benchmark::Compress),
            panicking_job(),
            job(Benchmark::Swim),
        ];
        let out = engine.try_run_jobs(&jobs);
        assert!(out[0].is_ok() && out[2].is_ok(), "good jobs complete");
        let err = out[1].as_ref().unwrap_err();
        assert!(matches!(err, SimError::Panicked(_)), "got {err:?}");
        assert!(err.to_string().contains("job panicked"));
        assert_eq!(engine.summary().jobs_failed, 1);
        // Regression: the panic used to poison the engine's mutexes, so
        // every later call on the (process-global) engine also panicked.
        let again = engine.run_jobs(&[job(Benchmark::Compress), job(Benchmark::Swim)]);
        assert_eq!(again.len(), 2);
        let s = engine.summary();
        assert_eq!(s.cache_hits, 2, "memo cache survived the panic");
        assert!(s.stack.conserves());
    }

    fn poison<T>(m: &Mutex<T>) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("deliberate poison");
        }));
        assert!(result.is_err());
    }

    #[test]
    fn poisoned_engine_locks_recover() {
        // Poison the stack/log/cache mutexes directly (panic while the
        // guard is held) and check every engine entry point still works.
        let engine = SweepEngine::new(2);
        engine.run_jobs(&[job(Benchmark::Compress)]);
        poison(&engine.stack);
        poison(&engine.job_log);
        poison(&engine.cache);
        assert!(engine.stack.is_poisoned());
        let s = engine.summary();
        assert!(s.stack.conserves());
        engine.run_jobs(&[job(Benchmark::Compress)]);
        assert_eq!(engine.summary().cache_hits, 1, "cache intact after poison");
        engine.take_job_log();
        engine.reset_metrics();
        assert_eq!(engine.summary().jobs_run, 0);
    }

    #[test]
    fn disk_store_answers_fresh_engines_without_simulating() {
        let dir = std::env::temp_dir().join(format!("llrs-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::store::ResultStore::open(&dir).expect("open");
        let jobs = [job(Benchmark::Compress), job(Benchmark::Swim)];

        let cold = SweepEngine::with_stores(2, ExecMode::Detailed, None, Some(store.clone()));
        let a = cold.run_jobs(&jobs);
        let s = cold.summary();
        assert_eq!((s.jobs_run, s.store_hits), (2, 0));

        // A fresh engine (empty memo) on the same directory answers
        // everything from disk: zero simulation, identical results.
        let warm = SweepEngine::with_stores(2, ExecMode::Detailed, None, Some(store));
        let b = warm.run_jobs(&jobs);
        let s = warm.summary();
        assert_eq!((s.jobs_run, s.store_hits), (0, 2));
        assert!(s.line().contains("2 store hits"));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.total_retired(), y.total_retired());
            assert_eq!(x.loop_cost, y.loop_cost);
        }
        // Store hits fill the memo cache: a repeat within the warm engine
        // is a memory hit, not another disk read.
        warm.run_jobs(&jobs);
        assert_eq!(warm.summary().cache_hits, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exec_mode_participates_in_keys_only_when_not_detailed() {
        let j = job(Benchmark::Compress);
        assert_eq!(j.key(), j.key_with_mode(ExecMode::Detailed));
        assert_ne!(j.key(), j.key_with_mode(ExecMode::FastForward));
        let plan = SamplingPlan::for_budget(j.budget);
        assert_ne!(
            j.key_with_mode(ExecMode::FastForward),
            j.key_with_mode(ExecMode::Sampled(plan))
        );
    }

    #[test]
    fn exec_modes_estimate_the_detailed_cpi() {
        let budget = RunBudget {
            warmup: 5_000,
            measure: 40_000,
            max_cycles: 4_000_000,
        };
        let j = Job::new(
            PipelineConfig::base(),
            Workload::Single(Benchmark::Compress),
            budget,
        );
        let cpi = |s: &SimStats| s.cycles as f64 / s.total_retired() as f64;
        let detailed = &SweepEngine::serial().run_jobs(std::slice::from_ref(&j))[0];

        let ff_engine = SweepEngine::with_mode(1, ExecMode::FastForward, None);
        assert_eq!(ff_engine.mode(), ExecMode::FastForward);
        let ff = &ff_engine.run_jobs(std::slice::from_ref(&j))[0];
        assert!(ff.total_retired() >= budget.measure);
        let ff_err = (cpi(ff) - cpi(detailed)).abs() / cpi(detailed);
        assert!(
            ff_err < 0.05,
            "fast-forward CPI off by {:.1}% ({:.4} vs {:.4})",
            ff_err * 100.0,
            cpi(ff),
            cpi(detailed)
        );

        let plan = SamplingPlan::for_budget(budget);
        let s_engine = SweepEngine::with_mode(1, ExecMode::Sampled(plan), None);
        let sampled = &s_engine.run_jobs(std::slice::from_ref(&j))[0];
        // Sampling simulates a small fraction of the window in detail...
        assert!(sampled.total_retired() <= plan.detailed_instructions());
        assert!(sampled.total_retired() < detailed.total_retired() / 3);
        // ...and still lands near the detailed CPI.
        let s_err = (cpi(sampled) - cpi(detailed)).abs() / cpi(detailed);
        assert!(
            s_err < 0.10,
            "sampled CPI off by {:.1}% ({:.4} vs {:.4})",
            s_err * 100.0,
            cpi(sampled),
            cpi(detailed)
        );
    }

    #[test]
    fn summary_stack_merges_executed_jobs() {
        let engine = SweepEngine::new(2);
        let jobs = [job(Benchmark::Compress), job(Benchmark::Swim)];
        let out = engine.run_jobs(&jobs);
        let s = engine.summary();
        assert!(s.stack.conserves(), "merged stack conserves slots");
        assert_eq!(
            s.stack.cycles,
            out.iter().map(|st| st.cycles).sum::<u64>(),
            "stack covers every executed cycle"
        );
        // Cache hits add nothing: the stack tracks work, not requests.
        engine.run_jobs(&jobs);
        assert_eq!(engine.summary().stack.cycles, s.stack.cycles);
        engine.reset_metrics();
        assert_eq!(engine.summary().stack, LoopCostStack::default());
    }
}
