//! The paper's evaluation, experiment by experiment.
//!
//! Each function regenerates one figure of the evaluation section as a
//! [`FigureResult`] (who wins, by what factor) at a caller-chosen
//! [`RunBudget`]. The bench targets in `looseloops-bench` call these with
//! a large budget and print the tables recorded in EXPERIMENTS.md; tests
//! call them with tiny budgets to keep CI fast.
//!
//! Every generator comes in two forms: `figN(workloads, budget)` runs on
//! the process-wide [`SweepEngine::global`] (worker count from
//! `LOOSELOOPS_JOBS` / the machine, memo cache shared between figures),
//! while `figN_on(engine, workloads, budget)` runs on a caller-owned
//! engine — tests use this to pin the worker count.

use crate::report::{CpiStackReport, CpiStackRow, FigureResult, Series};
use crate::simulator::{try_run_programs, RunBudget};
use crate::sweep::{Job, SweepEngine};
use looseloops_branch;
use looseloops_isa::Program;
use looseloops_mem;
use looseloops_pipeline::{LoadSpecPolicy, PipelineConfig, SimError, SimStats};
use looseloops_regs;
use looseloops_workload::{Benchmark, SmtPair};
use std::sync::Arc;

/// A workload of the paper's evaluation: a single benchmark or an SMT pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One hardware thread.
    Single(Benchmark),
    /// The paper's two-thread SMT pairings.
    Pair(SmtPair),
    /// A named microbenchmark (currently only "chase").
    Micro(&'static str),
}

impl Workload {
    /// The thirteen workloads of Figures 4, 5 and 8: ten benchmarks plus
    /// three SMT pairs.
    pub fn paper_set() -> Vec<Workload> {
        let mut v: Vec<Workload> = Benchmark::all().into_iter().map(Workload::Single).collect();
        v.extend(Benchmark::pairs().into_iter().map(Workload::Pair));
        v
    }

    /// A fast subset for smoke tests (one int, one fp, one pair).
    pub fn smoke_set() -> Vec<Workload> {
        vec![
            Workload::Single(Benchmark::Compress),
            Workload::Single(Benchmark::Swim),
            Workload::Pair(Benchmark::pairs()[0]),
        ]
    }

    /// Display name (paper style).
    pub fn name(&self) -> String {
        match self {
            Workload::Single(b) => b.name().to_string(),
            Workload::Pair(p) => p.name(),
            Workload::Micro(m) => (*m).to_string(),
        }
    }

    /// The hardware-thread count this workload occupies.
    pub fn threads(&self) -> usize {
        match self {
            Workload::Single(_) | Workload::Micro(_) => 1,
            Workload::Pair(_) => 2,
        }
    }

    /// `cfg` with its thread count adjusted to this workload — the exact
    /// machine [`Workload::try_run`] simulates. Factored out so the
    /// checkpoint/sampling drivers build the same machine the detailed
    /// path does.
    pub fn config_for(&self, cfg: &PipelineConfig) -> PipelineConfig {
        cfg.clone().smt(self.threads())
    }

    /// The concrete program list this workload runs, one per hardware
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics on an unknown [`Workload::Micro`] name (a programming error,
    /// not a simulation outcome).
    pub fn programs(&self) -> Vec<Program> {
        match self {
            Workload::Single(b) => vec![b.program()],
            Workload::Pair(p) => p.programs(),
            Workload::Micro(m) => match *m {
                "chase" => vec![looseloops_workload::kernels::int::chase(16 << 20)],
                other => panic!("unknown microbenchmark {other}"),
            },
        }
    }

    /// Run this workload under `cfg` (thread count is adjusted to fit).
    ///
    /// # Errors
    ///
    /// Everything the `try_run_*` drivers can report: an invalid
    /// configuration, a deadlock, or (with `cfg.audit`) an invariant
    /// violation.
    ///
    /// # Panics
    ///
    /// Panics on an unknown [`Workload::Micro`] name (a programming error,
    /// not a simulation outcome).
    pub fn try_run(&self, cfg: &PipelineConfig, budget: RunBudget) -> Result<SimStats, SimError> {
        try_run_programs(&self.config_for(cfg), self.programs(), budget)
    }

    /// [`Workload::try_run`] for infallible contexts (benches, examples).
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`] or an unknown micro name.
    pub fn run(&self, cfg: &PipelineConfig, budget: RunBudget) -> SimStats {
        self.try_run(cfg, budget).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// How a figure's completed grid results are folded into a
/// [`FigureResult`]. Pure data → pure function: no engine involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// IPC of every config relative to `configs[baseline]`, per workload.
    Speedup {
        /// Index of the reference config.
        baseline: usize,
    },
    /// Figure 6: operand-availability-gap CDF of the single grid point,
    /// columns are gap values 0..=60.
    GapCdf,
    /// Figure 9: operand-source fractions of one config across workloads.
    OperandSources,
    /// Figure 8: pairwise speedups — configs come in (base, DRA) pairs,
    /// rows 2k base and 2k+1 the matched DRA.
    DraPairSpeedup,
}

/// One figure of the evaluation as **pure data**: a labeled machine grid,
/// a workload set, a budget, and a rendering rule. The spec is completely
/// decoupled from execution — [`FigureSpec::jobs`] enumerates the sweep
/// points and [`FigureSpec::render`] folds their results, so the same
/// spec runs on a local [`SweepEngine`] ([`FigureSpec::run_on`]) or is
/// shipped job-by-job to a `looseloops serve` daemon unchanged.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Canonical figure id (`fig4`, `ablation-load-policy`, ...).
    pub id: String,
    /// Human title, exactly as the figure prints it.
    pub title: String,
    /// What the paper says this figure should show.
    pub paper_expectation: String,
    /// The labeled machine grid.
    pub configs: Vec<(String, PipelineConfig)>,
    /// The workload set (already including any figure-specific pins or
    /// extras, e.g. Figure 6's turb3d or the load-policy chase micro).
    pub workloads: Vec<Workload>,
    /// Warm-up/measurement budget every grid point runs at.
    pub budget: RunBudget,
    /// How results become a figure.
    pub kind: FigureKind,
}

impl FigureSpec {
    /// The spec behind a figure id, canonical (`ablation-load-policy`) or
    /// CLI-short (`load-policy`). `workloads` seeds the workload set;
    /// figures that pin their own workloads (Figure 6) ignore it, and the
    /// load-policy ablation appends its chase microbenchmark. `None` for
    /// an unknown id.
    pub fn for_id(id: &str, workloads: &[Workload], budget: RunBudget) -> Option<FigureSpec> {
        match id {
            "fig4" => Some(fig4_spec(workloads, budget)),
            "fig5" => Some(fig5_spec(workloads, budget)),
            "fig6" => Some(fig6_spec(budget)),
            "fig8" => Some(fig8_spec(workloads, budget)),
            "fig9" => Some(fig9_spec(workloads, budget)),
            "load-policy" | "ablation-load-policy" => Some(load_policy_spec(workloads, budget)),
            "dra-design" | "ablation-dra-design" => Some(dra_design_spec(workloads, budget)),
            "fwd-window" | "ablation-fwd-window" => Some(fwd_window_spec(workloads, budget)),
            "iq-size" | "ablation-iq-size" => Some(iq_size_spec(workloads, budget)),
            "prefetch" | "ablation-prefetch" => Some(prefetch_spec(workloads, budget)),
            "predictor" | "ablation-predictor" => Some(predictor_spec(workloads, budget)),
            _ => None,
        }
    }

    /// The full `configs × workloads` grid as sweep jobs, row-major in
    /// config order — the exact order [`FigureSpec::render`] expects its
    /// results in.
    pub fn jobs(&self) -> Vec<Job> {
        self.configs
            .iter()
            .flat_map(|(_, cfg)| {
                self.workloads
                    .iter()
                    .map(move |w| Job::new(cfg.clone(), *w, self.budget))
            })
            .collect()
    }

    /// Fold completed results (one per [`FigureSpec::jobs`] entry, same
    /// order) into the figure. Pure: no simulation, no engine.
    ///
    /// # Panics
    ///
    /// Panics when `results` does not cover the grid.
    pub fn render(&self, results: &[Arc<SimStats>]) -> FigureResult {
        let nw = self.workloads.len();
        assert_eq!(
            results.len(),
            self.configs.len() * nw,
            "figure {} expects one result per grid point",
            self.id
        );
        let series = match self.kind {
            FigureKind::Speedup { baseline } => {
                // ipc[config][workload]
                let ipc: Vec<Vec<f64>> = results
                    .chunks(nw.max(1))
                    .map(|row| row.iter().map(|s| s.ipc()).collect())
                    .collect();
                self.configs
                    .iter()
                    .enumerate()
                    .map(|(i, (label, _))| Series {
                        label: label.clone(),
                        values: (0..nw).map(|w| ipc[i][w] / ipc[baseline][w]).collect(),
                    })
                    .collect()
            }
            FigureKind::GapCdf => {
                let cdf = results[0].gap_cdf();
                return FigureResult {
                    id: self.id.clone(),
                    title: self.title.clone(),
                    columns: (0..=60).map(|p: usize| p.to_string()).collect(),
                    series: vec![Series {
                        label: self.workloads[0].name(),
                        values: (0..=60).map(|p: usize| cdf[p]).collect(),
                    }],
                    paper_expectation: self.paper_expectation.clone(),
                };
            }
            FigureKind::OperandSources => {
                let labels = ["pre-read", "forward", "crc", "regfile", "miss"];
                let mut fractions: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
                for stats in &results[..nw] {
                    for (i, v) in stats.operand_source_fractions().into_iter().enumerate() {
                        fractions[i].push(v);
                    }
                }
                labels
                    .iter()
                    .zip(fractions)
                    .map(|(l, values)| Series {
                        label: (*l).into(),
                        values,
                    })
                    .collect()
            }
            FigureKind::DraPairSpeedup => (0..self.configs.len() / 2)
                .map(|k| {
                    let base = &self.configs[2 * k].1;
                    let dra = &self.configs[2 * k + 1].1;
                    Series {
                        label: format!(
                            "DRA:{}_{} vs Base:{}_{}",
                            dra.dec_iq_stages,
                            dra.iq_ex_stages,
                            base.dec_iq_stages,
                            base.iq_ex_stages
                        ),
                        values: (0..nw)
                            .map(|w| {
                                results[(2 * k + 1) * nw + w].ipc() / results[2 * k * nw + w].ipc()
                            })
                            .collect(),
                    }
                })
                .collect(),
        };
        FigureResult {
            id: self.id.clone(),
            title: self.title.clone(),
            columns: self.workloads.iter().map(Workload::name).collect(),
            series,
            paper_expectation: self.paper_expectation.clone(),
        }
    }

    /// The per-loop CPI-stack companion view of the same results: one row
    /// per (config, workload) grid point.
    pub fn render_stacks(&self, results: &[Arc<SimStats>]) -> CpiStackReport {
        let nw = self.workloads.len().max(1);
        let mut rep = CpiStackReport::new(
            format!("{}-stacks", self.id),
            format!("Per-loop CPI stacks behind {}", self.id),
        );
        for ((label, _), row) in self.configs.iter().zip(results.chunks(nw)) {
            for (w, stats) in self.workloads.iter().zip(row) {
                rep.rows.push(CpiStackRow::from_stats(
                    format!("{label}/{}", w.name()),
                    stats,
                ));
            }
        }
        rep
    }

    /// Execute the grid on `sweep` and render — the local path every
    /// `figN_on` generator delegates to.
    pub fn run_on(&self, sweep: &SweepEngine) -> FigureResult {
        self.render(&sweep.run_jobs(&self.jobs()))
    }
}

fn spec(
    id: &str,
    title: &str,
    expectation: &str,
    configs: Vec<(String, PipelineConfig)>,
    workloads: &[Workload],
    budget: RunBudget,
    kind: FigureKind,
) -> FigureSpec {
    FigureSpec {
        id: id.into(),
        title: title.into(),
        paper_expectation: expectation.into(),
        configs,
        workloads: workloads.to_vec(),
        budget,
        kind,
    }
}

/// The labeled machine grid of Figure 4: DEC→EX swept from 6 to 18
/// cycles. Shared between the figure generator and its CPI-stack view.
fn fig4_configs() -> Vec<(String, PipelineConfig)> {
    [(3, 3), (5, 5), (7, 7), (9, 9)]
        .into_iter()
        .map(|(x, y)| {
            (
                format!("{x}_{y}"),
                PipelineConfig::base_with_latencies(x, y),
            )
        })
        .collect()
}

/// **Figure 4** — performance vs pipeline length. DEC→EX is swept from 6
/// to 18 cycles (configs 3_3, 5_5, 7_7, 9_9); results are speedups
/// relative to the 6-cycle machine.
pub fn fig4_pipeline_length(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    fig4_pipeline_length_on(SweepEngine::global(), workloads, budget)
}

fn fig4_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "fig4",
        "Performance for varying pipeline lengths (relative to 6 cycles DEC->EX)",
        "monotonic losses up to ~24% at 18 cycles; int codes lose to the branch loop, \
         swim/turb3d to the load loop; hydro2d/mgrid (memory-bound) and apsi (low ILP) \
         are least sensitive; SMT pairs lose less than their worst member",
        fig4_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

/// [`fig4_pipeline_length`] on a caller-owned engine.
pub fn fig4_pipeline_length_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    fig4_spec(workloads, budget).run_on(sweep)
}

/// **Figure 5** — fixed overall DEC→EX length (12 cycles), varying the
/// DEC-IQ / IQ-EX split: 3_9, 5_7, 7_5, 9_3 relative to 3_9.
pub fn fig5_fixed_total(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    fig5_fixed_total_on(SweepEngine::global(), workloads, budget)
}

/// The labeled machine grid of Figure 5: fixed 12-cycle DEC→EX, varying
/// the DEC-IQ / IQ-EX split.
fn fig5_configs() -> Vec<(String, PipelineConfig)> {
    [(3, 9), (5, 7), (7, 5), (9, 3)]
        .into_iter()
        .map(|(x, y)| {
            (
                format!("{x}_{y}"),
                PipelineConfig::base_with_latencies(x, y),
            )
        })
        .collect()
}

fn fig5_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "fig5",
        "Performance for a fixed 12-cycle DEC->EX, shifting stages out of IQ-EX (relative to 3_9)",
        "up to ~15% gain for 9_3 on the load-loop-sensitive codes (swim, turb3d, apsi-swim); \
         branch-bound and memory-bound codes are flat",
        fig5_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

/// [`fig5_fixed_total`] on a caller-owned engine.
pub fn fig5_fixed_total_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    fig5_spec(workloads, budget).run_on(sweep)
}

/// **Figure 6** — cumulative distribution of the gap (in cycles) between
/// an instruction's first and second operand becoming available, measured
/// on `turb3d` on the base machine. Columns are gap values 0..=60.
pub fn fig6_operand_gap_cdf(budget: RunBudget) -> FigureResult {
    fig6_operand_gap_cdf_on(SweepEngine::global(), budget)
}

fn fig6_spec(budget: RunBudget) -> FigureSpec {
    spec(
        "fig6",
        "CDF of cycles between first- and second-operand availability (turb3d)",
        "~25% of instructions have gaps of 25+ cycles; the 9-cycle \
         forwarding buffer covers only ~50% of instructions",
        vec![("base".to_string(), PipelineConfig::base())],
        &[Workload::Single(Benchmark::Turb3d)],
        budget,
        FigureKind::GapCdf,
    )
}

/// [`fig6_operand_gap_cdf`] on a caller-owned engine.
pub fn fig6_operand_gap_cdf_on(sweep: &SweepEngine, budget: RunBudget) -> FigureResult {
    fig6_spec(budget).run_on(sweep)
}

/// **Figure 8** — DRA speedups for register-file read latencies of 3, 5
/// and 7 cycles: DRA:5_3 vs Base:5_5, DRA:7_3 vs Base:5_7, DRA:9_3 vs
/// Base:5_9.
pub fn fig8_dra_speedup(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    fig8_dra_speedup_on(SweepEngine::global(), workloads, budget)
}

/// [`fig8_dra_speedup`] on a caller-owned engine.
/// The labeled machine grid of Figure 8: base and DRA per register-file
/// latency, rows 2k base / 2k+1 the matched DRA.
fn fig8_configs() -> Vec<(String, PipelineConfig)> {
    [3u32, 5, 7]
        .into_iter()
        .flat_map(|rf| {
            let base = PipelineConfig::base_for_rf(rf);
            let dra = PipelineConfig::dra_for_rf(rf);
            [
                (
                    format!("base:{}_{} (rf{rf})", base.dec_iq_stages, base.iq_ex_stages),
                    base,
                ),
                (
                    format!("dra:{}_{} (rf{rf})", dra.dec_iq_stages, dra.iq_ex_stages),
                    dra,
                ),
            ]
        })
        .collect()
}

fn fig8_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "fig8",
        "DRA speedup over the base machine, per register-file latency",
        "gains up to 4% / 9% / 15% for 3/5/7-cycle register files, \
         growing with RF latency; apsi (and apsi-swim) LOSE 10-14% \
         from operand-resolution-loop misses",
        fig8_configs(),
        workloads,
        budget,
        FigureKind::DraPairSpeedup,
    )
}

pub fn fig8_dra_speedup_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    fig8_spec(workloads, budget).run_on(sweep)
}

/// **Figure 9** — where operands come from under the DRA (7_3
/// configuration, 5-cycle register file): pre-read / forwarding buffer /
/// CRC / miss fractions per workload.
pub fn fig9_operand_sources(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    fig9_operand_sources_on(SweepEngine::global(), workloads, budget)
}

fn fig9_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "fig9",
        "Operand sources under the DRA (7_3, 5-cycle register file)",
        "more than half of operands come from the forwarding buffer; \
         the rest split between pre-read and the CRCs; miss rates are \
         well under 1% except apsi at ~1.5%",
        vec![("dra:7_3 (rf5)".to_string(), PipelineConfig::dra_for_rf(5))],
        workloads,
        budget,
        FigureKind::OperandSources,
    )
}

/// [`fig9_operand_sources`] on a caller-owned engine.
pub fn fig9_operand_sources_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    fig9_spec(workloads, budget).run_on(sweep)
}

/// **§2.2.2 ablation** — the four load-resolution-loop management
/// policies, as speedups relative to the paper's choice (tree reissue).
pub fn ablation_load_policies(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_load_policies_on(SweepEngine::global(), workloads, budget)
}

/// [`ablation_load_policies`] on a caller-owned engine.
/// The labeled machines of the load-policy ablation.
fn load_policy_configs() -> Vec<(String, PipelineConfig)> {
    [
        ("reissue-tree", LoadSpecPolicy::ReissueTree),
        ("reissue-shadow", LoadSpecPolicy::ReissueShadow),
        ("stall", LoadSpecPolicy::Stall),
        ("refetch", LoadSpecPolicy::Refetch),
    ]
    .into_iter()
    .map(|(name, p)| {
        (
            name.to_string(),
            PipelineConfig {
                load_policy: p,
                ..PipelineConfig::base()
            },
        )
    })
    .collect()
}

fn load_policy_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    // Append the pointer-chase microbenchmark: the workload where the
    // load-resolution-loop policy is the entire story.
    let mut workloads: Vec<Workload> = workloads.to_vec();
    workloads.push(Workload::Micro("chase"));
    spec(
        "ablation-load-policy",
        "Load mis-speculation recovery policies (relative to tree reissue)",
        "reissue beats stall; refetch is significantly worse than reissue (paper §2.2.2); \
         21264-style shadow reissue trails tree reissue",
        load_policy_configs(),
        &workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

pub fn ablation_load_policies_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    load_policy_spec(workloads, budget).run_on(sweep)
}

/// **DRA design ablation** — the design choices DESIGN.md calls out:
/// CRC size (8/16/32 entries), CRC replacement policy (FIFO vs the
/// "smarter" LRU the paper deemed unnecessary), and idealized
/// insertion-table cleanup on squash. All at the 5-cycle-RF DRA (7_3),
/// relative to the paper's 16-entry FIFO.
pub fn ablation_dra_design(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_dra_design_on(SweepEngine::global(), workloads, budget)
}

/// [`ablation_dra_design`] on a caller-owned engine.
/// The labeled machines of the DRA-design ablation.
fn dra_design_configs() -> Vec<(String, PipelineConfig)> {
    use looseloops_regs::CrcPolicy;
    let dra = |entries: usize, policy: CrcPolicy, cleanup: bool| {
        let mut cfg = PipelineConfig::dra_for_rf(5);
        cfg.scheme = looseloops_pipeline::RegisterScheme::Dra {
            crc_entries: entries,
            crc_policy: policy,
        };
        cfg.dra_ideal_squash_cleanup = cleanup;
        cfg
    };
    vec![
        (
            "fifo-16 (paper)".to_string(),
            dra(16, CrcPolicy::Fifo, false),
        ),
        ("lru-16".to_string(), dra(16, CrcPolicy::Lru, false)),
        ("fifo-8".to_string(), dra(8, CrcPolicy::Fifo, false)),
        ("fifo-32".to_string(), dra(32, CrcPolicy::Fifo, false)),
        ("ideal-cleanup".to_string(), dra(16, CrcPolicy::Fifo, true)),
    ]
}

fn dra_design_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "ablation-dra-design",
        "DRA design choices (7_3, 5-cycle RF; relative to the paper's 16-entry FIFO CRC)",
        "paper §5.1: mechanisms smarter than FIFO gain almost nothing; capacity matters          more than policy",
        dra_design_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

pub fn ablation_dra_design_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    dra_design_spec(workloads, budget).run_on(sweep)
}

/// **Forwarding-window ablation** — the base machine's buffer retains 9
/// cycles of results (5 for long-latency ops + 4 of write-back delay,
/// §2.2.1). Shorter windows push more operands onto the register-file /
/// CRC paths; longer ones are increasingly unimplementable CAMs.
pub fn ablation_fwd_window(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_fwd_window_on(SweepEngine::global(), workloads, budget)
}

/// [`ablation_fwd_window`] on a caller-owned engine.
/// The labeled machines of the forwarding-window ablation.
fn fwd_window_configs() -> Vec<(String, PipelineConfig)> {
    [9u64, 5, 13, 17]
        .into_iter()
        .map(|w| {
            (
                format!("window-{w}"),
                PipelineConfig {
                    fwd_window: w,
                    ..PipelineConfig::dra_for_rf(5)
                },
            )
        })
        .collect()
}

fn fwd_window_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "ablation-fwd-window",
        "Forwarding-buffer retention window under the DRA (7_3; relative to the paper's 9)",
        "the 9-cycle window was sized to hand values to the register file exactly as          they expire; shrinking it shifts traffic to the CRCs (more operand misses),          growing it buys little because the gap distribution has a long tail (Figure 6)",
        fwd_window_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

pub fn ablation_fwd_window_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    fwd_window_spec(workloads, budget).run_on(sweep)
}

/// **IQ-capacity ablation** — §2.2.2's IQ-pressure argument: reissue
/// retention shrinks the effective window, so smaller IQs magnify the
/// load-resolution loop's cost.
pub fn ablation_iq_size(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_iq_size_on(SweepEngine::global(), workloads, budget)
}

/// [`ablation_iq_size`] on a caller-owned engine.
/// The labeled machines of the IQ-capacity ablation.
fn iq_size_configs() -> Vec<(String, PipelineConfig)> {
    [128usize, 64, 32, 256]
        .into_iter()
        .map(|n| {
            (
                format!("iq-{n}"),
                PipelineConfig {
                    iq_entries: n,
                    ..PipelineConfig::base()
                },
            )
        })
        .collect()
}

fn iq_size_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "ablation-iq-size",
        "Instruction-queue capacity on the base machine (relative to the paper's 128)",
        "issued instructions are retained for the 8-cycle loop delay plus a clear          cycle; small IQs lose exposed ILP exactly as §2.2.2 argues",
        iq_size_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

pub fn ablation_iq_size_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    iq_size_spec(workloads, budget).run_on(sweep)
}

/// **Prefetcher extension** — the paper attacks the load-resolution
/// loop's *delay* (DRA); a stride prefetcher attacks its mis-speculation
/// *rate*. This ablation runs base / base+prefetch / DRA / DRA+prefetch
/// (5-cycle RF) to show the two are complementary.
pub fn ablation_prefetch(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_prefetch_on(SweepEngine::global(), workloads, budget)
}

/// The labeled machines of the prefetcher ablation.
fn prefetch_configs() -> Vec<(String, PipelineConfig)> {
    use looseloops_mem::PrefetchConfig;
    let with_pf = |mut cfg: PipelineConfig| {
        cfg.mem.prefetch = Some(PrefetchConfig::default());
        cfg
    };
    vec![
        ("base".to_string(), PipelineConfig::base_for_rf(5)),
        (
            "base+prefetch".to_string(),
            with_pf(PipelineConfig::base_for_rf(5)),
        ),
        ("dra".to_string(), PipelineConfig::dra_for_rf(5)),
        (
            "dra+prefetch".to_string(),
            with_pf(PipelineConfig::dra_for_rf(5)),
        ),
    ]
}

fn prefetch_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "ablation-prefetch",
        "Stride prefetching vs / with the DRA (5-cycle RF; relative to the base machine)",
        "extension beyond the paper: prefetching cuts the load loop's mis-speculation          rate, the DRA cuts its delay — the streaming codes should take both",
        prefetch_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

/// [`ablation_prefetch`] on a caller-owned engine.
pub fn ablation_prefetch_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    prefetch_spec(workloads, budget).run_on(sweep)
}

/// **Predictor ablation** — the branch-resolution loop's mis-speculation
/// rate under different direction predictors, as speedup relative to the
/// paper-style tournament.
pub fn ablation_predictors(workloads: &[Workload], budget: RunBudget) -> FigureResult {
    ablation_predictors_on(SweepEngine::global(), workloads, budget)
}

/// The labeled machines of the predictor ablation.
fn predictor_configs() -> Vec<(String, PipelineConfig)> {
    use looseloops_branch::PredictorKind;
    [
        ("tournament", PredictorKind::Tournament),
        ("gshare", PredictorKind::Gshare),
        ("local", PredictorKind::Local),
        ("bimodal", PredictorKind::Bimodal),
        ("always-taken", PredictorKind::Taken),
    ]
    .into_iter()
    .map(|(n, k)| {
        (
            n.to_string(),
            PipelineConfig {
                predictor: k,
                ..PipelineConfig::base()
            },
        )
    })
    .collect()
}

fn predictor_spec(workloads: &[Workload], budget: RunBudget) -> FigureSpec {
    spec(
        "ablation-predictor",
        "Direction predictors on the base machine (relative to the tournament)",
        "weaker predictors fire the branch-resolution loop more often; the          branch-limited integer codes pay the most",
        predictor_configs(),
        workloads,
        budget,
        FigureKind::Speedup { baseline: 0 },
    )
}

/// [`ablation_predictors`] on a caller-owned engine.
pub fn ablation_predictors_on(
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> FigureResult {
    predictor_spec(workloads, budget).run_on(sweep)
}

/// Per-loop CPI stacks for a labeled config grid × workload set: one row
/// per (config, workload) point, columns in [`CpiComponent::ALL`]
/// (re-exported as `looseloops_pipeline::CpiComponent`) order. Every point
/// is a memoized [`SweepEngine`] job, so generating the stacks for a
/// figure that already ran is pure cache hits.
pub fn cpi_stack_report_on(
    sweep: &SweepEngine,
    id: &str,
    title: &str,
    configs: &[(String, PipelineConfig)],
    workloads: &[Workload],
    budget: RunBudget,
) -> CpiStackReport {
    let grid_configs: Vec<PipelineConfig> = configs.iter().map(|(_, c)| c.clone()).collect();
    let grid = sweep.run_grid(&grid_configs, workloads, budget);
    let mut rep = CpiStackReport::new(id, title);
    for ((label, _), row) in configs.iter().zip(&grid) {
        for (w, stats) in workloads.iter().zip(row) {
            rep.rows.push(CpiStackRow::from_stats(
                format!("{label}/{}", w.name()),
                stats,
            ));
        }
    }
    rep
}

/// The CPI-stack companion of a figure generator: the same machine grid
/// and workload set the figure ran (Figure 6 pins turb3d on the base
/// machine; the load-policy ablation appends the chase microbenchmark,
/// exactly as its generator does), so on a warm cache no new simulation
/// happens. Returns `None` for an unknown figure id.
pub fn figure_cpi_stacks_on(
    sweep: &SweepEngine,
    id: &str,
    workloads: &[Workload],
    budget: RunBudget,
) -> Option<CpiStackReport> {
    let spec = FigureSpec::for_id(id, workloads, budget)?;
    Some(spec.render_stacks(&sweep.run_jobs(&spec.jobs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunBudget {
        RunBudget {
            warmup: 500,
            measure: 4_000,
            max_cycles: 2_000_000,
        }
    }

    #[test]
    fn paper_set_has_thirteen_workloads() {
        assert_eq!(Workload::paper_set().len(), 13);
    }

    #[test]
    fn fig4_shape() {
        let f = fig4_pipeline_length(&Workload::smoke_set(), tiny());
        assert_eq!(f.series.len(), 4);
        assert_eq!(f.columns.len(), 3);
        // Baseline series is exactly 1.0 everywhere.
        for v in &f.series[0].values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        // Longer pipes do not help.
        for (b, long) in f.series[0].values.iter().zip(&f.series[3].values) {
            assert!(long <= &(b * 1.02), "9_9 must not beat 3_3: {long} vs {b}");
        }
    }

    #[test]
    fn fig6_cdf_is_monotone() {
        let f = fig6_operand_gap_cdf(tiny());
        let vals = &f.series[0].values;
        for w in vals.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(vals[60] <= 1.0 && vals[0] >= 0.0);
    }

    #[test]
    fn fig9_fractions_sum_to_one() {
        let ws = [Workload::Single(Benchmark::M88ksim)];
        let f = fig9_operand_sources(&ws, tiny());
        let total: f64 = f.series.iter().map(|s| s.values[0]).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        // DRA never uses the baseline register-file path.
        let rf = f.series.iter().find(|s| s.label == "regfile").unwrap();
        assert_eq!(rf.values[0], 0.0);
    }
}
