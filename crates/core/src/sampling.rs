//! SMARTS-style interval sampling of the measured window.
//!
//! Instead of simulating the full measured budget cycle-accurately, a
//! [`SamplingPlan`] alternates *functional* windows (ISA-level execution
//! that keeps caches/TLB/predictors warm via `crate::checkpoint`'s
//! [`FunctionalCursor`]) with short *detailed* windows, each preceded by a
//! detailed warm-up stretch that re-fills what functional warming cannot
//! model (in-flight pipeline state, queue occupancies, MSHR pressure).
//! The per-window CPIs give a mean and a standard error — the error bar
//! the sampled estimate is reported with, in the spirit of Wunderlich et
//! al.'s SMARTS (ISCA 2003) applied to this simulator's budget scale.
//!
//! Sampling is an estimator, not a replacement: the detailed path remains
//! the reference, and `tests/sampling_accuracy.rs` pins the estimator's
//! error against it.

use crate::checkpoint::{
    restore_into, warm_checkpoint, CheckpointStore, FunctionalCursor, WarmMemo,
};
use crate::simulator::RunBudget;
use crate::sweep::Job;
use looseloops_pipeline::{Machine, SimError, SimStats};

/// One interval-sampling schedule: `windows` repetitions of
/// `skip` (functional) → `detail_warmup` (detailed, discarded) →
/// `detail` (detailed, measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPlan {
    /// Number of sampling windows spread across the measured budget.
    pub windows: u32,
    /// Instructions fast-forwarded functionally before each window.
    pub skip: u64,
    /// Detailed instructions run and *discarded* before each measured
    /// window, to refill pipeline/queue state functional warming cannot
    /// represent.
    pub detail_warmup: u64,
    /// Detailed instructions measured per window.
    pub detail: u64,
}

impl SamplingPlan {
    /// A plan scaled to `budget`: 10 windows, each measuring 1/150 of
    /// the budget, preceded by a detailed warm-up of *twice* the window.
    /// In all, a fifth of the measured instructions run in detail (a 5×
    /// reduction); the rest is skipped functionally.
    ///
    /// The heavy warm-up is deliberate: functional warming replays only
    /// the correct path, so restored caches lack the wrong-path fetch
    /// pollution a long detailed run accumulates, and short-warmed
    /// windows read optimistically. Two windows' worth of discarded
    /// detailed execution rebuilds enough of that pollution to bring the
    /// estimate within the error bar of the detailed reference (pinned
    /// by `tests/sampling_accuracy.rs`).
    pub fn for_budget(budget: RunBudget) -> SamplingPlan {
        let windows: u32 = 10;
        let detail = (budget.measure / 150).max(200);
        let detail_warmup = 2 * detail;
        let covered = u64::from(windows) * (detail + detail_warmup);
        let skip = budget.measure.saturating_sub(covered) / u64::from(windows);
        SamplingPlan {
            windows,
            skip,
            detail_warmup,
            detail,
        }
    }

    /// Parse a plan spec: `auto`, or comma-separated `key=value` pairs
    /// with keys `w` (windows), `detail`, `warm`, `skip` — e.g.
    /// `w=10,detail=5000,warm=1000,skip=24000`. Omitted keys start from
    /// [`SamplingPlan::for_budget`]; an omitted `skip` is recomputed so
    /// the schedule spans the measured budget.
    ///
    /// # Errors
    ///
    /// A human-readable message on an unknown key, an unparsable value,
    /// or a degenerate plan (zero windows / zero detail).
    pub fn parse(spec: &str, budget: RunBudget) -> Result<SamplingPlan, String> {
        let mut plan = SamplingPlan::for_budget(budget);
        if spec.trim() == "auto" || spec.trim().is_empty() {
            return Ok(plan);
        }
        let mut skip_given = false;
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected key=value"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("`{part}`: cannot parse `{value}` as an integer"))?;
            match key.trim() {
                "w" | "windows" => {
                    plan.windows =
                        u32::try_from(value).map_err(|_| format!("`{part}`: too many windows"))?;
                }
                "detail" => plan.detail = value,
                "warm" => plan.detail_warmup = value,
                "skip" => {
                    plan.skip = value;
                    skip_given = true;
                }
                other => {
                    return Err(format!(
                        "unknown sampling key `{other}` (expected w, detail, warm, skip)"
                    ))
                }
            }
        }
        if plan.windows == 0 {
            return Err("sampling needs at least one window".into());
        }
        if plan.detail == 0 {
            return Err("sampling needs a non-zero detail window".into());
        }
        if !skip_given {
            let covered = u64::from(plan.windows) * (plan.detail + plan.detail_warmup);
            plan.skip = budget.measure.saturating_sub(covered) / u64::from(plan.windows);
        }
        Ok(plan)
    }

    /// Instructions of the measured budget simulated in detail (warm-up
    /// stretches included) — the numerator of the sampling speedup.
    pub fn detailed_instructions(&self) -> u64 {
        u64::from(self.windows) * (self.detail + self.detail_warmup)
    }
}

/// The outcome of one sampled run: aggregate statistics over the measured
/// windows plus the per-window CPI spread behind the error bar.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Statistics absorbed across every measured window (so `stats.ipc()`
    /// is the instruction-weighted estimate a figure would plot).
    pub stats: SimStats,
    /// CPI of each measured window, in execution order.
    pub window_cpi: Vec<f64>,
}

impl SampledRun {
    /// Mean of the per-window CPIs.
    pub fn cpi_mean(&self) -> f64 {
        let n = self.window_cpi.len().max(1) as f64;
        self.window_cpi.iter().sum::<f64>() / n
    }

    /// Standard error of the per-window CPI mean (0 with fewer than two
    /// windows).
    pub fn cpi_stderr(&self) -> f64 {
        let n = self.window_cpi.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.cpi_mean();
        let var = self
            .window_cpi
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        (var / n as f64).sqrt()
    }

    /// `mean ± k·stderr` rendered for reports.
    pub fn error_bar(&self) -> String {
        format!(
            "CPI {:.4} ± {:.4} ({} windows)",
            self.cpi_mean(),
            self.cpi_stderr(),
            self.window_cpi.len()
        )
    }
}

/// Execute `job` under `plan`: warm up (shared checkpoint), then per
/// window fast-forward functionally and probe with a fresh detailed
/// machine restored from the functional cursor.
///
/// Fewer than `plan.windows` windows are measured when the workload
/// halts; a workload that halts before *any* window is an error (the
/// caller asked for an estimate no window can support).
///
/// # Errors
///
/// Everything the detailed path can report, plus
/// [`SimError::FastForward`] from functional execution or restore.
pub fn run_sampled(
    job: &Job,
    plan: SamplingPlan,
    store: Option<&CheckpointStore>,
    memo: &WarmMemo,
) -> Result<SampledRun, SimError> {
    let cfg = job.workload.config_for(&job.config);
    let programs = job.workload.programs();
    let mut cursor = if job.budget.warmup > 0 {
        let ckpt = warm_checkpoint(job, store, memo)?;
        FunctionalCursor::from_checkpoint(&cfg, programs.clone(), &ckpt)?
    } else {
        FunctionalCursor::new(&cfg, programs.clone())
    };

    let mut agg: Option<SimStats> = None;
    let mut window_cpi = Vec::new();
    for _ in 0..plan.windows {
        cursor.advance(plan.skip)?;
        if cursor.all_halted() {
            break;
        }
        let ckpt = cursor.checkpoint();
        let mut m = Machine::new(cfg.clone(), programs.clone())?;
        restore_into(&mut m, &ckpt)?;
        if plan.detail_warmup > 0 {
            m.run(plan.detail_warmup, job.budget.max_cycles)?;
            m.reset_stats();
        }
        let stats = m.run(plan.detail, job.budget.max_cycles)?.clone();
        if stats.total_retired() > 0 && stats.cycles > 0 {
            window_cpi.push(stats.cycles as f64 / stats.total_retired() as f64);
            match &mut agg {
                None => agg = Some(stats),
                Some(a) => a.absorb(&stats),
            }
        }
        // The cursor independently replays what the detailed probe just
        // simulated, so the next window starts from a consistent
        // functional state (the probe machine is discarded).
        cursor.advance(plan.detail_warmup + plan.detail)?;
    }

    let stats = agg.ok_or_else(|| {
        SimError::FastForward(
            "sampling measured no windows (workload halted before the first one)".into(),
        )
    })?;
    Ok(SampledRun { stats, window_cpi })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> RunBudget {
        RunBudget {
            warmup: 10_000,
            measure: 300_000,
            max_cycles: 20_000_000,
        }
    }

    #[test]
    fn auto_plan_spans_the_budget() {
        let p = SamplingPlan::for_budget(budget());
        assert_eq!(p.windows, 10);
        assert_eq!(p.detail, 2_000);
        assert_eq!(p.detail_warmup, 4_000);
        let span = u64::from(p.windows) * (p.skip + p.detail + p.detail_warmup);
        assert!(span <= 300_000 && span > 290_000, "span {span}");
        assert_eq!(p.detailed_instructions(), 60_000);
    }

    #[test]
    fn parse_overrides_and_rederives_skip() {
        let p = SamplingPlan::parse("w=4,detail=2000", budget()).expect("parse");
        assert_eq!((p.windows, p.detail), (4, 2_000));
        assert_eq!(p.detail_warmup, 4_000, "warm keeps the auto value");
        assert_eq!(p.skip, (300_000 - 4 * 6_000) / 4);
        let q = SamplingPlan::parse("w=2,detail=100,warm=0,skip=7", budget()).expect("parse");
        assert_eq!(
            q,
            SamplingPlan {
                windows: 2,
                skip: 7,
                detail_warmup: 0,
                detail: 100
            }
        );
        assert_eq!(
            SamplingPlan::parse("auto", budget()).unwrap(),
            SamplingPlan::for_budget(budget())
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in ["q=3", "detail", "w=0", "detail=0,w=3", "w=abc"] {
            assert!(SamplingPlan::parse(bad, budget()).is_err(), "{bad}");
        }
    }

    #[test]
    fn stderr_is_zero_for_singletons_and_positive_for_spread() {
        let mk = |cpi: Vec<f64>| SampledRun {
            stats: SimStats::new(1),
            window_cpi: cpi,
        };
        assert_eq!(mk(vec![1.5]).cpi_stderr(), 0.0);
        let run = mk(vec![1.0, 2.0, 3.0]);
        assert!((run.cpi_mean() - 2.0).abs() < 1e-12);
        assert!((run.cpi_stderr() - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(run.error_bar().contains("3 windows"));
    }
}
