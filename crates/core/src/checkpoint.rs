//! Functional warm-up checkpoints: capture, serialization, on-disk store.
//!
//! Detailed warm-up is the dominant cost of a sweep: every job spends
//! `budget.warmup` instructions in the cycle-accurate machine before its
//! measured window begins, and most of that work is identical between
//! jobs — Figure 4 runs four pipeline depths over the same thirteen
//! workloads, and the architectural state plus cache/TLB/predictor warm
//! state after N functional instructions does not depend on pipeline
//! depth at all.
//!
//! This module exploits that: [`FunctionalCursor`] drives the ISA-level
//! interpreter ([`looseloops_isa::fast_forward`]) with a [`Warmer`] that
//! feeds the retired instruction stream into residency-only models of the
//! memory hierarchy, the direction predictor and the BTB. The resulting
//! [`Checkpoint`] — architectural registers + PC per thread, touched
//! memory pages, and the warm microarchitectural state — restores into a
//! fresh [`Machine`] in microseconds, so every sweep point sharing a
//! (memory/predictor config, workload, warm-up) digest pays for warm-up
//! once. [`CheckpointStore`] extends the sharing across processes with a
//! versioned, self-describing on-disk encoding.
//!
//! Functional warm-up is an *approximation* of detailed warm-up: the
//! detailed frontend touches I-cache lines and predictor entries on
//! speculative paths that the functional stream never sees. That is the
//! standard checkpointing trade-off (SMARTS, SimPoint); the sampling
//! driver (`crate::sampling`) quantifies the residual error with per-window
//! CPI error bars, and `--fast-forward` is opt-in — the default detailed
//! path is byte-identical to a simulator without this module.

use crate::experiments::Workload;
use crate::sweep::{fnv1a64, Job};
use looseloops_branch::{build_predictor, Btb, DirectionPredictor};
use looseloops_isa::{fast_forward, ArchState, FlatMemory, Program, Reg, WarmHooks};
use looseloops_mem::{AccessKind, HierarchyWarmState, MemHierarchy};
use looseloops_pipeline::{Machine, PipelineConfig, SimError, SimStats};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Current encoding version. Bumped when a section's payload layout
/// changes incompatibly; unknown *sections* are skipped without a bump.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File magic: "LLCK" (Loose Loops ChecKpoint).
const MAGIC: [u8; 4] = *b"LLCK";

const SEC_META: [u8; 4] = *b"META";
const SEC_THRD: [u8; 4] = *b"THRD";
const SEC_MEMP: [u8; 4] = *b"MEMP";
const SEC_HIER: [u8; 4] = *b"HIER";
const SEC_PRED: [u8; 4] = *b"PRED";
const SEC_BTBS: [u8; 4] = *b"BTBS";

/// Why a checkpoint could not be loaded or stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The file does not start with the `LLCK` magic.
    BadMagic,
    /// The file's version is newer than this binary understands.
    BadVersion(u32),
    /// The encoding ended mid-field (context names the field).
    Truncated(&'static str),
    /// A decoded value is structurally impossible.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(
                    f,
                    "checkpoint version {v} is newer than {CHECKPOINT_VERSION}"
                )
            }
            CheckpointError::Truncated(what) => write!(f, "checkpoint truncated in {what}"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Architectural state of one hardware thread at the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadCheckpoint {
    /// All architectural registers in index order (zero registers read as
    /// 0 and are restored as written).
    pub regs: Vec<u64>,
    /// Program counter (instruction index, the ISA's native PC unit).
    pub pc: u64,
    /// The fetch line the functional front last reported to the warm
    /// hooks ([`looseloops_isa::fastfwd::NO_FETCH_LINE`] when none).
    /// Carried so a resumed cursor reproduces the exact line-entry touch
    /// sequence a whole run would — warm-state bytes stay split-invariant.
    pub last_fetch_line: u64,
    /// Whether the thread has executed `halt`.
    pub halted: bool,
}

/// A machine snapshot after functional warm-up: everything needed to
/// resume detailed simulation as if the warm-up had been simulated.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Instructions actually executed to reach this point (≤ the requested
    /// warm-up when every thread halts early).
    pub instructions: u64,
    /// Per-thread architectural state.
    pub threads: Vec<ThreadCheckpoint>,
    /// Functional data memory (only touched pages are stored).
    pub mem: FlatMemory,
    /// Cache and TLB residency (tags + LRU order, no timing).
    pub hier: HierarchyWarmState,
    /// Direction-predictor tables, in the predictor's own export layout.
    pub predictor: Vec<u64>,
    /// BTB entries, slot-ordered (`u64::MAX` tag marks an empty slot).
    pub btb: Vec<(u64, u64)>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one `tag` + length-prefixed `payload` section.
pub(crate) fn push_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    push_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// One cache's exported warm state: the LRU stamp counter plus
/// `(tag, valid, last_use)` per line, in slot order.
type CacheWarmState = (u64, Vec<(u64, bool, u64)>);

fn encode_cache(out: &mut Vec<u8>, state: &CacheWarmState) {
    push_u64(out, state.0);
    push_u64(out, state.1.len() as u64);
    for &(tag, valid, last_use) in &state.1 {
        push_u64(out, tag);
        out.push(u8::from(valid));
        push_u64(out, last_use);
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        what: &'static str,
    ) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated(what))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A decoded element count, sanity-bounded by what the remaining bytes
    /// could possibly hold (`min_elem_bytes` each) so a corrupt length
    /// cannot drive an absurd allocation.
    pub(crate) fn count(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, CheckpointError> {
        let n = self.u64(what)?;
        let fits = (self.buf.len() - self.pos) / min_elem_bytes.max(1);
        if n as usize > fits {
            return Err(CheckpointError::Corrupt(format!(
                "{what}: count {n} exceeds remaining payload"
            )));
        }
        Ok(n as usize)
    }

    pub(crate) fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn decode_cache(r: &mut Reader<'_>) -> Result<CacheWarmState, CheckpointError> {
    let stamp = r.u64("cache stamp")?;
    let n = r.count(17, "cache lines")?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u64("cache tag")?;
        let valid = r.u8("cache valid")? != 0;
        let last_use = r.u64("cache last_use")?;
        lines.push((tag, valid, last_use));
    }
    Ok((stamp, lines))
}

impl Checkpoint {
    /// Serialize to the on-disk format: magic, version, then
    /// tag-length-payload sections. Readers skip sections they do not
    /// recognize, so new sections can be added without a version bump.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, CHECKPOINT_VERSION);

        let mut meta = Vec::new();
        push_u64(&mut meta, self.instructions);
        push_section(&mut out, SEC_META, &meta);

        let mut thrd = Vec::new();
        push_u64(&mut thrd, self.threads.len() as u64);
        for t in &self.threads {
            push_u64(&mut thrd, t.regs.len() as u64);
            for &r in &t.regs {
                push_u64(&mut thrd, r);
            }
            push_u64(&mut thrd, t.pc);
            push_u64(&mut thrd, t.last_fetch_line);
            thrd.push(u8::from(t.halted));
        }
        push_section(&mut out, SEC_THRD, &thrd);

        let mut memp = Vec::new();
        // FlatMemory's page map has no iteration-order guarantee; sort so
        // the encoding (and thus every stored checkpoint file) is
        // byte-deterministic for identical state.
        let mut pages: Vec<(u64, &[u8; 4096])> = self.mem.pages().collect();
        pages.sort_unstable_by_key(|&(idx, _)| idx);
        push_u64(&mut memp, pages.len() as u64);
        for (idx, bytes) in pages {
            push_u64(&mut memp, idx);
            memp.extend_from_slice(&bytes[..]);
        }
        push_section(&mut out, SEC_MEMP, &memp);

        let mut hier = Vec::new();
        encode_cache(&mut hier, &self.hier.l1i);
        encode_cache(&mut hier, &self.hier.l1d);
        encode_cache(&mut hier, &self.hier.l2);
        push_u64(&mut hier, self.hier.dtlb.0);
        push_u64(&mut hier, self.hier.dtlb.1.len() as u64);
        for &(page, stamp) in &self.hier.dtlb.1 {
            push_u64(&mut hier, page);
            push_u64(&mut hier, stamp);
        }
        push_section(&mut out, SEC_HIER, &hier);

        let mut pred = Vec::new();
        push_u64(&mut pred, self.predictor.len() as u64);
        for &w in &self.predictor {
            push_u64(&mut pred, w);
        }
        push_section(&mut out, SEC_PRED, &pred);

        let mut btbs = Vec::new();
        push_u64(&mut btbs, self.btb.len() as u64);
        for &(tag, target) in &self.btb {
            push_u64(&mut btbs, tag);
            push_u64(&mut btbs, target);
        }
        push_section(&mut out, SEC_BTBS, &btbs);

        out
    }

    /// Parse the on-disk format.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on bad magic, a newer version, truncation, or
    /// structurally impossible values.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader::new(bytes);
        if r.take(4, "magic")? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32("version")?;
        if version > CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }

        let mut ckpt = Checkpoint {
            instructions: 0,
            threads: Vec::new(),
            mem: FlatMemory::new(),
            hier: HierarchyWarmState::default(),
            predictor: Vec::new(),
            btb: Vec::new(),
        };

        while !r.done() {
            let tag: [u8; 4] = r.take(4, "section tag")?.try_into().unwrap();
            let len = r.u64("section length")? as usize;
            let payload = r.take(len, "section payload")?;
            let mut s = Reader::new(payload);
            match tag {
                SEC_META => {
                    ckpt.instructions = s.u64("instructions")?;
                }
                SEC_THRD => {
                    let threads = s.count(25, "thread count")?;
                    for _ in 0..threads {
                        let nregs = s.count(8, "register count")?;
                        let mut regs = Vec::with_capacity(nregs);
                        for _ in 0..nregs {
                            regs.push(s.u64("register")?);
                        }
                        let pc = s.u64("pc")?;
                        let last_fetch_line = s.u64("last fetch line")?;
                        let halted = s.u8("halted")? != 0;
                        ckpt.threads.push(ThreadCheckpoint {
                            regs,
                            pc,
                            last_fetch_line,
                            halted,
                        });
                    }
                }
                SEC_MEMP => {
                    let pages = s.count(8 + 4096, "page count")?;
                    for _ in 0..pages {
                        let idx = s.u64("page index")?;
                        let bytes: &[u8; 4096] = s.take(4096, "page bytes")?.try_into().unwrap();
                        ckpt.mem.install_page(idx, bytes);
                    }
                }
                SEC_HIER => {
                    ckpt.hier.l1i = decode_cache(&mut s)?;
                    ckpt.hier.l1d = decode_cache(&mut s)?;
                    ckpt.hier.l2 = decode_cache(&mut s)?;
                    ckpt.hier.dtlb.0 = s.u64("dtlb stamp")?;
                    let n = s.count(16, "dtlb entries")?;
                    for _ in 0..n {
                        let page = s.u64("dtlb page")?;
                        let stamp = s.u64("dtlb entry stamp")?;
                        ckpt.hier.dtlb.1.push((page, stamp));
                    }
                }
                SEC_PRED => {
                    let n = s.count(8, "predictor words")?;
                    for _ in 0..n {
                        ckpt.predictor.push(s.u64("predictor word")?);
                    }
                }
                SEC_BTBS => {
                    let n = s.count(16, "btb entries")?;
                    for _ in 0..n {
                        let tag = s.u64("btb tag")?;
                        let target = s.u64("btb target")?;
                        ckpt.btb.push((tag, target));
                    }
                }
                // Forward compatibility: a section this binary does not
                // know is skipped, not fatal.
                _ => {}
            }
        }
        Ok(ckpt)
    }
}

// ---------------------------------------------------------------------------
// On-disk store
// ---------------------------------------------------------------------------

/// A directory of checkpoints keyed by [`warm_digest`]. Saves are
/// write-to-temporary-then-rename, so concurrent processes sharing a
/// store never observe a half-written file.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| CheckpointError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir })
    }

    /// The file a digest maps to.
    pub fn path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.llck"))
    }

    /// Load the checkpoint for `digest`; `Ok(None)` when none is stored.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on an unreadable or undecodable file (callers
    /// treat that as a miss and regenerate).
    pub fn load(&self, digest: u64) -> Result<Option<Checkpoint>, CheckpointError> {
        let path = self.path(digest);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(format!("read {}: {e}", path.display()))),
        };
        Checkpoint::decode(&bytes).map(Some)
    }

    /// Store `ckpt` under `digest` (atomic replace).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the temporary cannot be written or
    /// renamed into place.
    pub fn save(&self, digest: u64, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        // The temp name must be unique per *writer*, not per process: two
        // sweep workers capturing the same digest used to share one
        // `.tmp.<pid>` file and could rename a torn checkpoint into place.
        // `atomic_write` disambiguates with a per-process counter.
        let path = self.path(digest);
        crate::store::atomic_write(&path, &ckpt.encode())
            .map_err(|e| CheckpointError::Io(format!("write {}: {e}", path.display())))
    }
}

/// Stable digest of everything the warm state after functional warm-up
/// depends on: the encoding version, the memory-hierarchy / predictor /
/// BTB configuration, the workload, and the warm-up length. Pipeline
/// depths, queue sizes and register schemes deliberately do **not**
/// participate — functional warm-up never consults them, which is exactly
/// why one checkpoint serves every machine of a depth sweep.
pub fn warm_digest(cfg: &PipelineConfig, workload: &Workload, warmup: u64) -> u64 {
    let key = format!(
        "llck-v{CHECKPOINT_VERSION}|mem={:?}|pred={:?}|btb={}|{workload:?}|warmup={warmup}",
        cfg.mem, cfg.predictor, cfg.btb_entries
    );
    fnv1a64(key.as_bytes())
}

// ---------------------------------------------------------------------------
// Functional warm-up
// ---------------------------------------------------------------------------

/// [`WarmHooks`] sink that feeds the retired stream into residency-only
/// warm models: cache/TLB tag arrays, the direction predictor's
/// architectural history, and the BTB.
pub struct Warmer {
    /// Timing directories, used for residency only (`warm_access`).
    pub hier: MemHierarchy,
    /// Direction predictor, trained on the architectural outcome stream.
    pub pred: Box<dyn DirectionPredictor>,
    /// Branch target buffer, updated on taken jumps exactly as retire does.
    pub btb: Btb,
}

impl Warmer {
    /// Cold warm models matching `cfg`'s hierarchy/predictor/BTB geometry.
    pub fn for_config(cfg: &PipelineConfig) -> Warmer {
        Warmer {
            hier: MemHierarchy::new(cfg.mem),
            pred: build_predictor(cfg.predictor),
            btb: Btb::new(cfg.btb_entries),
        }
    }

    /// Warm models pre-loaded from a checkpoint's exported state.
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] when the checkpoint's geometry does not
    /// match `cfg`.
    pub fn from_checkpoint(cfg: &PipelineConfig, ckpt: &Checkpoint) -> Result<Warmer, SimError> {
        let mut w = Warmer::for_config(cfg);
        w.hier
            .import_warm(&ckpt.hier)
            .map_err(SimError::FastForward)?;
        w.pred
            .import_state(&ckpt.predictor)
            .map_err(SimError::FastForward)?;
        w.btb
            .import_state(&ckpt.btb)
            .map_err(SimError::FastForward)?;
        Ok(w)
    }
}

impl WarmHooks for Warmer {
    fn warm_fetch(&mut self, line_addr: u64) {
        self.hier.warm_access(AccessKind::InstFetch, line_addr);
    }

    fn warm_data(&mut self, addr: u64, is_write: bool) {
        let kind = if is_write {
            AccessKind::DataWrite
        } else {
            AccessKind::DataRead
        };
        self.hier.warm_access(kind, addr);
    }

    fn warm_branch(&mut self, pc: u64, taken: bool) {
        self.pred.update(pc, taken);
    }

    fn warm_jump(&mut self, pc: u64, target: u64) {
        self.btb.update(pc, target);
    }
}

/// Round-robin chunk size: threads of an SMT pair advance in 128-instruction
/// slices so a pair's warm state interleaves both threads' footprints, as
/// the detailed machine's shared caches would see them.
const INTERLEAVE_CHUNK: u64 = 128;

/// A resumable functional execution front: architectural state + memory +
/// warm models, advanced by the ISA interpreter without any pipeline
/// machinery. Used both to build checkpoints and, by the sampling driver,
/// to skip between detailed windows.
pub struct FunctionalCursor {
    programs: Vec<Program>,
    states: Vec<ArchState>,
    /// Per-thread fetch-line memo for [`fast_forward`]'s line-granular
    /// warming; persisted across chunks (and checkpoints) so the touch
    /// sequence never depends on where execution was sliced.
    last_lines: Vec<u64>,
    mem: FlatMemory,
    warmer: Warmer,
    executed: u64,
}

impl FunctionalCursor {
    /// A cursor at the entry point of `programs` with cold warm state.
    /// Memory is initialized exactly as [`Machine::new`] initializes its
    /// functional memory: every program's init data loaded into one flat
    /// space (workloads use disjoint address ranges).
    pub fn new(cfg: &PipelineConfig, programs: Vec<Program>) -> FunctionalCursor {
        let states: Vec<ArchState> = programs.iter().map(ArchState::new).collect();
        let mut mem = FlatMemory::new();
        for p in &programs {
            mem.load_init_data(p);
        }
        let last_lines = vec![looseloops_isa::fastfwd::NO_FETCH_LINE; programs.len()];
        FunctionalCursor {
            programs,
            states,
            last_lines,
            mem,
            warmer: Warmer::for_config(cfg),
            executed: 0,
        }
    }

    /// A cursor resuming from `ckpt` (threads, memory, warm state).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] on a thread-count or geometry mismatch.
    pub fn from_checkpoint(
        cfg: &PipelineConfig,
        programs: Vec<Program>,
        ckpt: &Checkpoint,
    ) -> Result<FunctionalCursor, SimError> {
        if ckpt.threads.len() != programs.len() {
            return Err(SimError::FastForward(format!(
                "checkpoint has {} thread(s), workload has {}",
                ckpt.threads.len(),
                programs.len()
            )));
        }
        let mut states = Vec::with_capacity(programs.len());
        for (prog, t) in programs.iter().zip(&ckpt.threads) {
            let mut st = ArchState::new(prog);
            for (idx, &v) in t.regs.iter().enumerate() {
                let idx = u8::try_from(idx).map_err(|_| {
                    SimError::FastForward(format!("register index {idx} out of range"))
                })?;
                st.write_reg(Reg::from_index(idx), v);
            }
            st.set_pc(t.pc);
            st.set_halted(t.halted);
            states.push(st);
        }
        let last_lines = ckpt.threads.iter().map(|t| t.last_fetch_line).collect();
        Ok(FunctionalCursor {
            programs,
            states,
            last_lines,
            mem: ckpt.mem.clone(),
            warmer: Warmer::from_checkpoint(cfg, ckpt)?,
            executed: ckpt.instructions,
        })
    }

    /// Total instructions executed through this cursor (including any the
    /// originating checkpoint already carried).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// True once every thread has executed `halt`.
    pub fn all_halted(&self) -> bool {
        self.states.iter().all(ArchState::is_halted)
    }

    /// Advance by up to `instructions` (summed over threads, interleaved
    /// in [`INTERLEAVE_CHUNK`] slices); returns how many actually executed
    /// (less only when every live thread halts).
    ///
    /// # Errors
    ///
    /// [`SimError::FastForward`] wrapping any functional execution fault.
    pub fn advance(&mut self, instructions: u64) -> Result<u64, SimError> {
        let mut remaining = instructions;
        while remaining > 0 && !self.all_halted() {
            for t in 0..self.states.len() {
                if remaining == 0 || self.states[t].is_halted() {
                    continue;
                }
                let chunk = remaining.min(INTERLEAVE_CHUNK);
                let ran = fast_forward(
                    &mut self.states[t],
                    &self.programs[t],
                    &mut self.mem,
                    chunk,
                    &mut self.warmer,
                    &mut self.last_lines[t],
                )
                .map_err(|e| SimError::FastForward(e.to_string()))?;
                remaining -= ran;
                self.executed += ran;
            }
        }
        Ok(instructions - remaining)
    }

    /// Snapshot the cursor into a [`Checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        let threads = self
            .states
            .iter()
            .zip(&self.last_lines)
            .map(|(st, &last_fetch_line)| ThreadCheckpoint {
                regs: (0..looseloops_isa::reg::NUM_ARCH_REGS)
                    .map(|i| st.read_reg(Reg::from_index(i)))
                    .collect(),
                pc: st.pc(),
                last_fetch_line,
                halted: st.is_halted(),
            })
            .collect();
        Checkpoint {
            instructions: self.executed,
            threads,
            mem: self.mem.clone(),
            hier: self.warmer.hier.export_warm(),
            predictor: self.warmer.pred.export_state(),
            btb: self.warmer.btb.export_state(),
        }
    }
}

/// Functionally execute `warmup` instructions of `programs` under `cfg`'s
/// warm-relevant configuration and snapshot the result.
///
/// # Errors
///
/// [`SimError::FastForward`] wrapping any functional execution fault.
pub fn capture_checkpoint(
    cfg: &PipelineConfig,
    programs: Vec<Program>,
    warmup: u64,
) -> Result<Checkpoint, SimError> {
    let mut cursor = FunctionalCursor::new(cfg, programs);
    cursor.advance(warmup)?;
    Ok(cursor.checkpoint())
}

/// Install `ckpt` into a freshly constructed machine: architectural
/// registers and PCs, functional memory, and the warm cache/TLB/predictor/
/// BTB state. The machine then simulates as if it had just finished a
/// warm-up run (modulo the functional-warm-up approximation).
///
/// # Errors
///
/// [`SimError::FastForward`] when the machine is not fresh, or the
/// checkpoint's thread count or structure geometry does not match.
pub fn restore_into(m: &mut Machine, ckpt: &Checkpoint) -> Result<(), SimError> {
    if ckpt.threads.len() != m.config().threads {
        return Err(SimError::FastForward(format!(
            "checkpoint has {} thread(s), machine has {}",
            ckpt.threads.len(),
            m.config().threads
        )));
    }
    for (t, th) in ckpt.threads.iter().enumerate() {
        m.restore_thread_state(t, &th.regs, th.pc, th.halted)?;
    }
    m.replace_data_mem(ckpt.mem.clone());
    m.install_warm_hierarchy(&ckpt.hier)?;
    m.install_warm_predictor(&ckpt.predictor)?;
    m.install_warm_btb(&ckpt.btb)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

type WarmCell = Arc<OnceLock<Result<Arc<Checkpoint>, SimError>>>;

/// In-memory checkpoint cache shared by one engine's workers, keyed by
/// [`warm_digest`]. Each digest gets a `OnceLock`, so concurrent jobs that
/// share a warm prefix block on one capture instead of racing to repeat
/// it.
#[derive(Default)]
pub struct WarmMemo {
    cells: Mutex<HashMap<u64, WarmCell>>,
}

impl WarmMemo {
    fn cell(&self, digest: u64) -> WarmCell {
        // Poison recovery: the map is only ever inserted into under the
        // lock, so a panic elsewhere in a worker leaves it structurally
        // intact — take the inner value and keep serving (satellite
        // bugfix; see `crate::sweep::lock_clean`).
        Arc::clone(
            crate::sweep::lock_clean(&self.cells)
                .entry(digest)
                .or_default(),
        )
    }
}

/// The warm checkpoint for `job`: answered from the in-memory memo, then
/// the on-disk store, then captured by functional execution (and saved
/// back to the store, best-effort).
///
/// # Errors
///
/// [`SimError::FastForward`] wrapping any functional execution fault.
pub fn warm_checkpoint(
    job: &Job,
    store: Option<&CheckpointStore>,
    memo: &WarmMemo,
) -> Result<Arc<Checkpoint>, SimError> {
    let cfg = job.workload.config_for(&job.config);
    let digest = warm_digest(&cfg, &job.workload, job.budget.warmup);
    let cell = memo.cell(digest);
    cell.get_or_init(|| {
        if let Some(s) = store {
            match s.load(digest) {
                Ok(Some(ckpt)) => return Ok(Arc::new(ckpt)),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("warning: checkpoint {digest:016x}: {e}; regenerating");
                }
            }
        }
        let ckpt = capture_checkpoint(&cfg, job.workload.programs(), job.budget.warmup)?;
        if let Some(s) = store {
            if let Err(e) = s.save(digest, &ckpt) {
                eprintln!("warning: cannot save checkpoint {digest:016x}: {e}");
            }
        }
        Ok(Arc::new(ckpt))
    })
    .clone()
}

/// Execute `job` in fast-forward mode: functional warm-up (via the shared
/// checkpoint) followed by a full detailed measured window.
///
/// # Errors
///
/// Everything the detailed path can report, plus
/// [`SimError::FastForward`] from warm-up or restore.
pub fn run_fast_forwarded(
    job: &Job,
    store: Option<&CheckpointStore>,
    memo: &WarmMemo,
) -> Result<SimStats, SimError> {
    let cfg = job.workload.config_for(&job.config);
    let mut m = Machine::new(cfg, job.workload.programs())?;
    if job.budget.warmup > 0 {
        let ckpt = warm_checkpoint(job, store, memo)?;
        restore_into(&mut m, &ckpt)?;
    }
    Ok(m.run(job.budget.measure, job.budget.max_cycles)?.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_workload::Benchmark;

    fn ckpt_for(bench: Benchmark, warmup: u64) -> Checkpoint {
        let cfg = PipelineConfig::base();
        capture_checkpoint(&cfg, vec![bench.program()], warmup).expect("capture")
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = ckpt_for(Benchmark::Compress, 5_000);
        assert_eq!(ckpt.instructions, 5_000);
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes).expect("decode");
        // FlatMemory has no PartialEq; byte-level equality of the
        // re-encoding covers every section including memory pages.
        assert_eq!(bytes, back.encode());
        assert_eq!(ckpt.threads, back.threads);
        assert_eq!(ckpt.hier, back.hier);
        assert_eq!(ckpt.predictor, back.predictor);
        assert_eq!(ckpt.btb, back.btb);
    }

    #[test]
    fn corrupt_encodings_are_rejected_not_panicked() {
        let bytes = ckpt_for(Benchmark::Go, 1_000).encode();
        assert_eq!(
            Checkpoint::decode(b"NOPE").unwrap_err(),
            CheckpointError::BadMagic
        );
        // Truncation at every prefix length must yield an error, never a
        // panic or a silently partial checkpoint that still decodes as
        // complete.
        for cut in [3, 7, 9, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A future version is refused rather than misread.
        let mut newer = bytes.clone();
        newer[4..8].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&newer).unwrap_err(),
            CheckpointError::BadVersion(CHECKPOINT_VERSION + 1)
        );
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let ckpt = ckpt_for(Benchmark::Compress, 500);
        let mut bytes = ckpt.encode();
        push_section(&mut bytes, *b"ZZZZ", &[1, 2, 3, 4]);
        let back = Checkpoint::decode(&bytes).expect("unknown section skipped");
        assert_eq!(back.threads, ckpt.threads);
        assert_eq!(back.instructions, ckpt.instructions);
    }

    #[test]
    fn store_round_trips_and_misses_cleanly() {
        let dir = std::env::temp_dir().join(format!("llck-test-{}", std::process::id()));
        let store = CheckpointStore::open(&dir).expect("open");
        let ckpt = ckpt_for(Benchmark::Swim, 2_000);
        assert!(store.load(42).expect("miss is not an error").is_none());
        store.save(42, &ckpt).expect("save");
        let back = store.load(42).expect("load").expect("present");
        assert_eq!(back.encode(), ckpt.encode());
        // A corrupt file surfaces as an error the caller regenerates from.
        std::fs::write(store.path(43), b"LLCKgarbage").unwrap();
        assert!(store.load(43).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racing_saves_on_one_digest_never_publish_a_torn_checkpoint() {
        // Regression: the temp path used to be digest + pid only, so two
        // same-process workers saving the same digest shared one temp file
        // and could rename a torn mix into place.
        let dir = std::env::temp_dir().join(format!("llck-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("open");
        // Distinguishable checkpoints of identical provenance shape: vary
        // the warm-up so each encodes to different bytes.
        let checkpoints: Vec<Checkpoint> = (1..=4)
            .map(|i| ckpt_for(Benchmark::Compress, i * 500))
            .collect();
        let encodings: Vec<Vec<u8>> = checkpoints.iter().map(Checkpoint::encode).collect();
        std::thread::scope(|s| {
            for ckpt in &checkpoints {
                s.spawn(|| {
                    for _ in 0..25 {
                        store.save(7, ckpt).expect("save");
                        // Every concurrent load sees a complete entry.
                        let seen = store.load(7).expect("never torn").expect("present");
                        assert!(encodings.contains(&seen.encode()), "torn checkpoint");
                    }
                });
            }
        });
        let last = store.load(7).expect("load").expect("present");
        assert!(encodings.contains(&last.encode()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_digest_ignores_pipeline_depth_but_not_warm_geometry() {
        let w = Workload::Single(Benchmark::Compress);
        let a = warm_digest(&PipelineConfig::base_with_latencies(3, 3), &w, 10_000);
        let b = warm_digest(&PipelineConfig::base_with_latencies(9, 9), &w, 10_000);
        assert_eq!(a, b, "depth sweeps share one checkpoint");
        let dra = warm_digest(&PipelineConfig::dra_for_rf(5), &w, 10_000);
        assert_eq!(a, dra, "register scheme does not affect warm state");
        let mut small_btb = PipelineConfig::base();
        small_btb.btb_entries = 64;
        assert_ne!(a, warm_digest(&small_btb, &w, 10_000));
        assert_ne!(a, warm_digest(&PipelineConfig::base(), &w, 20_000));
        assert_ne!(
            a,
            warm_digest(
                &PipelineConfig::base(),
                &Workload::Single(Benchmark::Go),
                10_000
            )
        );
    }

    #[test]
    fn restore_resumes_exactly_where_functional_execution_stopped() {
        // Functional FF for N instructions, restore into a machine, run:
        // the machine's first retired instruction must be the functional
        // successor (checked via the machine's own oracle verification).
        let cfg = PipelineConfig::base();
        let ckpt = ckpt_for(Benchmark::M88ksim, 3_000);
        let mut m = Machine::new(cfg.smt(1), vec![Benchmark::M88ksim.program()]).expect("machine");
        restore_into(&mut m, &ckpt).expect("restore");
        m.enable_verification();
        let stats = m.run(5_000, 2_000_000).expect("run after restore");
        assert!(stats.total_retired() >= 5_000);
    }

    #[test]
    fn cursor_resumes_from_checkpoint_equivalently() {
        // One continuous 8k-instruction cursor == 3k cursor -> checkpoint
        // -> resumed cursor for 5k more. Warm state and arch state agree.
        let cfg = PipelineConfig::base();
        let prog = vec![Benchmark::Compress.program()];
        let mut whole = FunctionalCursor::new(&cfg, prog.clone());
        whole.advance(8_000).expect("whole");
        let ckpt = capture_checkpoint(&cfg, prog.clone(), 3_000).expect("prefix");
        let mut resumed = FunctionalCursor::from_checkpoint(&cfg, prog, &ckpt).expect("resume");
        resumed.advance(5_000).expect("tail");
        assert_eq!(resumed.executed(), 8_000);
        assert_eq!(whole.checkpoint().encode(), resumed.checkpoint().encode());
    }
}
