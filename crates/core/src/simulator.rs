//! High-level simulation driver: warm-up + measurement runs.
//!
//! The paper warms the simulator before measuring ("warm up the simulator
//! for 1 to 2 million instructions, and simulate each benchmark from 90 to
//! 200 million instructions"); [`RunBudget`] scales that protocol to
//! whatever budget the caller can afford — figure benches use hundreds of
//! thousands of instructions, tests use thousands.

use looseloops_isa::Program;
use looseloops_pipeline::{Machine, PipelineConfig, SimError, SimStats};
use looseloops_workload::{Benchmark, SmtPair};

/// Instruction/cycle budget for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Instructions to retire before statistics are reset (cache/predictor
    /// warm-up).
    pub warmup: u64,
    /// Instructions to retire in the measured window.
    pub measure: u64,
    /// Hard cycle ceiling (guards against pathological configurations).
    pub max_cycles: u64,
}

impl RunBudget {
    /// A budget suitable for the bundled figure benches: 50k warm-up,
    /// 300k measured instructions.
    pub fn bench() -> RunBudget {
        RunBudget {
            warmup: 50_000,
            measure: 300_000,
            max_cycles: 20_000_000,
        }
    }

    /// A small budget for tests.
    pub fn test() -> RunBudget {
        RunBudget {
            warmup: 2_000,
            measure: 20_000,
            max_cycles: 2_000_000,
        }
    }
}

impl Default for RunBudget {
    fn default() -> RunBudget {
        RunBudget::bench()
    }
}

/// Run `programs` (one per configured thread) under `cfg`: warm up, reset
/// statistics, measure. Returns the measured-window statistics.
///
/// # Errors
///
/// Everything [`Machine::new`] and [`Machine::run`] can report: an invalid
/// configuration, a mismatched program count, a deadlock, or (with
/// `cfg.audit`) an invariant violation.
pub fn try_run_programs(
    cfg: &PipelineConfig,
    programs: Vec<Program>,
    budget: RunBudget,
) -> Result<SimStats, SimError> {
    let mut m = Machine::new(cfg.clone(), programs)?;
    if budget.warmup > 0 {
        m.run(budget.warmup, budget.max_cycles)?;
        m.reset_stats();
    }
    Ok(m.run(budget.measure, budget.max_cycles)?.clone())
}

/// Run a single-threaded benchmark proxy.
///
/// # Errors
///
/// As [`try_run_programs`]; a non-single-threaded `cfg` surfaces as
/// [`SimError::ProgramCount`].
pub fn try_run_benchmark(
    cfg: &PipelineConfig,
    bench: Benchmark,
    budget: RunBudget,
) -> Result<SimStats, SimError> {
    try_run_programs(cfg, vec![bench.program()], budget)
}

/// Run one of the paper's SMT pairs.
///
/// # Errors
///
/// As [`try_run_programs`]; a non-two-threaded `cfg` surfaces as
/// [`SimError::ProgramCount`].
pub fn try_run_pair(
    cfg: &PipelineConfig,
    pair: SmtPair,
    budget: RunBudget,
) -> Result<SimStats, SimError> {
    try_run_programs(cfg, pair.programs(), budget)
}

/// [`try_run_programs`] for infallible contexts (benches, examples).
///
/// # Panics
///
/// Panics on any [`SimError`].
pub fn run_programs(cfg: &PipelineConfig, programs: Vec<Program>, budget: RunBudget) -> SimStats {
    try_run_programs(cfg, programs, budget).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run_benchmark`] for infallible contexts.
///
/// # Panics
///
/// Panics on any [`SimError`], including `cfg.threads != 1`.
pub fn run_benchmark(cfg: &PipelineConfig, bench: Benchmark, budget: RunBudget) -> SimStats {
    try_run_benchmark(cfg, bench, budget).unwrap_or_else(|e| panic!("{e}"))
}

/// [`try_run_pair`] for infallible contexts.
///
/// # Panics
///
/// Panics on any [`SimError`], including `cfg.threads != 2`.
pub fn run_pair(cfg: &PipelineConfig, pair: SmtPair, budget: RunBudget) -> SimStats {
    try_run_pair(cfg, pair, budget).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_pipeline::PipelineConfig;

    #[test]
    fn warmup_is_excluded_from_measurement() {
        let budget = RunBudget {
            warmup: 5_000,
            measure: 10_000,
            max_cycles: 5_000_000,
        };
        let stats = run_benchmark(&PipelineConfig::base(), Benchmark::M88ksim, budget);
        // Retired count reflects only the measured window (within the
        // retire-width granularity of the run loop).
        assert!(stats.total_retired() >= 10_000);
        assert!(stats.total_retired() < 10_100);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn smt_pair_runs_both_threads() {
        let stats = run_pair(
            &PipelineConfig::base().smt(2),
            looseloops_workload::Benchmark::pairs()[0],
            RunBudget::test(),
        );
        assert!(stats.retired[0] > 0);
        assert!(stats.retired[1] > 0);
    }

    #[test]
    #[should_panic]
    fn thread_count_mismatch_panics() {
        let _ = run_benchmark(
            &PipelineConfig::base().smt(2),
            Benchmark::Go,
            RunBudget::test(),
        );
    }

    #[test]
    fn thread_count_mismatch_is_typed() {
        let err = try_run_benchmark(
            &PipelineConfig::base().smt(2),
            Benchmark::Go,
            RunBudget::test(),
        )
        .expect_err("2-thread config with one program");
        assert!(matches!(
            err,
            SimError::ProgramCount {
                expected: 2,
                got: 1
            }
        ));
    }
}
