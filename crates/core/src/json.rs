//! A minimal JSON reader (and the writer-side escaper re-exported from
//! [`crate::report`]).
//!
//! The workspace is dependency-free, so the `looseloops serve` protocol
//! cannot lean on serde: requests and replies are newline-delimited JSON
//! built with the hand-rolled writer in `report.rs` and read back with
//! this recursive-descent parser. The parser is strict RFC 8259 on
//! structure (no trailing commas, no comments), accepts the full escape
//! set including surrogate pairs, and bounds recursion depth so a hostile
//! client cannot blow the server's stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects keep insertion order irrelevant —
/// lookups go through [`JsonValue::get`] — and numbers are `f64`, which
/// covers every value the serve protocol exchanges.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member `key` of an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Why a parse failed: a message and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn structures_and_accessors() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "n": null, "f": 2.5}"#).unwrap();
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn escapes_round_trip_through_the_writer() {
        // The serve protocol writes with report::json_escape and reads
        // with this parser; every escape class must survive the loop.
        let nasty = "line\nbreak\ttab \"quote\" back\\slash \u{1} control \u{1F600} emoji";
        let written = crate::report::json_escape(nasty);
        let back = parse(&written).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "unpaired low surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "bad low half");
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\u{1}\"",
            "[1] tail",
            "nul",
            "\"unterminated",
            "{1: 2}",
        ] {
            let e = parse(bad).unwrap_err();
            assert!(e.offset <= bad.len(), "{bad:?}: {e}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"));
        // At or under the limit parses fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }
}
