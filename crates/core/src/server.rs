//! `looseloops serve` — a long-lived job server in front of one shared
//! [`SweepEngine`].
//!
//! Clients connect over TCP and speak newline-delimited JSON: one request
//! per line in, one event per line out. A request names a figure grid
//! ([`FigureSpec::for_id`]); the server runs the grid on its engine and
//! streams the rendered figure (and optionally its per-loop CPI stacks)
//! back, followed by a per-request summary. Because every client shares
//! the engine — and, when configured, its on-disk
//! [`ResultStore`](crate::store::ResultStore) — overlapping grids from
//! different clients simulate once.
//!
//! Three layers of reuse, from fastest to slowest:
//!
//! 1. the engine's in-memory memo cache (finished runs),
//! 2. the **in-flight table** in this module: a job currently simulating
//!    for one client is *joined*, not re-submitted, by every other client
//!    that needs it (`dedup hits` in the summary),
//! 3. the on-disk result store shared with batch runs.
//!
//! The wire format reuses the repo's dependency-free JSON story:
//! [`crate::report::json_escape`] writes, [`crate::json::parse`] reads.
//!
//! ## Protocol (version 1)
//!
//! ```text
//! server → {"event":"hello","version":1,"workers":N}
//! client → {"cmd":"figure","id":"fig4","warmup":1000,"measure":5000,
//!           "workloads":["compress","swim"],"stacks":true}
//! server → {"event":"figure","figure":{...}}          (FigureResult JSON)
//! server → {"event":"stacks","stacks":{...}}          (only with "stacks")
//! server → {"event":"summary","jobs_requested":J,"jobs_run":R,
//!           "cache_hits":C,"store_hits":S,"dedup_hits":D,"line":"..."}
//! server → {"event":"done","id":"fig4"}
//! client → {"cmd":"shutdown"}                          (stops the server)
//! server → {"event":"done","id":"shutdown"}
//! ```
//!
//! Any failure becomes `{"event":"error","message":"..."}`; the
//! connection stays usable for the next request.

use crate::experiments::{FigureSpec, Workload};
use crate::json::{parse, JsonValue};
use crate::report::{json_escape, CpiStackReport, CpiStackRow, FigureResult, Series};
use crate::simulator::RunBudget;
use crate::sweep::{lock_clean, SweepEngine};
use looseloops_pipeline::SimStats;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Wire-protocol version, announced in the `hello` event. Bump on any
/// incompatible change to the request or event shapes.
pub const PROTOCOL_VERSION: u32 = 1;

/// The budget a request runs at when it gives no budget fields — the
/// same numbers as the CLI's `figure --smoke`.
fn smoke_budget() -> RunBudget {
    RunBudget {
        warmup: 1_000,
        measure: 5_000,
        max_cycles: 2_000_000,
    }
}

/// One job's completion slot in the in-flight table. The owner (the
/// connection that got there first) fills it and notifies; joiners block
/// on [`JobCell::wait`].
struct JobCell {
    slot: Mutex<Option<Result<Arc<SimStats>, String>>>,
    cv: Condvar,
}

impl JobCell {
    fn new() -> JobCell {
        JobCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<Arc<SimStats>, String>) {
        *lock_clean(&self.slot) = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<SimStats>, String> {
        let mut guard = lock_clean(&self.slot);
        loop {
            if let Some(r) = guard.as_ref() {
                return r.clone();
            }
            guard = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A counting semaphore bounding how many requests execute grids at
/// once. Connections over the cap block *before* enqueuing work — the
/// backpressure surfaces to clients as a stalled response, and to the
/// OS as an unread socket.
struct Gate {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Gate {
    fn new(permits: usize) -> Gate {
        Gate {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = lock_clean(&self.permits);
        while *p == 0 {
            p = self.cv.wait(p).unwrap_or_else(PoisonError::into_inner);
        }
        *p -= 1;
    }

    fn release(&self) {
        *lock_clean(&self.permits) += 1;
        self.cv.notify_one();
    }
}

/// State shared by every connection thread.
struct Shared {
    engine: SweepEngine,
    inflight: Mutex<HashMap<String, Arc<JobCell>>>,
    gate: Gate,
    shutdown: AtomicBool,
    dedup_hits: AtomicU64,
}

/// Engine-counter snapshot used to report per-request deltas: the engine
/// is shared and long-lived, but each client wants to know what *its*
/// request cost.
#[derive(Clone, Copy)]
struct Counters {
    jobs_requested: u64,
    jobs_run: u64,
    cache_hits: u64,
    store_hits: u64,
}

impl Counters {
    fn of(engine: &SweepEngine) -> Counters {
        let s = engine.summary();
        Counters {
            jobs_requested: s.jobs_requested,
            jobs_run: s.jobs_run,
            cache_hits: s.cache_hits,
            store_hits: s.store_hits,
        }
    }
}

/// A bound `looseloops serve` daemon: one shared [`SweepEngine`], an
/// in-flight dedup table, and a bounded execution gate.
pub struct JobServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl JobServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) in front
    /// of `engine`. `queue_cap` bounds concurrently *executing* requests;
    /// further requests block until a slot frees (clamped to ≥ 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: SweepEngine,
        queue_cap: usize,
    ) -> io::Result<JobServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(JobServer {
            listener,
            shared: Arc::new(Shared {
                engine,
                inflight: Mutex::new(HashMap::new()),
                gate: Gate::new(queue_cap),
                shutdown: AtomicBool::new(false),
                dedup_hits: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until a client sends
    /// `{"cmd":"shutdown"}`. Every connection runs on its own thread;
    /// `run` joins them all before returning, so in-flight requests
    /// finish cleanly.
    pub fn run(self) -> io::Result<()> {
        // Non-blocking accept + sleep so the loop can observe shutdown;
        // std's TcpListener has no accept timeout.
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || {
                        if let Err(e) = handle_connection(stream, &shared) {
                            eprintln!("[serve] connection error: {e}");
                        }
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

fn send(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn send_error(stream: &mut TcpStream, message: &str) -> io::Result<()> {
    send(
        stream,
        &format!(
            "{{\"event\":\"error\",\"message\":{}}}",
            json_escape(message)
        ),
    )
}

/// Collapse the repo's pretty-printed JSON onto one NDJSON line. Safe
/// because [`json_escape`] never emits a raw newline inside a string —
/// the only `\n` bytes in the rendering are inter-token whitespace.
fn compact(pretty: &str) -> String {
    pretty.replace('\n', " ")
}

/// Read one `\n`-terminated line, polling `shutdown` between short read
/// timeouts so connection threads exit promptly when the server stops.
/// `Ok(None)` on EOF or shutdown.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                return Ok(if line.trim().is_empty() {
                    None
                } else {
                    Some(line)
                })
            }
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(Some(line));
                }
                // Timed out mid-line: keep accumulating.
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll: check shutdown and wait for more bytes.
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut out = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    send(
        &mut out,
        &format!(
            "{{\"event\":\"hello\",\"version\":{PROTOCOL_VERSION},\"workers\":{}}}",
            shared.engine.workers()
        ),
    )?;
    while let Some(line) = read_request(&mut reader, &shared.shutdown)? {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                send_error(&mut out, &format!("bad request: {e}"))?;
                continue;
            }
        };
        match req.get("cmd").and_then(JsonValue::as_str) {
            Some("figure") => handle_figure(&mut out, shared, &req)?,
            Some("shutdown") => {
                shared.shutdown.store(true, Ordering::SeqCst);
                send(&mut out, "{\"event\":\"done\",\"id\":\"shutdown\"}")?;
                return Ok(());
            }
            Some(other) => send_error(&mut out, &format!("unknown cmd `{other}`"))?,
            None => send_error(&mut out, "request needs a string `cmd` field")?,
        }
    }
    Ok(())
}

/// Parse a request's optional workload list against the paper set.
fn workloads_from_request(req: &JsonValue) -> Result<Vec<Workload>, String> {
    let Some(names) = req.get("workloads").and_then(JsonValue::as_array) else {
        return Ok(Workload::paper_set());
    };
    names
        .iter()
        .map(|n| {
            let name = n
                .as_str()
                .ok_or_else(|| "workloads must be strings".to_string())?;
            Workload::paper_set()
                .into_iter()
                .find(|w| w.name() == name)
                .ok_or_else(|| format!("unknown workload `{name}`"))
        })
        .collect()
}

fn budget_from_request(req: &JsonValue) -> RunBudget {
    let mut b = smoke_budget();
    if let Some(v) = req.get("warmup").and_then(JsonValue::as_u64) {
        b.warmup = v;
    }
    if let Some(v) = req.get("measure").and_then(JsonValue::as_u64) {
        b.measure = v;
    }
    if let Some(v) = req.get("max_cycles").and_then(JsonValue::as_u64) {
        b.max_cycles = v;
    }
    b
}

fn handle_figure(out: &mut TcpStream, shared: &Shared, req: &JsonValue) -> io::Result<()> {
    let Some(id) = req.get("id").and_then(JsonValue::as_str) else {
        return send_error(out, "figure request needs a string `id` field");
    };
    let workloads = match workloads_from_request(req) {
        Ok(w) => w,
        Err(msg) => return send_error(out, &msg),
    };
    let budget = budget_from_request(req);
    let Some(spec) = FigureSpec::for_id(id, &workloads, budget) else {
        return send_error(out, &format!("unknown figure `{id}`"));
    };

    shared.gate.acquire();
    let before = Counters::of(&shared.engine);
    let (results, dedup_hits) = run_deduped(shared, &spec.jobs());
    let after = Counters::of(&shared.engine);
    shared.gate.release();

    let failures: Vec<&String> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    if !failures.is_empty() {
        let msg = format!(
            "{} job(s) failed: {}",
            failures.len(),
            failures
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join("; ")
        );
        return send_error(out, &msg);
    }
    let stats: Vec<Arc<SimStats>> = results
        .into_iter()
        .map(|r| r.expect("failures handled above"))
        .collect();

    let fig = spec.render(&stats);
    send(
        out,
        &format!(
            "{{\"event\":\"figure\",\"figure\":{}}}",
            compact(&fig.to_json())
        ),
    )?;
    if req.get("stacks").and_then(JsonValue::as_bool) == Some(true) {
        let rep = spec.render_stacks(&stats);
        send(
            out,
            &format!(
                "{{\"event\":\"stacks\",\"stacks\":{}}}",
                compact(&rep.to_json())
            ),
        )?;
    }

    // Per-request accounting: engine-counter deltas plus this request's
    // in-flight joins. The dedup count appears in the line even at zero,
    // so scripts can always grep for it.
    let line = format!(
        "{} jobs run, {} cache hits, {} store hits, {} dedup hits ({} workers)",
        after.jobs_run - before.jobs_run,
        after.cache_hits - before.cache_hits,
        after.store_hits - before.store_hits,
        dedup_hits,
        shared.engine.workers()
    );
    send(
        out,
        &format!(
            "{{\"event\":\"summary\",\"jobs_requested\":{},\"jobs_run\":{},\"cache_hits\":{},\
             \"store_hits\":{},\"dedup_hits\":{},\"line\":{}}}",
            after.jobs_requested - before.jobs_requested,
            after.jobs_run - before.jobs_run,
            after.cache_hits - before.cache_hits,
            after.store_hits - before.store_hits,
            dedup_hits,
            json_escape(&line)
        ),
    )?;
    send(
        out,
        &format!("{{\"event\":\"done\",\"id\":{}}}", json_escape(&spec.id)),
    )
}

/// Run `jobs` through the shared engine with in-flight deduplication:
/// jobs another connection is *currently* simulating are joined (we wait
/// on its [`JobCell`]) instead of re-submitted. Returns one result per
/// job in input order plus the number of joins.
fn run_deduped(
    shared: &Shared,
    jobs: &[crate::sweep::Job],
) -> (Vec<Result<Arc<SimStats>, String>>, u64) {
    let mode = shared.engine.mode();
    let keys: Vec<String> = jobs.iter().map(|j| j.key_with_mode(mode)).collect();

    // Claim or join each key. `owned` keeps only the first occurrence of
    // a key within this request — duplicates inside one batch are already
    // deduplicated by the engine, but they must not double-claim here.
    let mut owned: Vec<usize> = Vec::new();
    let mut joined: Vec<(usize, Arc<JobCell>)> = Vec::new();
    {
        let mut inflight = lock_clean(&shared.inflight);
        for (i, key) in keys.iter().enumerate() {
            if let Some(cell) = inflight.get(key) {
                joined.push((i, Arc::clone(cell)));
            } else {
                inflight.insert(key.clone(), Arc::new(JobCell::new()));
                owned.push(i);
            }
        }
    }
    let dedup_hits = joined.len() as u64;
    shared.dedup_hits.fetch_add(dedup_hits, Ordering::Relaxed);

    let mut out: Vec<Option<Result<Arc<SimStats>, String>>> = vec![None; jobs.len()];
    if !owned.is_empty() {
        let batch: Vec<crate::sweep::Job> = owned.iter().map(|&i| jobs[i].clone()).collect();
        let results = shared.engine.try_run_jobs(&batch);
        let mut inflight = lock_clean(&shared.inflight);
        for (&i, result) in owned.iter().zip(results) {
            let result = result.map_err(|e| e.to_string());
            // Publish to joiners, then retire the cell: completed jobs
            // live in the engine's memo cache, the table is in-flight
            // state only.
            if let Some(cell) = inflight.remove(&keys[i]) {
                cell.fill(result.clone());
            }
            out[i] = Some(result);
        }
    }
    for (i, cell) in joined {
        out[i] = Some(cell.wait());
    }
    (
        out.into_iter()
            .map(|r| r.expect("every job is owned or joined"))
            .collect(),
        dedup_hits,
    )
}

// ---------------------------------------------------------------------------
// Client side (`looseloops submit`)
// ---------------------------------------------------------------------------

/// Connect to a running server, send one request line, and collect every
/// event line up to (and including) the request's terminal `done` or
/// `error` event. The `hello` line is included, so callers see exactly
/// what went over the wire.
pub fn request_lines(addr: impl ToSocketAddrs, request: &str) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut out = stream.try_clone()?;
    out.write_all(request.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line?;
        let terminal = matches!(
            parse(&line).ok().as_ref().and_then(|v| {
                v.get("event")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
            }),
            Some(ref e) if e == "done" || e == "error"
        );
        lines.push(line);
        if terminal {
            break;
        }
    }
    Ok(lines)
}

/// Rebuild a [`FigureResult`] from its wire JSON (`figure` event
/// payload). `None` when required fields are missing or mistyped —
/// protocol mismatches degrade to "cannot render", never panic.
pub fn figure_from_json(v: &JsonValue) -> Option<FigureResult> {
    let series = v
        .get("series")?
        .as_array()?
        .iter()
        .map(|s| {
            Some(Series {
                label: s.get("label")?.as_str()?.to_string(),
                values: s
                    .get("values")?
                    .as_array()?
                    .iter()
                    .map(|n| n.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(FigureResult {
        id: v.get("id")?.as_str()?.to_string(),
        title: v.get("title")?.as_str()?.to_string(),
        columns: v
            .get("columns")?
            .as_array()?
            .iter()
            .map(|c| Some(c.as_str()?.to_string()))
            .collect::<Option<Vec<_>>>()?,
        series,
        paper_expectation: v.get("paper_expectation")?.as_str()?.to_string(),
    })
}

/// Rebuild a [`CpiStackReport`] from its wire JSON (`stacks` event
/// payload).
pub fn stacks_from_json(v: &JsonValue) -> Option<CpiStackReport> {
    let rows = v
        .get("rows")?
        .as_array()?
        .iter()
        .map(|r| {
            Some(CpiStackRow {
                label: r.get("label")?.as_str()?.to_string(),
                cpi: r.get("cpi")?.as_f64()?,
                components: r
                    .get("components")?
                    .as_array()?
                    .iter()
                    .map(|n| n.as_f64().unwrap_or(f64::NAN))
                    .collect(),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CpiStackReport {
        id: v.get("id")?.as_str()?.to_string(),
        title: v.get("title")?.as_str()?.to_string(),
        components: v
            .get("components")?
            .as_array()?
            .iter()
            .map(|c| Some(c.as_str()?.to_string()))
            .collect::<Option<Vec<_>>>()?,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Job;
    use looseloops_pipeline::PipelineConfig;
    use looseloops_workload::Benchmark;

    fn tiny_engine() -> SweepEngine {
        SweepEngine::new(2)
    }

    fn tiny_budget() -> RunBudget {
        RunBudget {
            warmup: 200,
            measure: 1_000,
            max_cycles: 1_000_000,
        }
    }

    fn start(engine: SweepEngine) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = JobServer::bind("127.0.0.1:0", engine, 2).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle)
    }

    fn event_of(line: &str) -> String {
        parse(line)
            .expect("event line parses")
            .get("event")
            .and_then(JsonValue::as_str)
            .expect("event field")
            .to_string()
    }

    #[test]
    fn figure_round_trips_and_matches_a_local_run() {
        let (addr, handle) = start(tiny_engine());
        let req = r#"{"cmd":"figure","id":"fig4","warmup":200,"measure":1000,"workloads":["compress","swim"],"stacks":true}"#;
        let lines = request_lines(addr, req).expect("request");
        let events: Vec<String> = lines.iter().map(|l| event_of(l)).collect();
        assert_eq!(events, ["hello", "figure", "stacks", "summary", "done"]);

        // The streamed figure re-renders byte-identically to a local run
        // of the same spec.
        let fig_json = parse(&lines[1]).unwrap();
        let fig = figure_from_json(fig_json.get("figure").unwrap()).expect("decodable figure");
        let workloads = [
            Workload::Single(Benchmark::Compress),
            Workload::Single(Benchmark::Swim),
        ];
        let local = FigureSpec::for_id("fig4", &workloads, tiny_budget())
            .unwrap()
            .run_on(&SweepEngine::serial());
        assert_eq!(fig.to_table(), local.to_table());

        let stacks_json = parse(&lines[2]).unwrap();
        let rep = stacks_from_json(stacks_json.get("stacks").unwrap()).expect("decodable stacks");
        assert_eq!(rep.id, "fig4-stacks");
        assert_eq!(rep.rows.len(), 8, "4 configs x 2 workloads");

        let summary = parse(&lines[3]).unwrap();
        assert_eq!(summary.get("jobs_run").and_then(JsonValue::as_u64), Some(8));
        assert!(summary
            .get("line")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("dedup hits"));

        request_lines(addr, r#"{"cmd":"shutdown"}"#).expect("shutdown");
        handle.join().expect("server thread");
    }

    #[test]
    fn a_second_identical_request_is_pure_cache_hits() {
        let (addr, handle) = start(tiny_engine());
        let req =
            r#"{"cmd":"figure","id":"fig9","warmup":200,"measure":1000,"workloads":["compress"]}"#;
        let first = request_lines(addr, req).expect("first");
        let second = request_lines(addr, req).expect("second");
        let summary_of = |lines: &[String]| {
            lines
                .iter()
                .map(|l| parse(l).unwrap())
                .find(|v| v.get("event").and_then(JsonValue::as_str) == Some("summary"))
                .expect("summary event")
        };
        let s1 = summary_of(&first);
        let s2 = summary_of(&second);
        assert_eq!(s1.get("jobs_run").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(s2.get("jobs_run").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(s2.get("cache_hits").and_then(JsonValue::as_u64), Some(1));
        request_lines(addr, r#"{"cmd":"shutdown"}"#).expect("shutdown");
        handle.join().expect("server thread");
    }

    #[test]
    fn bad_requests_get_error_events_and_the_connection_survives() {
        let (addr, handle) = start(tiny_engine());
        for req in [
            "not json at all",
            r#"{"cmd":"figure"}"#,
            r#"{"cmd":"figure","id":"nonesuch"}"#,
            r#"{"cmd":"figure","id":"fig4","workloads":["nonesuch"]}"#,
            r#"{"cmd":"frobnicate"}"#,
        ] {
            let lines = request_lines(addr, req).expect("request");
            assert_eq!(event_of(lines.last().unwrap()), "error", "for {req}");
        }
        request_lines(addr, r#"{"cmd":"shutdown"}"#).expect("shutdown");
        handle.join().expect("server thread");
    }

    #[test]
    fn inflight_jobs_are_joined_not_resubmitted() {
        // Deterministic dedup check, no timing games: pre-claim a job's
        // key in the in-flight table, run a request for it on another
        // thread, and observe that the request blocks until the cell is
        // filled — and that its result is the one we published.
        let shared = Shared {
            engine: SweepEngine::new(1),
            inflight: Mutex::new(HashMap::new()),
            gate: Gate::new(1),
            shutdown: AtomicBool::new(false),
            dedup_hits: AtomicU64::new(0),
        };
        let job = Job::new(
            PipelineConfig::base(),
            Workload::Single(Benchmark::Compress),
            tiny_budget(),
        );
        let key = job.key_with_mode(shared.engine.mode());
        let cell = Arc::new(JobCell::new());
        lock_clean(&shared.inflight).insert(key, Arc::clone(&cell));

        std::thread::scope(|s| {
            let worker = s.spawn(|| run_deduped(&shared, std::slice::from_ref(&job)));
            // Publish a sentinel result; the joiner must return exactly it.
            std::thread::sleep(Duration::from_millis(50));
            let canned = Arc::new(SimStats::new(1));
            cell.fill(Ok(Arc::clone(&canned)));
            let (results, dedup) = worker.join().expect("joiner");
            assert_eq!(dedup, 1);
            assert_eq!(shared.engine.summary().jobs_run, 0, "nothing simulated");
            assert!(Arc::ptr_eq(results[0].as_ref().unwrap(), &canned));
        });
    }

    #[test]
    fn figure_and_stacks_json_survive_the_wire_format() {
        // compact() must keep the pretty renderings parseable.
        let workloads = [Workload::Single(Benchmark::Compress)];
        let spec = FigureSpec::for_id("fig4", &workloads, tiny_budget()).unwrap();
        let engine = SweepEngine::serial();
        let stats = engine.run_jobs(&spec.jobs());
        let fig = spec.render(&stats);
        let parsed = parse(&compact(&fig.to_json())).expect("figure JSON parses");
        assert_eq!(
            figure_from_json(&parsed).unwrap().to_table(),
            fig.to_table()
        );
        let rep = spec.render_stacks(&stats);
        let parsed = parse(&compact(&rep.to_json())).expect("stacks JSON parses");
        assert_eq!(
            stacks_from_json(&parsed).unwrap().to_table(),
            rep.to_table()
        );
    }
}
