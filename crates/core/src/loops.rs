//! Micro-architectural loop taxonomy (paper §1, Figures 1 and 2).
//!
//! A *loop* is a communication path where a value computed in one pipeline
//! stage is needed by the same or an earlier stage. Its cost model:
//!
//! - **loop length** — stages traversed from initiation to resolution;
//! - **feedback delay** — cycles to signal back from resolution to
//!   initiation;
//! - **loop delay** — their sum; 1 ⇒ *tight* loop (cycle-time problem),
//!   \>1 ⇒ *loose* loop (performance problem);
//! - **recovery stage** — where mis-speculation recovery re-enters the
//!   pipe (earlier than the initiation stage for the memory-trap loop).
//!
//! [`loop_inventory`] instantiates the taxonomy for a concrete
//! [`PipelineConfig`], so experiments can reason about (and print) the
//! machine's loops without running it.

use looseloops_pipeline::{CpiComponent, PipelineConfig, RegisterScheme};
use std::fmt;

/// Pipeline stages, in machine order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Instruction fetch.
    Fetch,
    /// Decode / rename / slotting (the DEC-IQ region).
    Map,
    /// Instruction-queue wait and select.
    Issue,
    /// Register read / payload / transport (the IQ-EX region).
    RegRead,
    /// Functional units and data cache.
    Execute,
    /// Write-back to the register file.
    Writeback,
    /// In-order retirement.
    Retire,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Fetch => "fetch",
            Stage::Map => "map",
            Stage::Issue => "issue",
            Stage::RegRead => "reg-read",
            Stage::Execute => "execute",
            Stage::Writeback => "writeback",
            Stage::Retire => "retire",
        };
        f.write_str(s)
    }
}

/// What causes the loop (paper §1: control, data, or resource hazards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Control hazard (branch/next-line loops).
    Control,
    /// Data hazard (load/operand/forwarding loops).
    Data,
    /// Resource or ordering hazard (memory barrier, memory traps).
    Resource,
}

/// One micro-architectural loop of a configured machine.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop name as used in the paper ("branch resolution", …).
    pub name: &'static str,
    /// Hazard class.
    pub kind: LoopKind,
    /// Stage that consumes the fed-back value.
    pub initiation: Stage,
    /// Stage that computes the value.
    pub resolution: Stage,
    /// Stage where mis-speculation recovery re-enters (== initiation when
    /// there is no separate recovery stage).
    pub recovery: Stage,
    /// Stages traversed from initiation to resolution.
    pub loop_length: u32,
    /// Cycles to communicate the result back.
    pub feedback_delay: u32,
    /// How the machine manages the loop.
    pub management: Management,
}

/// How a loop is managed (paper §1: stall or speculate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Management {
    /// The pipe stalls until the loop resolves.
    Stall,
    /// The pipe speculates through the loop and recovers on mis-speculation.
    Speculate,
    /// Tight loop: resolved within the cycle, no policy needed.
    None,
}

impl LoopInfo {
    /// Loop delay = loop length + feedback delay.
    pub fn loop_delay(&self) -> u32 {
        self.loop_length + self.feedback_delay
    }

    /// Tight loops have a loop delay of one.
    pub fn is_tight(&self) -> bool {
        self.loop_delay() == 1
    }

    /// A loose loop with a distinct recovery stage pays a refill penalty on
    /// top of its loop delay.
    pub fn has_recovery_stage(&self) -> bool {
        self.recovery != self.initiation
    }

    /// The CPI-stack component this loop's lost retire slots are charged
    /// to ([`SimStats::loop_cost`](looseloops_pipeline::SimStats)); `None`
    /// for tight loops, which resolve within the cycle and cost nothing.
    pub fn cpi_component(&self) -> Option<CpiComponent> {
        CpiComponent::ALL
            .into_iter()
            .find(|c| c.loop_name() == Some(self.name))
    }
}

/// The loop in `loops` that component `c` charges, if the component maps
/// to a loop at all (base/frontend/memory-latency cost is structural).
pub fn loop_for_component(loops: &[LoopInfo], c: CpiComponent) -> Option<&LoopInfo> {
    let name = c.loop_name()?;
    loops.iter().find(|l| l.name == name)
}

impl fmt::Display for LoopInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} {:?}  {}→{} (recover@{})  length={} feedback={} delay={} [{}]",
            self.name,
            self.kind,
            self.initiation,
            self.resolution,
            self.recovery,
            self.loop_length,
            self.feedback_delay,
            self.loop_delay(),
            if self.is_tight() { "tight" } else { "loose" },
        )
    }
}

/// Enumerate the micro-architectural loops of the machine described by
/// `cfg` (the Figure 2 inventory, parameterized by the config's latencies).
pub fn loop_inventory(cfg: &PipelineConfig) -> Vec<LoopInfo> {
    let mut loops = vec![
        LoopInfo {
            name: "next line prediction",
            kind: LoopKind::Control,
            initiation: Stage::Fetch,
            resolution: Stage::Fetch,
            recovery: Stage::Fetch,
            loop_length: 1,
            feedback_delay: 0,
            management: Management::None,
        },
        LoopInfo {
            name: "forwarding",
            kind: LoopKind::Data,
            initiation: Stage::Execute,
            resolution: Stage::Execute,
            recovery: Stage::Execute,
            loop_length: 1,
            feedback_delay: 0,
            management: Management::None,
        },
        LoopInfo {
            name: "branch resolution",
            kind: LoopKind::Control,
            initiation: Stage::Fetch,
            resolution: Stage::Execute,
            recovery: Stage::Fetch,
            // Fetch through decode/map, the IQ stage, and IQ-EX.
            loop_length: cfg.fetch_stages + cfg.dec_iq_stages + 1 + cfg.iq_ex_stages,
            feedback_delay: 1,
            management: Management::Speculate,
        },
        LoopInfo {
            name: "load resolution",
            kind: LoopKind::Data,
            initiation: Stage::Issue,
            resolution: Stage::Execute,
            recovery: Stage::Issue,
            loop_length: cfg.iq_ex_stages,
            feedback_delay: cfg.confirm_feedback,
            management: Management::Speculate,
        },
        LoopInfo {
            name: "memory trap",
            kind: LoopKind::Resource,
            initiation: Stage::Issue,
            resolution: Stage::Execute,
            recovery: Stage::Fetch, // recovery stage earlier than initiation
            loop_length: cfg.iq_ex_stages,
            feedback_delay: 1,
            management: Management::Speculate,
        },
        LoopInfo {
            name: "memory barrier",
            kind: LoopKind::Resource,
            initiation: Stage::Map,
            resolution: Stage::Retire,
            recovery: Stage::Map,
            loop_length: cfg.dec_iq_stages + 1 + cfg.iq_ex_stages + 2,
            feedback_delay: 1,
            management: Management::Stall,
        },
    ];
    if let RegisterScheme::Dra { .. } = cfg.scheme {
        loops.push(LoopInfo {
            name: "operand resolution",
            kind: LoopKind::Data,
            initiation: Stage::Issue,
            resolution: Stage::Execute,
            recovery: Stage::Issue,
            loop_length: cfg.iq_ex_stages,
            feedback_delay: cfg.rf_read_latency,
            management: Management::Speculate,
        });
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_pipeline::PipelineConfig;

    #[test]
    fn base_machine_loop_delays_match_the_paper() {
        let loops = loop_inventory(&PipelineConfig::base());
        let by_name = |n: &str| loops.iter().find(|l| l.name == n).unwrap();

        assert!(by_name("next line prediction").is_tight());
        assert!(by_name("forwarding").is_tight());
        // §2.2.2: "the loop delay is 8 cycles (loop length of 5 cycles and
        // feedback delay of 3 cycles)".
        let load = by_name("load resolution");
        assert_eq!(load.loop_length, 5);
        assert_eq!(load.feedback_delay, 3);
        assert_eq!(load.loop_delay(), 8);
        assert!(!load.is_tight());
        // The memory trap loop recovers at fetch, earlier than its issue
        // initiation stage (the dotted line of Figure 2).
        assert!(by_name("memory trap").has_recovery_stage());
        assert!(!by_name("branch resolution").has_recovery_stage());
        // No operand loop without the DRA.
        assert!(loops.iter().all(|l| l.name != "operand resolution"));
    }

    #[test]
    fn dra_introduces_the_operand_resolution_loop() {
        let loops = loop_inventory(&PipelineConfig::dra_for_rf(3));
        let op = loops
            .iter()
            .find(|l| l.name == "operand resolution")
            .unwrap();
        assert_eq!(op.loop_length, 3, "IQ-EX shrinks to 3 under the DRA");
        assert_eq!(op.feedback_delay, 3, "recovery reads the register file");
        assert!(!op.is_tight());
    }

    #[test]
    fn shrinking_iq_ex_shrinks_exactly_the_issue_loops() {
        let a = loop_inventory(&PipelineConfig::base_with_latencies(3, 9));
        let b = loop_inventory(&PipelineConfig::base_with_latencies(9, 3));
        let delay =
            |ls: &[LoopInfo], n: &str| ls.iter().find(|l| l.name == n).unwrap().loop_delay();
        // Same overall pipe: branch loop unchanged.
        assert_eq!(
            delay(&a, "branch resolution"),
            delay(&b, "branch resolution")
        );
        // Load loop shrinks with IQ-EX.
        assert_eq!(
            delay(&a, "load resolution") - delay(&b, "load resolution"),
            6
        );
    }

    #[test]
    fn every_loose_loop_maps_to_a_cpi_component() {
        use looseloops_pipeline::CpiComponent;
        // DRA config has the full inventory, operand loop included.
        let loops = loop_inventory(&PipelineConfig::dra_for_rf(5));
        for l in &loops {
            if l.is_tight() {
                assert_eq!(
                    l.cpi_component(),
                    None,
                    "tight loop `{}` costs nothing",
                    l.name
                );
            } else {
                let c = l
                    .cpi_component()
                    .unwrap_or_else(|| panic!("loose loop `{}` has no CPI component", l.name));
                assert_eq!(c.loop_name(), Some(l.name));
                assert_eq!(
                    loop_for_component(&loops, c).map(|li| li.name),
                    Some(l.name),
                    "round trip through loop_for_component"
                );
            }
        }
        // Structural components map to no loop.
        assert!(loop_for_component(&loops, CpiComponent::Base).is_none());
        assert!(loop_for_component(&loops, CpiComponent::Frontend).is_none());
        // The operand loop only exists under the DRA.
        let base_loops = loop_inventory(&PipelineConfig::base());
        assert!(loop_for_component(&base_loops, CpiComponent::OperandResolution).is_none());
    }

    #[test]
    fn display_formats_are_informative() {
        for l in loop_inventory(&PipelineConfig::dra_for_rf(5)) {
            let s = l.to_string();
            assert!(s.contains(l.name));
            assert!(s.contains("delay="));
        }
    }
}
