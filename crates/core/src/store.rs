//! On-disk content-addressed result store: a persistent second cache
//! tier under the [`SweepEngine`](crate::sweep::SweepEngine).
//!
//! The PR-2 memo cache dies with the process, so every consumer — CLI
//! figures, benches, CI, the fuzz harness — re-simulates grids it has
//! already answered. A [`ResultStore`] is a directory of completed runs
//! keyed by the 64-bit FNV digest of the job's full memo key
//! ([`Job::key_with_mode`](crate::sweep::Job::key_with_mode)): one file
//! per result, versioned and self-describing in the same
//! tag-length-section discipline as the `LLCK` checkpoint format, written
//! via [`atomic_write`] so concurrent processes sharing one store never
//! observe a torn entry.
//!
//! Collisions and corruption are both survivable by design: every entry
//! carries the *full* key string it was stored under, and a load whose
//! key does not match (a 64-bit digest collision) or whose payload does
//! not decode is treated as a miss — the job simply re-simulates. The
//! simulator is deterministic, so a stored result is byte-identical to a
//! fresh run and figures built from the store match store-less figures
//! exactly (`tests/sweep_determinism.rs` enforces this).

use crate::checkpoint::{push_section, push_u32, push_u64, CheckpointError, Reader};
use looseloops_pipeline::{LoopCostStack, SimStats};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Current result-entry encoding version. Bumped when a section's payload
/// layout changes incompatibly; unknown *sections* are skipped without a
/// bump, and a version newer than this binary understands is refused (the
/// caller treats that as a miss and overwrites with its own version).
pub const RESULT_STORE_VERSION: u32 = 1;

/// File magic: "LLRS" (Loose Loops Result Store).
const MAGIC: [u8; 4] = *b"LLRS";

/// The full memo key string of the stored job (collision guard).
const SEC_KEYS: [u8; 4] = *b"KEYS";
/// Fixed-order scalar counters of [`SimStats`].
const SEC_CORE: [u8; 4] = *b"CORE";
/// Per-thread retired-instruction counts.
const SEC_RETD: [u8; 4] = *b"RETD";
/// Operand-availability-gap histogram (Figure 6).
const SEC_GAPH: [u8; 4] = *b"GAPH";
/// Load-latency histogram.
const SEC_LODH: [u8; 4] = *b"LODH";
/// Memory-hierarchy counters.
const SEC_MEMS: [u8; 4] = *b"MEMS";
/// Per-loop CPI stack ([`LoopCostStack`]).
const SEC_LOOP: [u8; 4] = *b"LOOP";

/// The environment variable `looseloops figure` consults when `--store-dir`
/// is not given.
pub const STORE_ENV: &str = "LOOSELOOPS_STORE";

/// Write `bytes` to `path` atomically: write to a unique sibling
/// temporary, then rename into place.
///
/// The temporary name carries the process id *and* a per-process atomic
/// counter. The counter is the load-bearing part: two sweep workers in
/// the same process storing under the same digest used to share one
/// `.tmp.<pid>` file, so one worker's rename could publish the other's
/// half-written bytes. Distinct temporaries make the final rename the
/// only shared step, and rename is atomic.
///
/// # Errors
///
/// Any filesystem error from the write or the rename (the temporary is
/// removed, best-effort, when the rename fails).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{}", std::process::id(), seq));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_counts(out: &mut Vec<u8>, values: &[u64]) {
    push_u64(out, values.len() as u64);
    for &v in values {
        push_u64(out, v);
    }
}

fn read_counts(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<u64>, CheckpointError> {
    let n = r.count(8, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64(what)?);
    }
    Ok(out)
}

/// Serialize one completed run: magic, version, then tag-length-payload
/// sections ([`SimStats`] scalars, histograms, memory-hierarchy counters,
/// the [`LoopCostStack`]) prefixed by the full memo key. Readers skip
/// unknown sections, so new sections can be added without a version bump.
pub fn encode_result(key: &str, stats: &SimStats) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, RESULT_STORE_VERSION);

    push_section(&mut out, SEC_KEYS, key.as_bytes());

    let mut core = Vec::new();
    push_u64(&mut core, stats.cycles);
    push_u64(&mut core, stats.fetched);
    push_u64(&mut core, stats.squashed);
    push_u64(&mut core, stats.squashed_after_issue);
    push_u64(&mut core, stats.branches);
    push_u64(&mut core, stats.branch_mispredicts);
    push_u64(&mut core, stats.target_mispredicts);
    push_u64(&mut core, stats.loads);
    push_u64(&mut core, stats.load_l1_hits);
    push_u64(&mut core, stats.load_l1_misses);
    push_u64(&mut core, stats.load_replays);
    push_u64(&mut core, stats.shadow_replays);
    push_u64(&mut core, stats.operand_misses);
    push_u64(&mut core, stats.operand_replays);
    for &v in &stats.operand_sources {
        push_u64(&mut core, v);
    }
    push_u64(&mut core, stats.insertion_saturations);
    push_u64(&mut core, stats.mem_order_traps);
    push_u64(&mut core, stats.tlb_traps);
    push_u64(&mut core, stats.mem_barriers);
    push_u64(&mut core, stats.branch_squashes);
    push_u64(&mut core, stats.rename_stall_cycles);
    push_u64(&mut core, stats.operand_miss_stall_cycles);
    push_f64(&mut core, stats.iq_occupancy_mean);
    push_f64(&mut core, stats.iq_post_issue_mean);
    push_u64(&mut core, stats.iq_peak as u64);
    push_u64(&mut core, stats.line_pred.0);
    push_u64(&mut core, stats.line_pred.1);
    push_u64(&mut core, stats.deadlocks_detected);
    push_u64(&mut core, stats.faults_injected);
    for &v in &stats.faults_by_kind {
        push_u64(&mut core, v);
    }
    push_u64(&mut core, stats.audit_checks);
    push_section(&mut out, SEC_CORE, &core);

    let mut retd = Vec::new();
    push_counts(&mut retd, &stats.retired);
    push_section(&mut out, SEC_RETD, &retd);

    let mut gaph = Vec::new();
    push_counts(&mut gaph, &stats.operand_gap_hist);
    push_section(&mut out, SEC_GAPH, &gaph);

    let mut lodh = Vec::new();
    push_counts(&mut lodh, &stats.load_latency_hist);
    push_section(&mut out, SEC_LODH, &lodh);

    let mut mems = Vec::new();
    push_u64(&mut mems, stats.mem.l1i.hits);
    push_u64(&mut mems, stats.mem.l1i.misses);
    push_u64(&mut mems, stats.mem.l1d.hits);
    push_u64(&mut mems, stats.mem.l1d.misses);
    push_u64(&mut mems, stats.mem.l2.hits);
    push_u64(&mut mems, stats.mem.l2.misses);
    push_u64(&mut mems, stats.mem.dtlb_hits);
    push_u64(&mut mems, stats.mem.dtlb_misses);
    push_u64(&mut mems, stats.mem.bank_conflicts);
    push_u64(&mut mems, stats.mem.mshr_waits);
    push_u64(&mut mems, stats.mem.prefetches);
    push_section(&mut out, SEC_MEMS, &mems);

    let mut lp = Vec::new();
    push_u64(&mut lp, stats.loop_cost.width);
    push_u64(&mut lp, stats.loop_cost.cycles);
    push_u64(&mut lp, stats.loop_cost.used);
    for &v in &stats.loop_cost.lost {
        push_u64(&mut lp, v);
    }
    push_section(&mut out, SEC_LOOP, &lp);

    out
}

/// Parse a stored result, returning the key it was stored under and the
/// reconstructed statistics.
///
/// # Errors
///
/// [`CheckpointError`] on bad magic, a newer version, truncation, or
/// structurally impossible values (a missing mandatory section is
/// [`CheckpointError::Truncated`]).
pub fn decode_result(bytes: &[u8]) -> Result<(String, SimStats), CheckpointError> {
    let mut r = Reader::new(bytes);
    if r.take(4, "magic")? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32("version")?;
    if version > RESULT_STORE_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }

    let mut key: Option<String> = None;
    let mut stats = SimStats::new(0);
    let mut saw_core = false;
    while !r.done() {
        let tag: [u8; 4] = r.take(4, "section tag")?.try_into().unwrap();
        let len = r.u64("section length")? as usize;
        let payload = r.take(len, "section payload")?;
        let mut s = Reader::new(payload);
        match tag {
            SEC_KEYS => {
                key = Some(
                    String::from_utf8(payload.to_vec())
                        .map_err(|_| CheckpointError::Corrupt("key is not UTF-8".into()))?,
                );
            }
            SEC_CORE => {
                stats.cycles = s.u64("cycles")?;
                stats.fetched = s.u64("fetched")?;
                stats.squashed = s.u64("squashed")?;
                stats.squashed_after_issue = s.u64("squashed_after_issue")?;
                stats.branches = s.u64("branches")?;
                stats.branch_mispredicts = s.u64("branch_mispredicts")?;
                stats.target_mispredicts = s.u64("target_mispredicts")?;
                stats.loads = s.u64("loads")?;
                stats.load_l1_hits = s.u64("load_l1_hits")?;
                stats.load_l1_misses = s.u64("load_l1_misses")?;
                stats.load_replays = s.u64("load_replays")?;
                stats.shadow_replays = s.u64("shadow_replays")?;
                stats.operand_misses = s.u64("operand_misses")?;
                stats.operand_replays = s.u64("operand_replays")?;
                for v in &mut stats.operand_sources {
                    *v = s.u64("operand_sources")?;
                }
                stats.insertion_saturations = s.u64("insertion_saturations")?;
                stats.mem_order_traps = s.u64("mem_order_traps")?;
                stats.tlb_traps = s.u64("tlb_traps")?;
                stats.mem_barriers = s.u64("mem_barriers")?;
                stats.branch_squashes = s.u64("branch_squashes")?;
                stats.rename_stall_cycles = s.u64("rename_stall_cycles")?;
                stats.operand_miss_stall_cycles = s.u64("operand_miss_stall_cycles")?;
                stats.iq_occupancy_mean = f64::from_bits(s.u64("iq_occupancy_mean")?);
                stats.iq_post_issue_mean = f64::from_bits(s.u64("iq_post_issue_mean")?);
                stats.iq_peak = s.u64("iq_peak")? as usize;
                stats.line_pred.0 = s.u64("line_pred correct")?;
                stats.line_pred.1 = s.u64("line_pred wrong")?;
                stats.deadlocks_detected = s.u64("deadlocks_detected")?;
                stats.faults_injected = s.u64("faults_injected")?;
                for v in &mut stats.faults_by_kind {
                    *v = s.u64("faults_by_kind")?;
                }
                stats.audit_checks = s.u64("audit_checks")?;
                saw_core = true;
            }
            SEC_RETD => stats.retired = read_counts(&mut s, "retired")?,
            SEC_GAPH => stats.operand_gap_hist = read_counts(&mut s, "gap histogram")?,
            SEC_LODH => stats.load_latency_hist = read_counts(&mut s, "load-latency histogram")?,
            SEC_MEMS => {
                stats.mem.l1i.hits = s.u64("l1i hits")?;
                stats.mem.l1i.misses = s.u64("l1i misses")?;
                stats.mem.l1d.hits = s.u64("l1d hits")?;
                stats.mem.l1d.misses = s.u64("l1d misses")?;
                stats.mem.l2.hits = s.u64("l2 hits")?;
                stats.mem.l2.misses = s.u64("l2 misses")?;
                stats.mem.dtlb_hits = s.u64("dtlb hits")?;
                stats.mem.dtlb_misses = s.u64("dtlb misses")?;
                stats.mem.bank_conflicts = s.u64("bank conflicts")?;
                stats.mem.mshr_waits = s.u64("mshr waits")?;
                stats.mem.prefetches = s.u64("prefetches")?;
            }
            SEC_LOOP => {
                let mut lc = LoopCostStack {
                    width: s.u64("loop width")?,
                    cycles: s.u64("loop cycles")?,
                    used: s.u64("loop used")?,
                    ..LoopCostStack::default()
                };
                for v in &mut lc.lost {
                    *v = s.u64("loop lost")?;
                }
                stats.loop_cost = lc;
            }
            // Forward compatibility: unknown sections are skipped.
            _ => {}
        }
    }
    let key = key.ok_or(CheckpointError::Truncated("KEYS section"))?;
    if !saw_core {
        return Err(CheckpointError::Truncated("CORE section"));
    }
    Ok((key, stats))
}

/// A directory of completed sweep results keyed by the FNV-64 digest of
/// the job's full memo key. Saves go through [`atomic_write`], so any
/// number of processes (and threads within them) can share one store;
/// every load observes either nothing or a complete entry.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

/// What [`ResultStore::gc`] did: entries surviving and evicted, with
/// their byte totals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Entries still in the store after collection.
    pub kept: usize,
    /// Bytes those surviving entries occupy.
    pub bytes_kept: u64,
    /// Entries removed, oldest first.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub bytes_evicted: u64,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<ResultStore, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| CheckpointError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(ResultStore { dir })
    }

    /// A store at `$LOOSELOOPS_STORE` when the variable is set; a store
    /// that cannot be opened is reported on stderr and ignored (the sweep
    /// still runs, just without the disk tier).
    pub fn from_env() -> Option<ResultStore> {
        let dir = std::env::var(STORE_ENV).ok().filter(|d| !d.is_empty())?;
        match ResultStore::open(&dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: {STORE_ENV}={dir}: {e}; continuing without a result store");
                None
            }
        }
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a digest maps to.
    pub fn path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.llrs"))
    }

    /// Load the result stored under `digest`, verifying it was stored for
    /// exactly `key`. `Ok(None)` when nothing is stored *or* the entry
    /// belongs to a different key (a digest collision — the caller
    /// re-simulates rather than serving a wrong result).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on an unreadable or undecodable file (callers
    /// treat that as a miss and re-simulate).
    pub fn load(&self, digest: u64, key: &str) -> Result<Option<SimStats>, CheckpointError> {
        let path = self.path(digest);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CheckpointError::Io(format!("read {}: {e}", path.display()))),
        };
        let (stored_key, stats) = decode_result(&bytes)?;
        if stored_key != key {
            return Ok(None);
        }
        // Touch the entry so `gc` sees hits as recent use, not just
        // writes. Best-effort: a read-only store still serves results.
        if let Ok(f) = std::fs::File::options().append(true).open(&path) {
            let _ = f.set_modified(std::time::SystemTime::now());
        }
        Ok(Some(stats))
    }

    /// Evict least-recently-used entries until the store fits in
    /// `max_bytes`. Recency is the file modification time, which both
    /// [`save`](Self::save) and a successful [`load`](Self::load) refresh;
    /// ties break on file name so the scan is deterministic. Only
    /// `*.llrs` entries are considered — foreign files and in-flight
    /// `.tmp.*` temporaries are left alone and do not count toward the
    /// budget.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be listed. A
    /// concurrently-removed entry is skipped, not an error.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, CheckpointError> {
        let read = std::fs::read_dir(&self.dir)
            .map_err(|e| CheckpointError::Io(format!("list {}: {e}", self.dir.display())))?;
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for entry in read.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("llrs") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((mtime, path, meta.len()));
        }
        entries.sort();
        let mut report = GcReport {
            kept: entries.len(),
            bytes_kept: entries.iter().map(|(_, _, len)| len).sum(),
            ..GcReport::default()
        };
        let mut victims = entries.into_iter();
        while report.bytes_kept > max_bytes {
            let Some((_, path, len)) = victims.next() else {
                break;
            };
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(CheckpointError::Io(format!(
                        "remove {}: {e}",
                        path.display()
                    )))
                }
            }
            report.kept -= 1;
            report.bytes_kept -= len;
            report.evicted += 1;
            report.bytes_evicted += len;
        }
        Ok(report)
    }

    /// Store `stats` under `digest` for `key` (atomic replace).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the temporary cannot be written or
    /// renamed into place.
    pub fn save(&self, digest: u64, key: &str, stats: &SimStats) -> Result<(), CheckpointError> {
        let path = self.path(digest);
        atomic_write(&path, &encode_result(key, stats))
            .map_err(|e| CheckpointError::Io(format!("write {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Workload;
    use crate::simulator::RunBudget;
    use crate::sweep::{fnv1a64, Job};
    use looseloops_pipeline::PipelineConfig;
    use looseloops_workload::Benchmark;

    fn run_once() -> (String, SimStats) {
        let job = Job::new(
            PipelineConfig::base(),
            Workload::Single(Benchmark::Compress),
            RunBudget {
                warmup: 200,
                measure: 2_000,
                max_cycles: 1_000_000,
            },
        );
        let stats = job.workload.try_run(&job.config, job.budget).expect("run");
        (job.key(), stats)
    }

    fn temp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!("llrs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).expect("open");
        (dir, store)
    }

    #[test]
    fn encode_decode_round_trips_every_section() {
        let (key, stats) = run_once();
        let bytes = encode_result(&key, &stats);
        let (back_key, back) = decode_result(&bytes).expect("decode");
        assert_eq!(back_key, key);
        // SimStats has no PartialEq; byte-level equality of the
        // re-encoding covers every serialized field.
        assert_eq!(bytes, encode_result(&back_key, &back));
        assert_eq!(back.cycles, stats.cycles);
        assert_eq!(back.retired, stats.retired);
        assert_eq!(back.operand_gap_hist, stats.operand_gap_hist);
        assert_eq!(back.load_latency_hist, stats.load_latency_hist);
        assert_eq!(back.mem, stats.mem);
        assert_eq!(back.loop_cost, stats.loop_cost);
        assert_eq!(
            back.iq_occupancy_mean.to_bits(),
            stats.iq_occupancy_mean.to_bits()
        );
        assert_eq!(back.ipc(), stats.ipc());
    }

    #[test]
    fn corrupt_entries_are_rejected_not_panicked() {
        let (key, stats) = run_once();
        let bytes = encode_result(&key, &stats);
        assert_eq!(
            decode_result(b"NOPE").unwrap_err(),
            CheckpointError::BadMagic
        );
        for cut in [3, 7, 9, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_result(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut newer = bytes.clone();
        newer[4..8].copy_from_slice(&(RESULT_STORE_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode_result(&newer).unwrap_err(),
            CheckpointError::BadVersion(RESULT_STORE_VERSION + 1)
        );
        // An entry missing its mandatory sections is truncated, not OK.
        let mut empty = Vec::new();
        empty.extend_from_slice(&MAGIC);
        push_u32(&mut empty, RESULT_STORE_VERSION);
        assert!(decode_result(&empty).is_err());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let (key, stats) = run_once();
        let mut bytes = encode_result(&key, &stats);
        push_section(&mut bytes, *b"ZZZZ", &[9, 9, 9]);
        let (back_key, back) = decode_result(&bytes).expect("unknown section skipped");
        assert_eq!(back_key, key);
        assert_eq!(back.cycles, stats.cycles);
    }

    #[test]
    fn store_round_trips_misses_and_survives_collisions() {
        let (dir, store) = temp_store("roundtrip");
        let (key, stats) = run_once();
        let digest = fnv1a64(key.as_bytes());
        assert!(store
            .load(digest, &key)
            .expect("miss is not an error")
            .is_none());
        store.save(digest, &key, &stats).expect("save");
        let back = store.load(digest, &key).expect("load").expect("present");
        assert_eq!(encode_result(&key, &back), encode_result(&key, &stats));
        // A digest collision (same file, different key) is a miss, never a
        // wrong answer.
        assert!(store
            .load(digest, "some other job")
            .expect("no error")
            .is_none());
        // A corrupt file surfaces as an error the caller re-simulates from.
        std::fs::write(store.path(77), b"LLRSgarbage").unwrap();
        assert!(store.load(77, &key).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_evicts_oldest_entries_first_and_spares_foreign_files() {
        use std::time::{Duration, UNIX_EPOCH};
        let (dir, store) = temp_store("gc");
        // Craft five 1000-byte entries with strictly increasing ages:
        // digest 1 is the oldest, digest 5 the freshest. `gc` reads only
        // file metadata, so the payloads need not decode.
        for digest in 1u64..=5 {
            let path = store.path(digest);
            std::fs::write(&path, vec![digest as u8; 1000]).unwrap();
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(UNIX_EPOCH + Duration::from_secs(digest * 1000))
                .unwrap();
        }
        // Foreign files and in-flight temporaries are not the store's to
        // delete, nor do they count toward the budget.
        std::fs::write(dir.join("README"), b"not an entry").unwrap();
        std::fs::write(dir.join("deadbeef.llrs.tmp.1.2"), vec![0; 4000]).unwrap();

        // Over budget: the three oldest entries go, newest two stay.
        let report = store.gc(2_500).expect("gc");
        assert_eq!(
            report,
            GcReport {
                kept: 2,
                bytes_kept: 2_000,
                evicted: 3,
                bytes_evicted: 3_000,
            }
        );
        for digest in 1u64..=3 {
            assert!(
                !store.path(digest).exists(),
                "digest {digest} should be evicted"
            );
        }
        for digest in 4u64..=5 {
            assert!(
                store.path(digest).exists(),
                "digest {digest} should survive"
            );
        }
        assert!(dir.join("README").exists());
        assert!(dir.join("deadbeef.llrs.tmp.1.2").exists());

        // Under budget: nothing to do.
        let report = store.gc(1 << 30).expect("gc");
        assert_eq!(report.evicted, 0);
        assert_eq!(report.kept, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_refreshes_recency_so_hits_survive_gc() {
        use std::time::{Duration, UNIX_EPOCH};
        let (dir, store) = temp_store("gc-lru");
        let (key, stats) = run_once();
        let digest = fnv1a64(key.as_bytes());
        store.save(digest, &key, &stats).expect("save");
        // Backdate the entry, then hit it: the load must refresh its
        // modification time so the entry reads as recently used.
        let f = std::fs::File::options()
            .append(true)
            .open(store.path(digest))
            .unwrap();
        f.set_modified(UNIX_EPOCH + Duration::from_secs(1)).unwrap();
        drop(f);
        store.load(digest, &key).expect("load").expect("present");
        let touched = std::fs::metadata(store.path(digest))
            .unwrap()
            .modified()
            .unwrap();
        assert!(touched > UNIX_EPOCH + Duration::from_secs(100_000));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_disambiguates_same_process_writers() {
        let (dir, _store) = temp_store("atomic");
        let target = dir.join("one-file");
        let payloads: Vec<Vec<u8>> = (0u8..8).map(|b| vec![b; 4096]).collect();
        std::thread::scope(|s| {
            for p in &payloads {
                s.spawn(|| {
                    for _ in 0..50 {
                        atomic_write(&target, p).expect("atomic write");
                    }
                });
            }
        });
        // Whatever won, the file is one complete payload, never a mix.
        let final_bytes = std::fs::read(&target).expect("file exists");
        assert!(payloads.contains(&final_bytes), "torn write published");
        // No temporaries left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale temporaries: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
