//! Reference machine presets.
//!
//! The paper grounds its loop taxonomy in two real designs: the Alpha
//! 21264 (Figure 2's loop examples, the load-shadow discussion) and the
//! Pentium 4 (the ">20 stage pipeline, ~20-cycle branch resolution"
//! motivation). These presets configure our machine to approximate those
//! design points so the loop arithmetic can be compared against the
//! paper's quoted numbers.

use looseloops_branch::PredictorKind;
use looseloops_pipeline::{LoadSpecPolicy, PipelineConfig};

/// An Alpha 21264-flavoured configuration: short pipe (7-stage integer),
/// 4-wide, tournament prediction, shadow-kill load recovery.
///
/// The paper quotes a 6-stage branch-resolution loop length with a 1-cycle
/// feedback delay (minimum 7-cycle misprediction cost); with our stage
/// model (2 fetch stages + 2 DEC-IQ + IQ + 2 IQ-EX) the branch loop
/// matches.
pub fn alpha21264_like() -> PipelineConfig {
    PipelineConfig {
        width: 4,
        fetch_stages: 2,
        dec_iq_stages: 2,
        iq_ex_stages: 2,
        rf_read_latency: 1,
        iq_entries: 35, // 20 int + 15 fp in the real part
        max_in_flight: 80,
        clusters: 4,
        fp_clusters: 2,
        mem_clusters: 2,
        fwd_window: 4,
        confirm_feedback: 2,
        load_policy: LoadSpecPolicy::ReissueShadow, // the 21264's recovery
        predictor: PredictorKind::Tournament,
        ..PipelineConfig::default()
    }
}

/// A Pentium 4-flavoured design point: a deep (>20-stage) pipeline whose
/// branch-resolution loop is on the order of 20 cycles — the paper's
/// motivating example for why loose loops sink chips.
pub fn pentium4_like() -> PipelineConfig {
    PipelineConfig {
        fetch_stages: 5,
        dec_iq_stages: 8,
        iq_ex_stages: 7,
        rf_read_latency: 5,
        ..PipelineConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::loop_inventory;

    #[test]
    fn alpha_branch_loop_matches_the_paper() {
        let cfg = alpha21264_like();
        cfg.validate().unwrap();
        let loops = loop_inventory(&cfg);
        let branch = loops
            .iter()
            .find(|l| l.name == "branch resolution")
            .unwrap();
        // Paper §1: loop length 6, feedback 1, minimum cost 7.
        assert_eq!(branch.loop_length, 7, "2 fetch + 2 map + IQ + 2 IQ-EX");
        assert_eq!(branch.loop_delay(), 8);
        // Close to the quoted 7; our stage decomposition charges the IQ
        // stage explicitly.
        assert!(branch.loop_delay().abs_diff(7) <= 1);
    }

    #[test]
    fn pentium4_branch_loop_is_around_twenty() {
        let cfg = pentium4_like();
        cfg.validate().unwrap();
        let loops = loop_inventory(&cfg);
        let branch = loops
            .iter()
            .find(|l| l.name == "branch resolution")
            .unwrap();
        assert!(
            (19..=23).contains(&branch.loop_delay()),
            "paper: ~20-cycle branch resolution, got {}",
            branch.loop_delay()
        );
    }

    #[test]
    fn presets_actually_run() {
        use crate::simulator::{run_benchmark, RunBudget};
        use looseloops_workload::Benchmark;
        let budget = RunBudget {
            warmup: 500,
            measure: 4_000,
            max_cycles: 2_000_000,
        };
        for cfg in [alpha21264_like(), pentium4_like()] {
            let s = run_benchmark(&cfg, Benchmark::M88ksim, budget);
            assert!(
                s.ipc() > 0.2,
                "preset must execute sensibly, ipc={}",
                s.ipc()
            );
        }
    }

    #[test]
    fn deep_pipe_loses_on_branchy_code() {
        use crate::simulator::{run_benchmark, RunBudget};
        use looseloops_workload::Benchmark;
        let budget = RunBudget {
            warmup: 2_000,
            measure: 10_000,
            max_cycles: 4_000_000,
        };
        let shallow = run_benchmark(&alpha21264_like(), Benchmark::Go, budget).ipc();
        let deep = run_benchmark(&pentium4_like(), Benchmark::Go, budget).ipc();
        assert!(
            deep < shallow,
            "the paper's motivation: the deep pipe must lose on go ({deep} vs {shallow})"
        );
    }
}
