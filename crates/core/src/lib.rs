//! # looseloops — *Loose Loops Sink Chips*, reproduced in Rust
//!
//! A from-scratch reproduction of Borch, Tune, Manne & Emer, **"Loose Loops
//! Sink Chips"** (HPCA 2002): the micro-architectural loop framework, the
//! pipeline-length and pipeline-configuration studies, and the paper's
//! contribution — the **Distributed Register Algorithm (DRA)** with
//! per-cluster register caches.
//!
//! This crate is the front door; the heavy machinery lives in the substrate
//! crates (`looseloops-isa`, `-mem`, `-branch`, `-regs`, `-pipeline`,
//! `-workload`) and is re-exported here.
//!
//! ## Quick start
//!
//! ```
//! use looseloops::{Benchmark, PipelineConfig, RunBudget, run_benchmark};
//!
//! // Simulate 20k instructions of the `swim` proxy on the paper's base
//! // machine and on the DRA machine (3-cycle register file).
//! let budget = RunBudget { warmup: 2_000, measure: 20_000, max_cycles: 2_000_000 };
//! let base = run_benchmark(&PipelineConfig::base_for_rf(3), Benchmark::Swim, budget);
//! let dra = run_benchmark(&PipelineConfig::dra_for_rf(3), Benchmark::Swim, budget);
//! println!("speedup = {:.3}", dra.ipc() / base.ipc());
//! ```
//!
//! ## Loop analysis
//!
//! [`loop_inventory`] enumerates every micro-architectural loop of a
//! configured machine with its initiation/resolution/recovery stages, loop
//! length, feedback delay, and loop delay — the Figure 1/2 taxonomy:
//!
//! ```
//! use looseloops::{loop_inventory, PipelineConfig};
//! let loops = loop_inventory(&PipelineConfig::base());
//! let load = loops.iter().find(|l| l.name == "load resolution").unwrap();
//! assert_eq!(load.loop_delay(), 8); // paper §2.2.2
//! ```

pub mod checkpoint;
pub mod experiments;
pub mod json;
pub mod loops;
pub mod machines;
pub mod report;
pub mod sampling;
pub mod server;
pub mod simulator;
pub mod store;
pub mod sweep;

pub use checkpoint::{
    capture_checkpoint, restore_into, warm_digest, Checkpoint, CheckpointError, CheckpointStore,
    FunctionalCursor, ThreadCheckpoint, WarmMemo, Warmer, CHECKPOINT_VERSION,
};
pub use sampling::{run_sampled, SampledRun, SamplingPlan};

pub use experiments::{
    ablation_dra_design, ablation_dra_design_on, ablation_fwd_window, ablation_fwd_window_on,
    ablation_iq_size, ablation_iq_size_on, ablation_load_policies, ablation_load_policies_on,
    ablation_predictors, ablation_predictors_on, ablation_prefetch, ablation_prefetch_on,
    cpi_stack_report_on, fig4_pipeline_length, fig4_pipeline_length_on, fig5_fixed_total,
    fig5_fixed_total_on, fig6_operand_gap_cdf, fig6_operand_gap_cdf_on, fig8_dra_speedup,
    fig8_dra_speedup_on, fig9_operand_sources, fig9_operand_sources_on, figure_cpi_stacks_on,
    FigureKind, FigureSpec, Workload,
};
pub use loops::{loop_for_component, loop_inventory, LoopInfo, LoopKind, Management, Stage};
pub use machines::{alpha21264_like, pentium4_like};
pub use report::{json_escape, CpiStackReport, CpiStackRow, FigureResult, Series};
pub use simulator::{
    run_benchmark, run_pair, run_programs, try_run_benchmark, try_run_pair, try_run_programs,
    RunBudget,
};
pub use store::{atomic_write, GcReport, ResultStore, RESULT_STORE_VERSION, STORE_ENV};
pub use sweep::{
    default_jobs, fnv1a64, jobs_from_env, parallel_map, ExecMode, Job, JobRecord, SweepEngine,
    SweepSummary,
};

// Substrate re-exports.
pub use looseloops_branch as branch;
pub use looseloops_isa as isa;
pub use looseloops_mem as mem;
pub use looseloops_pipeline as pipeline;
pub use looseloops_regs as regs;
pub use looseloops_workload as workload;

pub use looseloops_pipeline::{
    ConfigError, CpiComponent, DeadlockError, FaultKind, FaultPlan, InvariantKind,
    InvariantViolation, LoadSpecPolicy, LoopCostStack, Machine, PipelineConfig, PipelineSnapshot,
    RegisterScheme, SimError, SimStats,
};
pub use looseloops_workload::{Benchmark, SmtPair};
