//! Workloads for the *Loose Loops* reproduction.
//!
//! The paper evaluates on Spec95 binaries compiled for Alpha, which we do
//! not have. Per the reproduction's substitution rule (DESIGN.md §4), this
//! crate supplies deterministic mini-ISA kernels whose *loop-relevant*
//! characteristics match the paper's per-benchmark descriptions — branch
//! density and predictability, load density and cache footprint,
//! dependence-chain shape, and operand-reuse distances. The studied
//! effects (how often each micro-architectural loop fires, how often it
//! mis-speculates, and how much work each mis-speculation wastes) depend
//! only on those characteristics.
//!
//! - [`Benchmark`] — the ten single-threaded proxies plus the paper's
//!   three SMT pairs ([`Benchmark::pairs`]).
//! - [`synthetic`] — a fully parameterized generator for controlled
//!   experiments and property tests.
//!
//! All kernels run a practically-infinite outer loop (the harness stops
//! them by instruction budget) and touch disjoint, per-thread address
//! ranges so SMT runs are data-race-free by construction.

pub mod kernels;
pub mod profile;
pub mod synthetic;

pub use profile::{Benchmark, SmtPair};
pub use synthetic::{synthetic, try_synthetic, SyntheticError, SyntheticParams};
