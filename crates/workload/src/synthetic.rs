//! Parameterized synthetic workload generator.
//!
//! Where the named kernels target specific Spec95 profiles, `synthetic`
//! sweeps the characteristic space directly: branch density and
//! predictability, load/store density, cache footprint, and dependence
//! shape. It is used by the ablation benches and by property tests (every
//! generated program must run identically on the functional model and the
//! pipeline).

use crate::kernels::{f, r, Kern};
use looseloops_isa::{Inst, Opcode, Program};
use looseloops_rng::Rng;

/// Knobs for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticParams {
    /// RNG seed (programs are deterministic functions of the parameters).
    pub seed: u64,
    /// Instructions in the loop body (before branches are woven in).
    pub body_len: u32,
    /// Number of data-dependent branches woven into the body.
    pub branches: u32,
    /// Each data-dependent branch is taken with probability `1 / 2^taken_bits`.
    pub taken_bits: u32,
    /// Number of random loads per iteration.
    pub loads: u32,
    /// Number of stores per iteration.
    pub stores: u32,
    /// Data footprint in bytes (power of two, ≤ 8 MiB).
    pub footprint: u32,
    /// Length of the serial dependence chain threaded through the body
    /// (0 = fully parallel).
    pub chain: u32,
    /// Mix in floating-point ops instead of integer ALU ops.
    pub fp: bool,
    /// Data-region base address (MiB-aligned).
    pub base: u64,
}

impl Default for SyntheticParams {
    fn default() -> SyntheticParams {
        SyntheticParams {
            seed: 1,
            body_len: 16,
            branches: 2,
            taken_bits: 2,
            loads: 2,
            stores: 1,
            footprint: 64 << 10,
            chain: 4,
            fp: false,
            base: 16 << 20,
        }
    }
}

impl SyntheticParams {
    /// Number of scheduled (non-filler-ALU) body events these parameters
    /// request: `loads + stores + branches + chain`.
    pub fn scheduled_events(&self) -> u64 {
        u64::from(self.loads)
            + u64::from(self.stores)
            + u64::from(self.branches)
            + u64::from(self.chain)
    }

    /// Check the parameters for profile errors: an empty body, a bad
    /// footprint, or a body too short for the scheduled events (which
    /// would otherwise silently exceed the requested `body_len`).
    pub fn validate(&self) -> Result<(), SyntheticError> {
        if self.body_len == 0 {
            return Err(SyntheticError::EmptyBody);
        }
        if !self.footprint.is_power_of_two() || self.footprint > (8 << 20) {
            return Err(SyntheticError::BadFootprint(self.footprint));
        }
        let scheduled = self.scheduled_events();
        if scheduled > u64::from(self.body_len) {
            return Err(SyntheticError::BodyOverflow {
                requested: self.body_len,
                scheduled,
            });
        }
        Ok(())
    }
}

/// A profile error in [`SyntheticParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticError {
    /// `body_len` is zero.
    EmptyBody,
    /// `footprint` is not a power of two up to 8 MiB.
    BadFootprint(u32),
    /// The scheduled events (loads + stores + branches + chain) do not fit
    /// in `body_len`, so the generated body would silently exceed the
    /// requested length.
    BodyOverflow {
        /// The requested `body_len`.
        requested: u32,
        /// Scheduled events that must all be emitted.
        scheduled: u64,
    },
}

impl std::fmt::Display for SyntheticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyntheticError::EmptyBody => write!(f, "empty body"),
            SyntheticError::BadFootprint(v) => {
                write!(f, "footprint {v} must be a power of two up to 8 MiB")
            }
            SyntheticError::BodyOverflow {
                requested,
                scheduled,
            } => write!(
                f,
                "body_len {requested} too short for {scheduled} scheduled events \
                 (loads + stores + branches + chain)"
            ),
        }
    }
}

impl std::error::Error for SyntheticError {}

/// Generate a looping program from `params`, or report why the profile is
/// invalid.
pub fn try_synthetic(params: SyntheticParams) -> Result<Program, SyntheticError> {
    params.validate()?;
    Ok(generate(params))
}

/// Generate a looping program from `params`.
///
/// # Panics
///
/// Panics on profile errors — see [`SyntheticParams::validate`] /
/// [`try_synthetic`] for the non-panicking form.
pub fn synthetic(params: SyntheticParams) -> Program {
    match try_synthetic(params) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

fn generate(params: SyntheticParams) -> Program {
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut k = Kern::new("synthetic");
    k.load_base(r(1), params.base);
    k.seed(r(8), (params.seed as i32 & 0xffff) | 1);
    k.outer_begin();
    k.xorshift(r(8), r(3));

    let mask = (params.footprint - 1) & !7;
    let acc_int = [r(16), r(17), r(18), r(19)];
    let acc_fp = [f(16), f(17), f(18), f(19)];
    let chain_reg = if params.fp { f(9) } else { r(9) };

    // Random address in r5 helper state: recompute before each access.
    let emit_addr = |k: &mut Kern, rng: &mut Rng| {
        let shift = rng.gen_range(0..24);
        k.b.srli(r(5), r(8), shift);
        k.b.andi(r(5), r(5), mask as i32);
        k.b.add(r(5), r(5), r(1));
    };

    // Build a randomized schedule of events across the body.
    #[derive(Clone, Copy)]
    enum Ev {
        Alu,
        Load,
        Store,
        Branch,
        Chain,
    }
    let mut events: Vec<Ev> = Vec::new();
    for _ in 0..params.loads {
        events.push(Ev::Load);
    }
    for _ in 0..params.stores {
        events.push(Ev::Store);
    }
    for _ in 0..params.branches {
        events.push(Ev::Branch);
    }
    for _ in 0..params.chain {
        events.push(Ev::Chain);
    }
    while (events.len() as u32) < params.body_len {
        events.push(Ev::Alu);
    }
    rng.shuffle(&mut events);

    let mut branch_shift = 3;
    for ev in events {
        match ev {
            Ev::Alu => {
                let a = acc_int[rng.gen_range(0..4usize)];
                let op = [Opcode::Add, Opcode::Xor, Opcode::Sub][rng.gen_range(0..3usize)];
                k.b.push(Inst::op_rr(op, a, a, r(8)));
            }
            Ev::Load => {
                emit_addr(&mut k, &mut rng);
                if params.fp {
                    let d = acc_fp[rng.gen_range(0..4usize)];
                    k.b.push(Inst::load(Opcode::FLdq, f(2), r(5), 0));
                    k.b.fadd(d, d, f(2));
                } else {
                    let d = acc_int[rng.gen_range(0..4usize)];
                    k.b.ldq(r(6), r(5), 0);
                    k.b.add(d, d, r(6));
                }
            }
            Ev::Store => {
                emit_addr(&mut k, &mut rng);
                k.b.stq(r(16), r(5), 0);
            }
            Ev::Branch => {
                branch_shift = (branch_shift + 11) % 48;
                let bits = params.taken_bits;
                let a = acc_int[rng.gen_range(0..4usize)];
                k.rand_guard(r(8), r(4), branch_shift, bits, |k| {
                    k.b.addi(a, a, 1);
                });
            }
            Ev::Chain => {
                if params.fp {
                    k.b.fadd(chain_reg, chain_reg, f(16));
                } else {
                    k.b.push(Inst::op_rr(Opcode::Add, chain_reg, chain_reg, r(16)));
                }
            }
        }
    }

    k.outer_end();
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{ArchState, FlatMemory};

    fn runs(params: SyntheticParams) {
        let prog = synthetic(params);
        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        let summary = st.run(&prog, &mut mem, 30_000).unwrap();
        assert!(!summary.halted);
    }

    #[test]
    fn default_params_run() {
        runs(SyntheticParams::default());
    }

    #[test]
    fn fp_heavy_runs() {
        // 4 + 1 + 2 + 12 = 19 scheduled events: needs a body of at least
        // 19 (the old generator silently grew the 16-slot default).
        runs(SyntheticParams {
            fp: true,
            chain: 12,
            loads: 4,
            body_len: 24,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn branch_storm_runs() {
        runs(SyntheticParams {
            branches: 6,
            taken_bits: 1,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn big_footprint_runs() {
        runs(SyntheticParams {
            footprint: 8 << 20,
            loads: 4,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = SyntheticParams::default();
        assert_eq!(synthetic(p), synthetic(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic(SyntheticParams::default());
        let b = synthetic(SyntheticParams {
            seed: 2,
            ..SyntheticParams::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn bad_footprint_rejected() {
        let _ = synthetic(SyntheticParams {
            footprint: 1000,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn body_overflow_is_a_typed_error() {
        // 2 + 1 + 2 + 4 = 9 scheduled events in a body of 8: one too many.
        let over = SyntheticParams {
            body_len: 8,
            ..SyntheticParams::default()
        };
        assert_eq!(
            over.validate(),
            Err(SyntheticError::BodyOverflow {
                requested: 8,
                scheduled: 9,
            })
        );
        assert!(try_synthetic(over).is_err());

        // Exactly at the boundary: every slot is a scheduled event, no
        // filler ALU ops, and the body is exactly the requested length.
        let exact = SyntheticParams {
            body_len: 9,
            ..SyntheticParams::default()
        };
        exact.validate().expect("9 events fit a 9-slot body");
        let _ = try_synthetic(exact).expect("boundary profile generates");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn body_overflow_panics_in_synthetic() {
        let _ = synthetic(SyntheticParams {
            body_len: 1,
            loads: 2,
            ..SyntheticParams::default()
        });
    }
}
