//! Parameterized synthetic workload generator.
//!
//! Where the named kernels target specific Spec95 profiles, `synthetic`
//! sweeps the characteristic space directly: branch density and
//! predictability, load/store density, cache footprint, and dependence
//! shape. It is used by the ablation benches and by property tests (every
//! generated program must run identically on the functional model and the
//! pipeline).

use crate::kernels::{f, r, Kern};
use looseloops_isa::{Inst, Opcode, Program};
use looseloops_rng::Rng;

/// Knobs for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticParams {
    /// RNG seed (programs are deterministic functions of the parameters).
    pub seed: u64,
    /// Instructions in the loop body (before branches are woven in).
    pub body_len: u32,
    /// Number of data-dependent branches woven into the body.
    pub branches: u32,
    /// Each data-dependent branch is taken with probability `1 / 2^taken_bits`.
    pub taken_bits: u32,
    /// Number of random loads per iteration.
    pub loads: u32,
    /// Number of stores per iteration.
    pub stores: u32,
    /// Data footprint in bytes (power of two, ≤ 8 MiB).
    pub footprint: u32,
    /// Length of the serial dependence chain threaded through the body
    /// (0 = fully parallel).
    pub chain: u32,
    /// Mix in floating-point ops instead of integer ALU ops.
    pub fp: bool,
    /// Data-region base address (MiB-aligned).
    pub base: u64,
}

impl Default for SyntheticParams {
    fn default() -> SyntheticParams {
        SyntheticParams {
            seed: 1,
            body_len: 16,
            branches: 2,
            taken_bits: 2,
            loads: 2,
            stores: 1,
            footprint: 64 << 10,
            chain: 4,
            fp: false,
            base: 16 << 20,
        }
    }
}

/// Generate a looping program from `params`.
///
/// # Panics
///
/// Panics on degenerate parameters (zero body, non-power-of-two or
/// oversized footprint).
pub fn synthetic(params: SyntheticParams) -> Program {
    assert!(params.body_len > 0, "empty body");
    assert!(
        params.footprint.is_power_of_two() && params.footprint <= (8 << 20),
        "footprint must be a power of two up to 8 MiB"
    );
    let mut rng = Rng::seed_from_u64(params.seed);
    let mut k = Kern::new("synthetic");
    k.load_base(r(1), params.base);
    k.seed(r(8), (params.seed as i32 & 0xffff) | 1);
    k.outer_begin();
    k.xorshift(r(8), r(3));

    let mask = (params.footprint - 1) & !7;
    let acc_int = [r(16), r(17), r(18), r(19)];
    let acc_fp = [f(16), f(17), f(18), f(19)];
    let chain_reg = if params.fp { f(9) } else { r(9) };

    // Random address in r5 helper state: recompute before each access.
    let emit_addr = |k: &mut Kern, rng: &mut Rng| {
        let shift = rng.gen_range(0..24);
        k.b.srli(r(5), r(8), shift);
        k.b.andi(r(5), r(5), mask as i32);
        k.b.add(r(5), r(5), r(1));
    };

    // Build a randomized schedule of events across the body.
    #[derive(Clone, Copy)]
    enum Ev {
        Alu,
        Load,
        Store,
        Branch,
        Chain,
    }
    let mut events: Vec<Ev> = Vec::new();
    for _ in 0..params.loads {
        events.push(Ev::Load);
    }
    for _ in 0..params.stores {
        events.push(Ev::Store);
    }
    for _ in 0..params.branches {
        events.push(Ev::Branch);
    }
    for _ in 0..params.chain {
        events.push(Ev::Chain);
    }
    while (events.len() as u32) < params.body_len {
        events.push(Ev::Alu);
    }
    rng.shuffle(&mut events);

    let mut branch_shift = 3;
    for ev in events {
        match ev {
            Ev::Alu => {
                let a = acc_int[rng.gen_range(0..4usize)];
                let op = [Opcode::Add, Opcode::Xor, Opcode::Sub][rng.gen_range(0..3usize)];
                k.b.push(Inst::op_rr(op, a, a, r(8)));
            }
            Ev::Load => {
                emit_addr(&mut k, &mut rng);
                if params.fp {
                    let d = acc_fp[rng.gen_range(0..4usize)];
                    k.b.push(Inst::load(Opcode::FLdq, f(2), r(5), 0));
                    k.b.fadd(d, d, f(2));
                } else {
                    let d = acc_int[rng.gen_range(0..4usize)];
                    k.b.ldq(r(6), r(5), 0);
                    k.b.add(d, d, r(6));
                }
            }
            Ev::Store => {
                emit_addr(&mut k, &mut rng);
                k.b.stq(r(16), r(5), 0);
            }
            Ev::Branch => {
                branch_shift = (branch_shift + 11) % 48;
                let bits = params.taken_bits;
                let a = acc_int[rng.gen_range(0..4usize)];
                k.rand_guard(r(8), r(4), branch_shift, bits, |k| {
                    k.b.addi(a, a, 1);
                });
            }
            Ev::Chain => {
                if params.fp {
                    k.b.fadd(chain_reg, chain_reg, f(16));
                } else {
                    k.b.push(Inst::op_rr(Opcode::Add, chain_reg, chain_reg, r(16)));
                }
            }
        }
    }

    k.outer_end();
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{ArchState, FlatMemory};

    fn runs(params: SyntheticParams) {
        let prog = synthetic(params);
        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        let summary = st.run(&prog, &mut mem, 30_000).unwrap();
        assert!(!summary.halted);
    }

    #[test]
    fn default_params_run() {
        runs(SyntheticParams::default());
    }

    #[test]
    fn fp_heavy_runs() {
        runs(SyntheticParams {
            fp: true,
            chain: 12,
            loads: 4,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn branch_storm_runs() {
        runs(SyntheticParams {
            branches: 6,
            taken_bits: 1,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn big_footprint_runs() {
        runs(SyntheticParams {
            footprint: 8 << 20,
            loads: 4,
            ..SyntheticParams::default()
        });
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = SyntheticParams::default();
        assert_eq!(synthetic(p), synthetic(p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic(SyntheticParams::default());
        let b = synthetic(SyntheticParams {
            seed: 2,
            ..SyntheticParams::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn bad_footprint_rejected() {
        let _ = synthetic(SyntheticParams {
            footprint: 1000,
            ..SyntheticParams::default()
        });
    }
}
