//! The benchmark roster: ten Spec95 proxies and the paper's SMT pairs.

use crate::kernels::{fp, int};
use looseloops_isa::Program;
use std::fmt;

/// Default data-region base for a single-threaded run (thread 0).
pub const THREAD0_BASE: u64 = 16 << 20; // 16 MiB
/// Data-region base for thread 1 in SMT runs — 128 MiB away from thread 0,
/// guaranteeing disjoint footprints (largest kernel touches 8 MiB).
pub const THREAD1_BASE: u64 = 144 << 20;

/// The ten Spec95-proxy benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Branchy hash-table loop, 48 KiB hot table + 2 MiB cold pokes (int).
    Compress,
    /// Pointer chasing (48 KiB ring) + branches + cold pokes (int).
    Gcc,
    /// Branch-dominated, 32 KiB (int).
    Go,
    /// Well-predicted, ALU-heavy, L1-resident (int).
    M88ksim,
    /// Long narrow FP chains, low ILP — DRA's pathological case (fp).
    Apsi,
    /// Memory-bound 8 (+8) MiB streams (fp).
    Hydro2d,
    /// Memory-bound 8 MiB stencil (fp).
    Mgrid,
    /// Wide FP bursts + rare branches (queuing-limited) (fp).
    Su2cor,
    /// L1-missing, L2-resident stream — load-loop sensitive (fp).
    Swim,
    /// Like swim plus dTLB traps and wide operand gaps (fp).
    Turb3d,
}

impl Benchmark {
    /// All ten benchmarks, in the paper's figure order.
    pub fn all() -> [Benchmark; 10] {
        use Benchmark::*;
        [
            Compress, Gcc, Go, M88ksim, Apsi, Hydro2d, Mgrid, Su2cor, Swim, Turb3d,
        ]
    }

    /// The paper's benchmark name (as printed in its figures).
    pub fn name(self) -> &'static str {
        use Benchmark::*;
        match self {
            Compress => "compress",
            Gcc => "gcc",
            Go => "go",
            M88ksim => "m88ksim",
            Apsi => "apsi",
            Hydro2d => "hydro2d",
            Mgrid => "mgrid",
            Su2cor => "su2cor",
            Swim => "swim",
            Turb3d => "turb3d",
        }
    }

    /// One-line characterization (the paper's §3.1 description this proxy
    /// targets).
    pub fn description(self) -> &'static str {
        use Benchmark::*;
        match self {
            Compress => {
                "hash-table loop: random data-dependent branches, 48 KiB hot table + cold pokes"
            }
            Gcc => "pointer chasing (48 KiB ring) + unpredictable branches + cold pokes",
            Go => "branch after branch on random data; the most branch-limited code",
            M88ksim => "well-predicted periodic branches, ALU-heavy, L1-resident",
            Apsi => "long narrow FP chains (low ILP); the DRA's operand-miss pathology",
            Hydro2d => "8 MiB streams, every line from main memory",
            Mgrid => "8 MiB stencil, memory-latency dominated",
            Su2cor => "wide independent FP lanes queueing ahead of rare branches",
            Swim => "L2-resident stencil streams; the load-resolution loop's best customer",
            Turb3d => "swim-like streams plus dTLB traps and wide operand-availability gaps",
        }
    }

    /// True for the integer-suite proxies.
    pub fn is_int(self) -> bool {
        use Benchmark::*;
        matches!(self, Compress | Gcc | Go | M88ksim)
    }

    /// Build the kernel with its data region at `base` (MiB-aligned).
    pub fn program_at(self, base: u64) -> Program {
        use Benchmark::*;
        match self {
            Compress => int::compress(base),
            Gcc => int::gcc(base),
            Go => int::go(base),
            M88ksim => int::m88ksim(base),
            Apsi => fp::apsi(base),
            Hydro2d => fp::hydro2d(base),
            Mgrid => fp::mgrid(base),
            Su2cor => fp::su2cor(base),
            Swim => fp::swim(base),
            Turb3d => fp::turb3d(base),
        }
    }

    /// Build the kernel at the default single-thread base.
    pub fn program(self) -> Program {
        self.program_at(THREAD0_BASE)
    }

    /// The paper's three multi-threaded workloads.
    pub fn pairs() -> [SmtPair; 3] {
        use Benchmark::*;
        [
            SmtPair(M88ksim, Compress),
            SmtPair(Go, Su2cor),
            SmtPair(Apsi, Swim),
        ]
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt.write_str(self.name())
    }
}

/// A two-thread SMT workload with disjoint data regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmtPair(pub Benchmark, pub Benchmark);

impl SmtPair {
    /// `a-b` naming as in the paper ("m88ksim-compress").
    pub fn name(&self) -> String {
        format!("{}-{}", self.0.name(), self.1.name())
    }

    /// The two programs, placed in disjoint address regions.
    pub fn programs(&self) -> Vec<Program> {
        vec![
            self.0.program_at(THREAD0_BASE),
            self.1.program_at(THREAD1_BASE),
        ]
    }
}

impl fmt::Display for SmtPair {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmt, "{}-{}", self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{ArchState, FlatMemory};

    #[test]
    fn every_kernel_builds_and_runs_functionally() {
        for b in Benchmark::all() {
            let prog = b.program();
            assert!(!prog.is_empty(), "{b}");
            let mut mem = FlatMemory::with_program(&prog);
            let mut st = ArchState::new(&prog);
            let summary = st.run(&prog, &mut mem, 100_000).unwrap();
            assert!(!summary.halted, "{b} must loop effectively forever");
            assert_eq!(summary.retired, 100_000, "{b}");
        }
    }

    #[test]
    fn pair_programs_are_disjoint() {
        for pair in Benchmark::pairs() {
            let ps = pair.programs();
            assert_eq!(ps.len(), 2);
            // Data regions: thread 0 in [16 MiB, 144 MiB), thread 1 above.
            for (addr, _) in &ps[0].init_data {
                assert!(*addr >= THREAD0_BASE && *addr < THREAD1_BASE);
            }
            for (addr, _) in &ps[1].init_data {
                assert!(*addr >= THREAD1_BASE);
            }
        }
    }

    #[test]
    fn names_and_classes() {
        assert_eq!(Benchmark::Compress.name(), "compress");
        assert!(Benchmark::Gcc.is_int());
        assert!(!Benchmark::Swim.is_int());
        assert_eq!(Benchmark::pairs()[2].name(), "apsi-swim");
        assert_eq!(Benchmark::all().len(), 10);
    }

    #[test]
    fn kernels_are_deterministic() {
        for b in Benchmark::all() {
            assert_eq!(b.program(), b.program(), "{b}");
        }
    }
}
