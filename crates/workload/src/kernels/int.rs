//! Integer Spec95 proxies: `compress`, `gcc`, `go`, `m88ksim`.
//!
//! The paper (§3.1) characterizes the integer codes through the
//! branch-resolution loop: `compress`, `gcc` and `go` lose heavily to
//! branch mispredictions (and, for `compress`/`gcc`, also to load misses),
//! while `m88ksim` "does not have as many branches or branch
//! mispredictions" and is far less sensitive to pipeline length.

use super::{r, Kern};
use looseloops_isa::Program;
use looseloops_rng::Rng;

/// `compress` proxy: a hash-table update loop — random 8-byte accesses
/// into a 48 KiB hot table (mostly L1 hits, the paper's "high load hit
/// rate") with every eighth iteration touching a cold 2 MiB region
/// (L2/memory misses), interleaved with data-dependent branches (≈25% and
/// ≈12.5% taken) that defeat the predictor, plus a store per iteration.
pub fn compress(base: u64) -> Program {
    let mut k = Kern::new("compress");
    k.load_base(r(1), base);
    k.seed(r(8), 0x1234);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    // Random hot-table index within 48 KiB (use a 64 KiB mask and fold).
    k.b.andi(r(5), r(8), 0xbff8);
    k.b.add(r(5), r(5), r(1));
    k.b.ldq(r(6), r(5), 0);
    k.b.add(r(16), r(16), r(6));
    // Cold-region poke: 1 iteration in 8 misses into 2 MiB.
    k.rand_guard(r(8), r(4), 45, 3, |k| {
        k.b.srli(r(7), r(8), 5);
        k.b.andi(r(7), r(7), 0x1f_fff8);
        k.b.add(r(7), r(7), r(1));
        k.b.ldq(r(7), r(7), 0);
        k.b.add(r(18), r(18), r(7));
    });
    // ~25% taken data-dependent branch.
    k.rand_guard(r(8), r(4), 19, 2, |k| {
        k.b.addi(r(16), r(16), 1);
        k.b.xor(r(17), r(17), r(8));
    });
    // ~12.5% taken data-dependent branch.
    k.rand_guard(r(8), r(4), 31, 3, |k| {
        k.b.add(r(17), r(17), r(16));
    });
    k.b.addi(r(6), r(6), 1);
    k.b.stq(r(6), r(5), 0);
    k.outer_end();
    k.build()
}

/// `gcc` proxy: pointer chasing through a shuffled 48 KiB ring of 64-byte
/// nodes (a serial, mostly-L1-hitting load chain) with an occasional cold
/// poke into a 2 MiB region, plus moderately unpredictable branches — the
/// paper's "useless work due to branch mispredictions, burdened by load
/// misses" profile.
pub fn gcc(base: u64) -> Program {
    const NODES: usize = 768; // 768 * 64 B = 48 KiB: mostly L1-resident
    let mut k = Kern::new("gcc");

    // Build a single-cycle permutation ring: node i -> node perm[i].
    let mut order: Vec<u64> = (1..NODES as u64).collect();
    Rng::seed_from_u64(0x6cc).shuffle(&mut order);
    let mut next = vec![0u64; NODES];
    let mut cur = 0u64;
    for &n in &order {
        next[cur as usize] = base + n * 64;
        cur = n;
    }
    next[cur as usize] = base; // close the ring
    for (i, &ptr) in next.iter().enumerate() {
        k.b.data_words(base + i as u64 * 64, &[ptr]);
    }

    k.load_base(r(1), base);
    k.b.add(r(2), r(1), r(31)); // cursor = base
    k.seed(r(8), 0x5678);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    k.b.ldq(r(2), r(2), 0); // chase
    k.b.ldq(r(6), r(2), 8); // payload
    k.b.add(r(16), r(16), r(6));
    // Cold-region poke: 1 iteration in 16 misses into 2 MiB.
    k.rand_guard(r(8), r(4), 43, 4, |k| {
        k.b.srli(r(7), r(8), 3);
        k.b.andi(r(7), r(7), 0x1f_fff8);
        k.b.add(r(7), r(7), r(1));
        k.b.ldq(r(7), r(7), 0);
        k.b.add(r(18), r(18), r(7));
    });
    // ~25% taken branch.
    k.rand_guard(r(8), r(4), 9, 2, |k| {
        k.b.xor(r(17), r(17), r(2));
        k.b.addi(r(16), r(16), 3);
    });
    // ~12.5% taken branch.
    k.rand_guard(r(8), r(4), 23, 3, |k| {
        k.b.add(r(18), r(18), r(16));
    });
    k.b.and(r(19), r(19), r(8));
    k.outer_end();
    k.build()
}

/// `go` proxy: branch after branch on PRNG bits (≈25% mispredict each),
/// tiny 32 KiB working set — the paper's most branch-limited code.
pub fn go(base: u64) -> Program {
    let mut k = Kern::new("go");
    k.load_base(r(1), base);
    k.seed(r(8), 0x9abc);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    k.b.andi(r(5), r(8), 0x7ff8); // 32 KiB
    k.b.add(r(5), r(5), r(1));
    k.b.ldq(r(6), r(5), 0);
    k.rand_guard(r(8), r(4), 3, 2, |k| {
        k.b.addi(r(16), r(16), 1);
    });
    k.rand_guard(r(8), r(4), 13, 2, |k| {
        k.b.add(r(17), r(17), r(6));
    });
    k.rand_guard(r(8), r(4), 29, 2, |k| {
        k.b.xor(r(18), r(18), r(8));
    });
    k.rand_guard(r(8), r(4), 41, 2, |k| {
        k.b.subi(r(16), r(16), 1);
    });
    k.outer_end();
    k.build()
}

/// `m88ksim` proxy: a well-predicted interpreter-style loop — periodic
/// (learnable) branches, ALU-dominated work, small sequential working set.
/// The paper notes it has fewer branches/mispredictions and shows the
/// least pipeline-length sensitivity of the integer codes.
pub fn m88ksim(base: u64) -> Program {
    let mut k = Kern::new("m88ksim");
    k.load_base(r(1), base);
    k.outer_begin();
    // Sequential 8 KiB walk (L1-resident).
    k.b.andi(r(2), r(21), 0x7f8);
    k.b.slli(r(2), r(2), 2);
    k.b.add(r(5), r(2), r(1));
    k.b.ldq(r(6), r(5), 0);
    // Periodic branch: taken 1 cycle in 4 — local history learns it.
    let skip = "m88_skip";
    k.b.andi(r(4), r(21), 3);
    k.b.bne(r(4), skip);
    k.b.add(r(16), r(16), r(6));
    k.b.xor(r(17), r(17), r(16));
    k.b.label(skip);
    // ALU ladder (plenty of ILP).
    k.b.add(r(16), r(16), r(6));
    k.b.addi(r(17), r(17), 7);
    k.b.xor(r(18), r(18), r(17));
    k.b.slli(r(3), r(16), 1);
    k.b.srli(r(4), r(17), 2);
    k.b.add(r(19), r(3), r(4));
    k.b.sub(r(19), r(19), r(18));
    k.b.stq(r(19), r(5), 8);
    k.outer_end();
    k.build()
}

/// Pointer-chase microbenchmark (not a Spec95 proxy): a pure serial
/// load-to-load chain over an L1-resident ring. The load is always the
/// last-arriving operand of its consumer, so the load-resolution-loop
/// management policy is the whole story: speculation-with-reissue beats
/// stalling by roughly the IQ-EX latency per chase (paper §2.2.2).
pub fn chase(base: u64) -> Program {
    const NODES: usize = 4096; // 32 KiB of 8-byte pointers, L1-resident
    let mut k = Kern::new("chase");
    let mut order: Vec<u64> = (1..NODES as u64).collect();
    Rng::seed_from_u64(0xc4a5e).shuffle(&mut order);
    let mut next = vec![0u64; NODES];
    let mut cur = 0u64;
    for &n in &order {
        next[cur as usize] = base + n * 8;
        cur = n;
    }
    next[cur as usize] = base;
    for (i, &ptr) in next.iter().enumerate() {
        k.b.data_words(base + i as u64 * 8, &[ptr]);
    }
    k.load_base(r(1), base);
    k.b.add(r(2), r(1), r(31));
    k.outer_begin();
    k.b.ldq(r(2), r(2), 0); // the chase: serial load-to-load
    k.b.add(r(16), r(16), r(2));
    k.outer_end();
    k.build()
}
