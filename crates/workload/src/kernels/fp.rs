//! Floating-point Spec95 proxies: `apsi`, `hydro2d`, `mgrid`, `su2cor`,
//! `swim`, `turb3d`.
//!
//! Paper §3.1 characterizations reproduced here:
//!
//! - `swim`, `turb3d`: many loads with L1 misses (L2-resident data) —
//!   sensitive to the load-resolution loop, biggest winners from a shorter
//!   IQ-EX. `turb3d` additionally takes dTLB-miss traps and has wide
//!   operand-availability gaps (Figure 6).
//! - `hydro2d`, `mgrid`: L2-missing streams — dominated by main-memory
//!   latency, insensitive to pipeline length.
//! - `apsi`: long, narrow dependence chains (low ILP) — insensitive to
//!   pipeline length, and the DRA's pathological case (many long-reuse
//!   operands thrash the 16-entry CRCs).
//! - `su2cor`: few mispredictions, but wide independent FP bursts queue up
//!   in front of branch resolution (queuing-delay-limited).

use super::{f, r, Kern};
use looseloops_isa::Program;

/// `swim` proxy: stencil-style streaming over three 32 KiB arrays —
/// a 96 KiB combined footprint that exceeds the 64 KiB L1 but is firmly
/// L2-resident. Four independent lanes per iteration, each a load pair
/// feeding a short FP chain; streaming evictions make roughly a line's
/// worth of loads miss L1 per pass; every miss replays issued dependents
/// (the load-resolution-loop useless work). Wide ILP keeps issue slots
/// and IQ capacity — the resources that loop wastes — precious.
pub fn swim(base: u64) -> Program {
    // 32 KiB per array, staggered by a line so the three arrays do not
    // alias to the same L1 sets (one way of the 64 KiB 2-way L1 is
    // exactly 32 KiB).
    const ARRAY: i32 = 0x8040;
    const LANES: u8 = 4;
    let mut k = Kern::new("swim");
    k.load_base(r(1), base);
    // FP constant 3.0 in f28.
    k.b.addi(r(3), r(31), 3);
    k.b.push(looseloops_isa::Inst::op_rr(
        looseloops_isa::Opcode::FCvtIf,
        f(28),
        r(3),
        r(31),
    ));
    k.outer_begin();
    // cursor = (iter * 32) mod 32 KiB; each lane gets its own cursor copy
    // (compiled array code spreads address registers — and a single base
    // register with 12 memory consumers would saturate the DRA's 2-bit
    // insertion-table counters, which is apsi's pathology, not swim's).
    k.b.slli(r(2), r(21), 5);
    k.b.andi(r(2), r(2), 0x7fe0);
    k.b.add(r(2), r(2), r(1));
    for lane in 0..LANES {
        let (a, b, s, t, u) = (
            f(lane * 5),
            f(lane * 5 + 1),
            f(lane * 5 + 2),
            f(lane * 5 + 3),
            f(lane * 5 + 4),
        );
        let cur = r(10 + lane);
        k.b.addi(cur, r(2), lane as i32 * 8);
        k.b.push(looseloops_isa::Inst::load(
            looseloops_isa::Opcode::FLdq,
            a,
            cur,
            0,
        ));
        k.b.push(looseloops_isa::Inst::load(
            looseloops_isa::Opcode::FLdq,
            b,
            cur,
            ARRAY,
        ));
        k.b.fadd(s, a, b);
        k.b.fmul(t, s, f(28));
        k.b.fadd(u, t, b);
        k.b.push(looseloops_isa::Inst::store(
            looseloops_isa::Opcode::FStq,
            u,
            cur,
            2 * ARRAY,
        ));
        k.b.fadd(f(24 + lane % 4), f(24 + lane % 4), u); // per-lane accumulator
    }
    k.outer_end();
    k.build()
}

/// `turb3d` proxy: `swim`-like streaming plus (a) an early-produced value
/// consumed at the end of a long load/FP chain — the wide
/// operand-availability gap of Figure 6 — and (b) a periodic long-stride
/// access across an 8 MiB region that misses the 64-entry dTLB and traps.
pub fn turb3d(base: u64) -> Program {
    // 32 KiB per streamed array, staggered by a line to avoid L1 set
    // aliasing (see `swim`).
    const ARRAY: i32 = 0x8040;
    let mut k = Kern::new("turb3d");
    k.load_base(r(1), base);
    k.seed(r(8), 0x7b3d);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    // Early value: available as soon as the iteration starts.
    k.b.andi(r(4), r(21), 0xff);
    k.b.push(looseloops_isa::Inst::op_rr(
        looseloops_isa::Opcode::FCvtIf,
        f(10),
        r(4),
        r(31),
    ));
    // Long chain: four dependent loads + FP ops (tens of cycles).
    k.b.slli(r(2), r(21), 3);
    k.b.andi(r(2), r(2), 0x7ff8);
    k.b.add(r(2), r(2), r(1));
    k.b.fldq(f(0), r(2), 0);
    k.b.fadd(f(1), f(0), f(10));
    k.b.push(looseloops_isa::Inst::load(
        looseloops_isa::Opcode::FLdq,
        f(2),
        r(2),
        ARRAY,
    ));
    k.b.fmul(f(3), f(1), f(2));
    k.b.push(looseloops_isa::Inst::load(
        looseloops_isa::Opcode::FLdq,
        f(4),
        r(2),
        2 * ARRAY,
    ));
    k.b.fadd(f(5), f(3), f(4));
    // Extend the serial chain so the early value's consumer sits tens of
    // cycles away (the wide tail of the Figure 6 CDF).
    k.b.fmul(f(7), f(5), f(5));
    k.b.fadd(f(8), f(7), f(5));
    k.b.fmul(f(9), f(8), f(7));
    // Late consumer of the early value: the Figure 6 gap.
    k.b.fmul(f(6), f(9), f(10));
    k.b.fadd(f(24), f(24), f(6));
    // Every 8th iteration: poke a page-granular stride across 8 MiB
    // (dTLB capacity misses -> traps, paper's turb3d signature).
    k.rand_guard(r(8), r(5), 11, 3, |k| {
        k.b.slli(r(6), r(21), 13); // 8 KiB pages
        k.b.andi(r(6), r(6), 0x7f_ffff);
        k.b.add(r(6), r(6), r(1));
        k.b.ldq(r(7), r(6), 0);
        k.b.add(r(16), r(16), r(7));
    });
    k.outer_end();
    k.build()
}

/// `hydro2d` proxy: two 8 MiB streams touched a cache line per iteration —
/// every load misses L1 *and* L2, so main-memory latency dominates and
/// pipeline length barely matters.
pub fn hydro2d(base: u64) -> Program {
    let mut k = Kern::new("hydro2d");
    k.load_base(r(1), base);
    k.outer_begin();
    // cursor = (iter * 64) mod 8 MiB — a new line every iteration.
    k.b.slli(r(2), r(21), 6);
    k.b.andi(r(2), r(2), 0x7f_ffc0);
    k.b.add(r(2), r(2), r(1));
    k.b.fldq(f(0), r(2), 0);
    // The second stream lives 8 MiB (plus a line of stagger) away.
    k.b.push(looseloops_isa::Inst::load(
        looseloops_isa::Opcode::FLdq,
        f(1),
        r(2),
        0x40_0040,
    ));
    k.b.fadd(f(2), f(0), f(1));
    k.b.fmul(f(3), f(2), f(2));
    k.b.fadd(f(24), f(24), f(3));
    k.b.fstq(f(3), r(2), 16);
    k.outer_end();
    k.build()
}

/// `mgrid` proxy: three-point stencil over an 8 MiB grid at line stride —
/// memory-bound like `hydro2d`, slightly more FP work per miss.
pub fn mgrid(base: u64) -> Program {
    let mut k = Kern::new("mgrid");
    k.load_base(r(1), base);
    k.outer_begin();
    k.b.slli(r(2), r(21), 6);
    k.b.andi(r(2), r(2), 0x7f_ffc0);
    k.b.add(r(2), r(2), r(1));
    k.b.fldq(f(0), r(2), 0);
    k.b.fldq(f(1), r(2), 64);
    k.b.fldq(f(2), r(2), 128);
    k.b.fadd(f(3), f(0), f(1));
    k.b.fadd(f(4), f(3), f(2));
    k.b.fmul(f(5), f(4), f(4));
    k.b.fadd(f(24), f(24), f(5));
    k.outer_end();
    k.build()
}

/// `su2cor` proxy: eight independent load+FP chains per iteration (wide
/// ILP that keeps the IQ full) with an infrequent (~3% taken)
/// data-dependent branch — mispredictions are rare but resolve slowly
/// behind the queued FP work, the paper's queuing-delay story.
pub fn su2cor(base: u64) -> Program {
    const ARRAY: i32 = 0x8000; // 32 KiB, wraps quickly, L2-resident
    let mut k = Kern::new("su2cor");
    k.load_base(r(1), base);
    k.seed(r(8), 0x5c02);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    k.b.slli(r(2), r(21), 6); // a fresh line each iteration
    k.b.andi(r(2), r(2), ARRAY - 64);
    k.b.add(r(2), r(2), r(1));
    // Eight independent lanes.
    for lane in 0..8u8 {
        k.b.push(looseloops_isa::Inst::load(
            looseloops_isa::Opcode::FLdq,
            f(lane),
            r(2),
            (lane as i32) * 8,
        ));
        k.b.fmul(f(8 + lane), f(lane), f(lane));
        k.b.fadd(f(16 + lane), f(16 + lane), f(8 + lane));
    }
    // Rare data-dependent branch (~3% taken).
    k.rand_guard(r(8), r(4), 17, 5, |k| {
        k.b.addi(r(16), r(16), 1);
        k.b.xor(r(17), r(17), r(8));
    });
    k.outer_end();
    k.build()
}

/// `apsi` proxy: the DRA's pathological case, built around the paper's
/// §5.4 insertion-table saturation mechanism.
///
/// Each iteration produces 20 long-reuse values feeding a long *serial* FP
/// chain (ILP is minimal, so pipeline length barely matters — the paper's
/// Figure 4 behaviour). Mid-chain, a value `g` is produced and immediately
/// consumed by a 24-wide burst: ~3 burst consumers land in every cluster
/// and read `g` from the forwarding buffer, decrementing the 2-bit
/// insertion-table counters to zero (increments beyond 3 were lost to
/// saturation). At write-back the zero count says "no consumers in
/// flight", `g` is never cached — and the chain's *late* consumers of `g`
/// take operand-resolution-loop misses whose recovery delays the critical
/// chain directly. The base machine just reads the register file and is
/// unaffected: exactly the paper's "apsi loses under the DRA" story.
pub fn apsi(base: u64) -> Program {
    const K: u8 = 20; // long-reuse values per iteration (f3..f22)
    let mut k = Kern::new("apsi");
    k.load_base(r(1), base);
    k.seed(r(8), 0xa451);
    k.outer_begin();
    k.xorshift(r(8), r(3));
    // Produce the iteration's long-reuse values (cheap, independent).
    for i in 0..K {
        k.b.addi(r(3), r(21), i as i32 + 1);
        k.b.push(looseloops_isa::Inst::op_rr(
            looseloops_isa::Opcode::FCvtIf,
            f(3 + i),
            r(3),
            r(31),
        ));
    }
    // Occasional L2-resident load feeding the chain.
    k.b.slli(r(2), r(21), 3);
    k.b.andi(r(2), r(2), 0xfff8); // 64 KiB
    k.b.add(r(2), r(2), r(1));
    k.b.fldq(f(0), r(2), 0);
    k.b.fadd(f(1), f(1), f(0));
    // The serial chain: 2·K links consuming the values in reverse
    // production order, each twice, plus the `g` mechanism above.
    for link in 0..(2 * K) {
        let v = f(3 + (K - 1 - (link / 2) % K));
        if link % 2 == 0 {
            k.b.fadd(f(1), f(1), v);
        } else {
            k.b.fmul(f(1), f(1), v);
        }
        if link == 3 {
            // g = chain-dependent value, then the saturating burst.
            k.b.fadd(f(23), f(1), v);
            for b in 0..24u8 {
                k.b.fadd(f(24 + b % 4), f(23), f(23));
            }
        }
        if link >= 28 && link % 4 == 0 {
            // Late consumers of g: the forwarding buffer is long past and
            // the CRCs never captured it.
            k.b.fadd(f(1), f(1), f(23));
        }
        if link == 13 || link == 37 {
            // Data-dependent branches (apsi is still a real program).
            let shift = 7 + link as i32;
            k.rand_guard(r(8), r(4), shift, 3, |k| {
                k.b.fadd(f(28), f(28), v);
                k.b.addi(r(16), r(16), 1);
            });
        }
    }
    k.b.fadd(f(30), f(30), f(1));
    k.outer_end();
    k.build()
}
