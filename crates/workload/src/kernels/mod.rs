//! Kernel construction helpers and the per-benchmark kernel functions.
//!
//! Register conventions shared by every kernel:
//!
//! | register | use |
//! |---|---|
//! | `r1`, `r2`  | data-region base, cursor |
//! | `r3`–`r7`   | scratch |
//! | `r8`        | xorshift64 PRNG state |
//! | `r16`–`r19` | integer accumulators |
//! | `r20`       | outer loop counter (2^40 iterations — effectively infinite) |
//! | `r21`       | iteration index |
//! | `f0`–`f7`   | floating-point work |
//! | `f10`–`f21` | per-iteration values (long-reuse operands) |
//!
//! Randomness comes from an in-register xorshift64, so the instruction
//! stream is deterministic and identical across machine configurations —
//! exactly what cross-configuration speedup comparisons need.

pub mod fp;
pub mod int;

use looseloops_isa::{Program, ProgramBuilder, Reg};

/// Integer register shorthand.
pub(crate) fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// Floating-point register shorthand.
pub(crate) fn f(n: u8) -> Reg {
    Reg::fp(n)
}

/// Shared kernel-building idioms on top of [`ProgramBuilder`].
pub(crate) struct Kern {
    pub b: ProgramBuilder,
    labels: u32,
}

impl Kern {
    pub fn new(name: &str) -> Kern {
        Kern {
            b: ProgramBuilder::new(name),
            labels: 0,
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.labels += 1;
        format!("{stem}_{}", self.labels)
    }

    /// Load a large constant `base` (multiple of 1 MiB, < 2^43) into `rd`.
    pub fn load_base(&mut self, rd: Reg, base: u64) {
        assert_eq!(base % (1 << 20), 0, "base must be MiB-aligned");
        assert!(
            base >> 20 <= 0x7f_ffff,
            "base too large for the immediate path"
        );
        self.b.addi(rd, Reg::ZERO, (base >> 20) as i32);
        self.b.slli(rd, rd, 20);
    }

    /// Seed the xorshift64 state in `x`.
    pub fn seed(&mut self, x: Reg, seed: i32) {
        self.b.addi(x, Reg::ZERO, seed);
        self.b.slli(x, x, 13);
        self.b.addi(x, x, seed ^ 0x2f1d);
    }

    /// One xorshift64 step on `x` (`t` is scratch): 6 single-cycle ops.
    pub fn xorshift(&mut self, x: Reg, t: Reg) {
        self.b.slli(t, x, 13);
        self.b.xor(x, x, t);
        self.b.srli(t, x, 7);
        self.b.xor(x, x, t);
        self.b.slli(t, x, 17);
        self.b.xor(x, x, t);
    }

    /// Begin the effectively-infinite outer loop (counter in `r20`).
    pub fn outer_begin(&mut self) {
        self.b.addi(r(20), Reg::ZERO, 1);
        self.b.slli(r(20), r(20), 40);
        self.b.label("outer");
    }

    /// Close the outer loop and emit the (never-reached in measurement)
    /// halt.
    pub fn outer_end(&mut self) {
        self.b.addi(r(21), r(21), 1);
        self.b.subi(r(20), r(20), 1);
        self.b.bne(r(20), "outer");
        self.b.halt();
    }

    /// A data-dependent forward branch: with probability
    /// `1/2^bits` (on uniform PRNG bits) the next `skip` instructions
    /// execute; otherwise they are branched over. Returns after emitting
    /// the test; the caller emits the body and then calls the returned
    /// closure... (simpler: the caller passes the body emitter).
    ///
    /// `shift` selects which PRNG bits decide, so several branches per
    /// iteration stay independent.
    pub fn rand_guard(
        &mut self,
        x: Reg,
        t: Reg,
        shift: i32,
        bits: u32,
        body: impl FnOnce(&mut Kern),
    ) {
        let skip = self.fresh_label("skip");
        self.b.srli(t, x, shift);
        self.b.andi(t, t, (1i32 << bits) - 1);
        // Body runs when the selected bits are all zero (prob 1/2^bits).
        self.b.bne(t, skip.clone());
        body(self);
        self.b.label(skip);
    }

    /// Finish and return the program.
    pub fn build(self) -> Program {
        self.b
            .build()
            .expect("kernel labels are internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::{ArchState, FlatMemory};

    #[test]
    fn helpers_produce_runnable_code() {
        let mut k = Kern::new("helper-test");
        k.load_base(r(1), 16 << 20);
        k.seed(r(8), 12345);
        k.outer_begin();
        k.xorshift(r(8), r(3));
        k.rand_guard(r(8), r(4), 5, 2, |k| {
            k.b.addi(r(16), r(16), 1);
        });
        k.outer_end();
        let prog = k.build();

        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        let summary = st.run(&prog, &mut mem, 50_000).unwrap();
        assert!(!summary.halted, "outer loop must be effectively infinite");
        assert_eq!(st.read_reg(r(1)), 16 << 20);
        // The guarded body fired roughly 1/4 of iterations.
        let iters = st.read_reg(r(21));
        let fired = st.read_reg(r(16));
        assert!(iters > 1000);
        let frac = fired as f64 / iters as f64;
        assert!(
            (0.15..0.35).contains(&frac),
            "guard fired {frac} of iterations"
        );
    }

    #[test]
    fn xorshift_has_no_short_cycle() {
        let mut k = Kern::new("prng");
        k.seed(r(8), 999);
        k.outer_begin();
        k.xorshift(r(8), r(3));
        k.outer_end();
        let prog = k.build();
        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            st.run(&prog, &mut mem, 9).unwrap(); // one iteration
            seen.insert(st.read_reg(r(8)));
        }
        assert!(seen.len() > 190, "PRNG state must not repeat quickly");
    }
}
