//! Architectural→physical register rename map.
//!
//! One map exists per hardware thread. Recovery from mis-speculation uses
//! ROB-walk rollback: each in-flight instruction remembers the previous
//! mapping of its destination ([`RenameMap::rename_dest`] returns it), and a
//! squash walks the killed instructions youngest-first calling
//! [`RenameMap::rollback`].

use crate::freelist::FreeList;
use crate::PhysReg;
use looseloops_isa::reg::NUM_ARCH_REGS;
use looseloops_isa::Reg;

/// Per-thread rename map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameMap {
    map: [PhysReg; NUM_ARCH_REGS as usize],
}

impl RenameMap {
    /// Build the initial map, consuming one physical register per
    /// architectural register from `freelist`.
    ///
    /// # Panics
    ///
    /// Panics if the free list cannot supply 64 registers.
    pub fn new(freelist: &mut FreeList) -> RenameMap {
        let mut map = [PhysReg(0); NUM_ARCH_REGS as usize];
        for slot in map.iter_mut() {
            *slot = freelist
                .alloc()
                .expect("free list too small for initial mappings");
        }
        RenameMap { map }
    }

    /// Current physical register holding `arch`.
    ///
    /// # Panics
    ///
    /// Panics when asked about a zero register — those never rename and the
    /// pipeline must special-case them (sources are stripped by
    /// `Inst::srcs`, destinations by `Inst::dest`).
    pub fn lookup(&self, arch: Reg) -> PhysReg {
        assert!(!arch.is_zero(), "zero registers are not renamed");
        self.map[arch.index()]
    }

    /// Rename a destination: allocate a new physical register for `arch`
    /// and return `(new, previous)`. The previous mapping is what the
    /// instruction frees at retire — or re-installs on rollback.
    ///
    /// Returns `None` when the free list is empty (rename must stall).
    pub fn rename_dest(
        &mut self,
        arch: Reg,
        freelist: &mut FreeList,
    ) -> Option<(PhysReg, PhysReg)> {
        assert!(!arch.is_zero(), "zero registers are not renamed");
        let new = freelist.alloc()?;
        let prev = std::mem::replace(&mut self.map[arch.index()], new);
        Some((new, prev))
    }

    /// Undo a `rename_dest` during squash recovery: re-install `prev` for
    /// `arch` and return the squashed physical register to the free list.
    pub fn rollback(&mut self, arch: Reg, prev: PhysReg, freelist: &mut FreeList) {
        let squashed = std::mem::replace(&mut self.map[arch.index()], prev);
        freelist.release(squashed);
    }

    /// Snapshot the whole map (used by tests and by checkpoint-style
    /// recovery experiments).
    pub fn snapshot(&self) -> RenameMap {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_then_lookup_sees_new_mapping() {
        let mut fl = FreeList::new(128);
        let mut rm = RenameMap::new(&mut fl);
        let r1 = Reg::int(1);
        let before = rm.lookup(r1);
        let (new, prev) = rm.rename_dest(r1, &mut fl).unwrap();
        assert_eq!(prev, before);
        assert_eq!(rm.lookup(r1), new);
        assert_ne!(new, prev);
    }

    #[test]
    fn rollback_restores_and_frees() {
        let mut fl = FreeList::new(128);
        let mut rm = RenameMap::new(&mut fl);
        let r2 = Reg::int(2);
        let orig = rm.lookup(r2);
        let avail = fl.available();
        let (new, prev) = rm.rename_dest(r2, &mut fl).unwrap();
        rm.rollback(r2, prev, &mut fl);
        assert_eq!(rm.lookup(r2), orig);
        assert_eq!(fl.available(), avail);
        // The squashed register is reusable.
        let mut seen_new = false;
        for _ in 0..fl.available() {
            if fl.alloc() == Some(new) {
                seen_new = true;
            }
        }
        assert!(seen_new);
    }

    #[test]
    fn nested_rollbacks_unwind_in_reverse_order() {
        let mut fl = FreeList::new(128);
        let mut rm = RenameMap::new(&mut fl);
        let r = Reg::int(3);
        let p0 = rm.lookup(r);
        let (_p1, prev1) = rm.rename_dest(r, &mut fl).unwrap();
        let (_p2, prev2) = rm.rename_dest(r, &mut fl).unwrap();
        // Squash youngest first.
        rm.rollback(r, prev2, &mut fl);
        rm.rollback(r, prev1, &mut fl);
        assert_eq!(rm.lookup(r), p0);
    }

    #[test]
    fn rename_stalls_on_empty_free_list() {
        let mut fl = FreeList::new(64); // exactly the initial mappings
        let mut rm = RenameMap::new(&mut fl);
        assert!(rm.rename_dest(Reg::int(1), &mut fl).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_register_lookup_panics() {
        let mut fl = FreeList::new(128);
        let rm = RenameMap::new(&mut fl);
        let _ = rm.lookup(Reg::ZERO);
    }
}
