//! Per-cluster insertion table — paper §5.3.
//!
//! One table per functional-unit cluster; one 2-bit saturating counter per
//! physical register. The counter tracks how many *outstanding* consumers
//! slotted to this cluster have not yet obtained the operand:
//!
//! - **increment** when rename sends a not-yet-completed source register
//!   number for an instruction slotted here (saturating at 3);
//! - **decrement** when the operand is read from the forwarding buffer by a
//!   consumer in this cluster;
//! - at register-file write-back, a **non-zero** count means consumers are
//!   still in flight: the value is inserted into this cluster's register
//!   cache and the counter cleared.
//!
//! Saturation at 3 is a deliberate fidelity point: the paper's §5.4
//! explains that an operand with more than three consumers on one cluster
//! under-counts, the counter reaches zero early, the value is *not*
//! cached, and later consumers take an operand miss.

use crate::PhysReg;

/// Maximum trackable consumers per operand per cluster (2-bit counters).
pub const MAX_CONSUMERS: u8 = 3;

/// 2-bit outstanding-consumer counters, one per physical register.
#[derive(Debug, Clone)]
pub struct InsertionTable {
    counts: Vec<u8>,
    saturations: u64,
}

impl InsertionTable {
    /// A table over `total` physical registers, all counters zero.
    pub fn new(total: usize) -> InsertionTable {
        InsertionTable {
            counts: vec![0; total],
            saturations: 0,
        }
    }

    /// Current count for `r`.
    pub fn count(&self, r: PhysReg) -> u8 {
        self.counts[r.index()]
    }

    /// A consumer of `r` slotted to this cluster was renamed. Saturates at
    /// [`MAX_CONSUMERS`]; returns `false` (and records the event) when the
    /// increment was lost to saturation.
    pub fn increment(&mut self, r: PhysReg) -> bool {
        let c = &mut self.counts[r.index()];
        if *c >= MAX_CONSUMERS {
            self.saturations += 1;
            false
        } else {
            *c += 1;
            true
        }
    }

    /// A consumer in this cluster read `r` from the forwarding buffer.
    pub fn decrement(&mut self, r: PhysReg) {
        let c = &mut self.counts[r.index()];
        *c = c.saturating_sub(1);
    }

    /// At write-back: should this cluster's register cache capture `r`?
    /// Clears the counter either way (the table hands responsibility to the
    /// CRC).
    pub fn take_at_writeback(&mut self, r: PhysReg) -> bool {
        let c = &mut self.counts[r.index()];
        let needed = *c > 0;
        *c = 0;
        needed
    }

    /// Clear the counter (physical-register reallocation).
    pub fn clear(&mut self, r: PhysReg) {
        self.counts[r.index()] = 0;
    }

    /// How many increments were lost to 2-bit saturation (a source of
    /// operand misses — paper §5.4).
    pub fn saturation_events(&self) -> u64 {
        self.saturations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_up_and_down() {
        let mut t = InsertionTable::new(8);
        let r = PhysReg(2);
        assert!(t.increment(r));
        assert!(t.increment(r));
        assert_eq!(t.count(r), 2);
        t.decrement(r);
        assert_eq!(t.count(r), 1);
    }

    #[test]
    fn saturates_at_three() {
        let mut t = InsertionTable::new(8);
        let r = PhysReg(0);
        assert!(t.increment(r));
        assert!(t.increment(r));
        assert!(t.increment(r));
        assert!(!t.increment(r), "fourth consumer is lost");
        assert_eq!(t.count(r), 3);
        assert_eq!(t.saturation_events(), 1);
    }

    #[test]
    fn decrement_floors_at_zero() {
        let mut t = InsertionTable::new(8);
        t.decrement(PhysReg(1));
        assert_eq!(t.count(PhysReg(1)), 0);
    }

    #[test]
    fn writeback_capture_protocol() {
        let mut t = InsertionTable::new(8);
        let r = PhysReg(3);
        assert!(!t.take_at_writeback(r), "no consumers → discard");
        t.increment(r);
        assert!(t.take_at_writeback(r), "outstanding consumer → cache it");
        assert_eq!(t.count(r), 0, "counter cleared after capture");
    }

    #[test]
    fn clear_on_reallocation() {
        let mut t = InsertionTable::new(8);
        t.increment(PhysReg(4));
        t.clear(PhysReg(4));
        assert_eq!(t.count(PhysReg(4)), 0);
    }
}
