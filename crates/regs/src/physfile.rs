//! The monolithic physical register file.
//!
//! In the paper's base machine this is the structure whose 3–7-cycle access
//! sits on the IQ→EX path; the DRA's whole point is to move reads of it off
//! that path. The file itself just tracks values and readiness — access
//! *latency* is charged by the pipeline, which knows which path the read
//! takes.

use crate::PhysReg;

/// Value + readiness storage for all physical registers.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
    writes: u64,
    reads: u64,
}

impl PhysRegFile {
    /// A file of `total` registers, all zero and **ready** (fresh initial
    /// mappings read as architectural zeros).
    pub fn new(total: usize) -> PhysRegFile {
        PhysRegFile {
            values: vec![0; total],
            ready: vec![true; total],
            writes: 0,
            reads: 0,
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the file has no registers (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read a register's value.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the register is not ready — the pipeline
    /// must never architecturally read an in-flight register.
    pub fn read(&mut self, r: PhysReg) -> u64 {
        debug_assert!(self.ready[r.index()], "read of not-ready {r}");
        self.reads += 1;
        self.values[r.index()]
    }

    /// Write a value and mark the register ready.
    pub fn write(&mut self, r: PhysReg, val: u64) {
        self.writes += 1;
        self.values[r.index()] = val;
        self.ready[r.index()] = true;
    }

    /// Is the value present (producer has written back)?
    pub fn is_ready(&self, r: PhysReg) -> bool {
        self.ready[r.index()]
    }

    /// Mark a freshly allocated register not-ready (called at rename).
    pub fn mark_allocated(&mut self, r: PhysReg) {
        self.ready[r.index()] = false;
    }

    /// Mark ready without changing the value (squash rollback: the old
    /// producer's value is still architecturally current).
    pub fn mark_ready(&mut self, r: PhysReg) {
        self.ready[r.index()] = true;
    }

    /// (reads, writes) performed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_ready_and_zero() {
        let mut f = PhysRegFile::new(8);
        assert_eq!(f.len(), 8);
        assert!(f.is_ready(PhysReg(3)));
        assert_eq!(f.read(PhysReg(3)), 0);
    }

    #[test]
    fn allocate_write_read_cycle() {
        let mut f = PhysRegFile::new(8);
        let r = PhysReg(5);
        f.mark_allocated(r);
        assert!(!f.is_ready(r));
        f.write(r, 42);
        assert!(f.is_ready(r));
        assert_eq!(f.read(r), 42);
        assert_eq!(f.stats(), (1, 1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn reading_inflight_register_panics() {
        let mut f = PhysRegFile::new(4);
        f.mark_allocated(PhysReg(1));
        let _ = f.read(PhysReg(1));
    }

    #[test]
    fn mark_ready_preserves_value() {
        let mut f = PhysRegFile::new(4);
        f.write(PhysReg(2), 7);
        f.mark_allocated(PhysReg(2));
        f.mark_ready(PhysReg(2));
        assert_eq!(f.read(PhysReg(2)), 7);
    }
}
