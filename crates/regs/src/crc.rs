//! Cluster register cache (CRC) — paper §5.1.
//!
//! One 16-entry, fully-associative register cache per functional-unit
//! cluster, placed next to the cluster to keep access at a single cycle.
//! Replacement is plain FIFO: the paper found that smarter policies gain
//! almost nothing because most register values are read once. Stale values
//! are impossible by construction: physical-register reallocation
//! invalidates matching entries (paper §5.5).

use crate::PhysReg;
use std::collections::VecDeque;

/// CRC replacement policy. The paper uses FIFO and reports that smarter
/// policies ("almost perfect knowledge of which values were needed") gain
/// almost nothing — [`CrcPolicy::Lru`] exists to check that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrcPolicy {
    /// Plain insertion-order eviction (the paper's choice).
    #[default]
    Fifo,
    /// Hits refresh recency; the least-recently-used entry evicts.
    Lru,
}

/// A small FIFO (or LRU) register cache for one cluster.
#[derive(Debug, Clone)]
pub struct ClusterRegCache {
    entries: VecDeque<(PhysReg, u64)>,
    capacity: usize,
    policy: CrcPolicy,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ClusterRegCache {
    /// A FIFO CRC holding `capacity` values (the paper uses 16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ClusterRegCache {
        ClusterRegCache::with_policy(capacity, CrcPolicy::Fifo)
    }

    /// A CRC with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: CrcPolicy) -> ClusterRegCache {
        assert!(capacity > 0, "CRC capacity must be positive");
        ClusterRegCache {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            policy,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no values are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a value at write-back. FIFO-evicts the oldest entry when
    /// full; re-inserting an already-present register refreshes its value
    /// in place (it keeps its FIFO position — the hardware would simply
    /// rewrite the CAM row).
    pub fn insert(&mut self, r: PhysReg, value: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(reg, _)| *reg == r) {
            e.1 = value;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back((r, value));
    }

    /// Associative lookup. A hit **consumes nothing**: values may be read
    /// by several consumers before replacement pressure pushes them out.
    /// Under [`CrcPolicy::Lru`], a hit refreshes the entry's recency.
    pub fn lookup(&mut self, r: PhysReg) -> Option<u64> {
        match self.entries.iter().position(|(reg, _)| *reg == r) {
            Some(i) => {
                self.hits += 1;
                let v = self.entries[i].1;
                if self.policy == CrcPolicy::Lru {
                    let e = self.entries.remove(i).expect("present");
                    self.entries.push_back(e);
                }
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-counting lookup.
    pub fn probe(&self, r: PhysReg) -> Option<u64> {
        self.entries
            .iter()
            .find(|(reg, _)| *reg == r)
            .map(|&(_, v)| v)
    }

    /// Iterate resident `(register, value)` pairs in replacement order
    /// (used by the pipeline's invariant auditor).
    pub fn entries(&self) -> impl Iterator<Item = (PhysReg, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Invalidate any entry for `r` (physical-register reallocation — the
    /// paper's stale-value rule, §5.5).
    pub fn invalidate(&mut self, r: PhysReg) {
        self.entries.retain(|(reg, _)| *reg != r);
    }

    /// (hits, misses, fifo evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_hits_refresh_recency() {
        let mut c = ClusterRegCache::with_policy(2, CrcPolicy::Lru);
        c.insert(PhysReg(1), 1);
        c.insert(PhysReg(2), 2);
        assert_eq!(c.lookup(PhysReg(1)), Some(1)); // refresh 1
        c.insert(PhysReg(3), 3); // evicts 2, not 1
        assert_eq!(c.probe(PhysReg(1)), Some(1));
        assert_eq!(c.probe(PhysReg(2)), None);
    }

    #[test]
    fn fifo_hits_do_not_refresh() {
        let mut c = ClusterRegCache::new(2);
        c.insert(PhysReg(1), 1);
        c.insert(PhysReg(2), 2);
        assert_eq!(c.lookup(PhysReg(1)), Some(1));
        c.insert(PhysReg(3), 3); // evicts 1 regardless of the hit
        assert_eq!(c.probe(PhysReg(1)), None);
        assert_eq!(c.probe(PhysReg(2)), Some(2));
    }

    #[test]
    fn insert_lookup() {
        let mut c = ClusterRegCache::new(4);
        c.insert(PhysReg(1), 10);
        assert_eq!(c.lookup(PhysReg(1)), Some(10));
        assert_eq!(c.lookup(PhysReg(2)), None);
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn fifo_eviction_order() {
        let mut c = ClusterRegCache::new(2);
        c.insert(PhysReg(1), 1);
        c.insert(PhysReg(2), 2);
        c.insert(PhysReg(3), 3); // evicts PhysReg(1)
        assert_eq!(c.probe(PhysReg(1)), None);
        assert_eq!(c.probe(PhysReg(2)), Some(2));
        assert_eq!(c.probe(PhysReg(3)), Some(3));
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn lookups_do_not_consume() {
        let mut c = ClusterRegCache::new(2);
        c.insert(PhysReg(1), 7);
        assert_eq!(c.lookup(PhysReg(1)), Some(7));
        assert_eq!(c.lookup(PhysReg(1)), Some(7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = ClusterRegCache::new(2);
        c.insert(PhysReg(1), 1);
        c.insert(PhysReg(2), 2);
        c.insert(PhysReg(1), 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.probe(PhysReg(1)), Some(11));
        // PhysReg(1) kept its FIFO slot: next insert evicts it first.
        c.insert(PhysReg(3), 3);
        assert_eq!(c.probe(PhysReg(1)), None);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = ClusterRegCache::new(4);
        c.insert(PhysReg(5), 50);
        c.invalidate(PhysReg(5));
        assert_eq!(c.probe(PhysReg(5)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = ClusterRegCache::new(16);
        for i in 0..32 {
            c.insert(PhysReg(i), i as u64);
        }
        assert_eq!(c.len(), 16);
        assert_eq!(c.capacity(), 16);
        // Oldest half evicted.
        assert_eq!(c.probe(PhysReg(15)), None);
        assert_eq!(c.probe(PhysReg(16)), Some(16));
    }
}
