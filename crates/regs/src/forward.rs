//! The forwarding buffer.
//!
//! Paper §2.2.1: "The base model contains a forwarding buffer which retains
//! results for instructions executed in the last 9 cycles" — five cycles to
//! cover long-latency operations and limit register-file write ports, four
//! more to cover the write-back wire delay. A hit here is the paper's
//! *timely operand* class; the buffer is what turns the execute→RF-write
//! loose loop into a tight loop.

use crate::PhysReg;

/// `cycles` sentinel for "no live entry".
const EMPTY: u64 = u64::MAX;

/// Sliding-window result store: `(physical register → value)` for results
/// produced in the last `window` cycles.
///
/// Layout is chosen for the simulator's per-cycle hot paths: lookups index
/// dense per-preg arrays (rename guarantees one live producer per preg, so
/// this is an exact CAM model), and the write-back traffic for a cycle is
/// kept in a small ring of per-cycle buckets so [`expiring_into`] touches
/// only the results actually leaving the buffer instead of scanning every
/// resident entry. Eviction is a watermark, not a sweep: entries older than
/// the last [`evict_expired`] call stop matching without being visited.
///
/// [`expiring_into`]: ForwardingBuffer::expiring_into
/// [`evict_expired`]: ForwardingBuffer::evict_expired
#[derive(Debug, Clone)]
pub struct ForwardingBuffer {
    window: u64,
    /// Produced cycle per preg (`EMPTY` = no entry). Grown on demand.
    cycles: Vec<u64>,
    /// Value per preg; valid only where `cycles` is live.
    values: Vec<u64>,
    /// Entries produced before this cycle are evicted (never match).
    watermark: u64,
    /// Per-cycle write-back buckets: pregs whose producer wrote in the
    /// tagged cycle. A bucket may hold stale pregs (re-inserted or
    /// invalidated since); readers re-validate against `cycles`.
    buckets: Vec<Vec<PhysReg>>,
    /// The cycle each bucket currently holds (`EMPTY` = untouched).
    bucket_cycle: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl ForwardingBuffer {
    /// A buffer retaining results for `window` cycles (the paper uses 9).
    /// Per-preg storage grows on demand; use
    /// [`ForwardingBuffer::with_regs`] to pre-size it.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> ForwardingBuffer {
        ForwardingBuffer::with_regs(window, 0)
    }

    /// A buffer retaining results for `window` cycles, pre-sized for
    /// `nregs` physical registers so steady-state operation never
    /// allocates.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_regs(window: u64, nregs: usize) -> ForwardingBuffer {
        assert!(window > 0, "forwarding window must be positive");
        // A result is visible for `window` cycles and reported once more as
        // it expires, so distinct live cycles never collide in the ring.
        let ring = (window + 2) as usize;
        ForwardingBuffer {
            window,
            cycles: vec![EMPTY; nregs],
            values: vec![0; nregs],
            watermark: 0,
            buckets: vec![Vec::new(); ring],
            bucket_cycle: vec![EMPTY; ring],
            hits: 0,
            misses: 0,
        }
    }

    /// The retention window in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    #[inline]
    fn ensure_reg(&mut self, r: PhysReg) {
        let need = r.index() + 1;
        if self.cycles.len() < need {
            self.cycles.resize(need, EMPTY);
            self.values.resize(need, 0);
        }
    }

    /// Record a result produced at `cycle`.
    pub fn insert(&mut self, r: PhysReg, value: u64, cycle: u64) {
        self.ensure_reg(r);
        let idx = (cycle % self.buckets.len() as u64) as usize;
        if self.bucket_cycle[idx] != cycle {
            self.bucket_cycle[idx] = cycle;
            self.buckets[idx].clear();
        }
        // Same-preg same-cycle re-insert only updates the value.
        if self.cycles[r.index()] != cycle {
            self.buckets[idx].push(r);
        }
        self.cycles[r.index()] = cycle;
        self.values[r.index()] = value;
    }

    #[inline]
    fn live_value(&self, r: PhysReg, now: u64) -> Option<u64> {
        let cycle = *self.cycles.get(r.index())?;
        if cycle != EMPTY && cycle >= self.watermark && now >= cycle && now - cycle < self.window {
            Some(self.values[r.index()])
        } else {
            None
        }
    }

    /// Look up `r` at `now`: a hit if its producer wrote within the window
    /// (strictly fewer than `window` cycles ago, counting the producing
    /// cycle itself).
    #[inline]
    pub fn lookup(&mut self, r: PhysReg, now: u64) -> Option<u64> {
        let v = self.live_value(r, now);
        match v {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        v
    }

    /// Non-counting lookup for diagnostics and the insertion-table protocol
    /// (checking whether a value is *about to leave* the buffer).
    #[inline]
    pub fn probe(&self, r: PhysReg, now: u64) -> Option<u64> {
        self.live_value(r, now)
    }

    /// Values whose retention expires exactly at `now` — i.e. results
    /// written back to the register file this cycle. The DRA snoops this
    /// write-back traffic to fill the cluster register caches.
    pub fn expiring(&self, now: u64) -> Vec<(PhysReg, u64)> {
        let mut v = Vec::new();
        self.expiring_into(now, &mut v);
        v
    }

    /// [`ForwardingBuffer::expiring`] into a caller-owned buffer (cleared
    /// first), so the per-cycle write-back snoop allocates nothing.
    pub fn expiring_into(&self, now: u64, out: &mut Vec<(PhysReg, u64)>) {
        out.clear();
        let Some(c) = now.checked_sub(self.window) else {
            return;
        };
        if c < self.watermark {
            return;
        }
        let idx = (c % self.buckets.len() as u64) as usize;
        if self.bucket_cycle[idx] != c {
            return;
        }
        for &r in &self.buckets[idx] {
            // Skip pregs re-inserted or invalidated since the bucket push.
            if self.cycles[r.index()] == c {
                out.push((r, self.values[r.index()]));
            }
        }
        out.sort_unstable_by_key(|(r, _)| *r);
        out.dedup_by_key(|(r, _)| *r);
    }

    /// The earliest cycle `>= now` at which [`ForwardingBuffer::expiring`]
    /// would report a non-empty write-back set, or `None` when no resident
    /// entry has a pending expiry. Used by the quiescence-skip logic: the
    /// clock must not jump past a write-back event (the DRA and the RPFT
    /// snoop that traffic).
    pub fn next_expiry(&self, now: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        for (idx, &c) in self.bucket_cycle.iter().enumerate() {
            if c == EMPTY || c < self.watermark {
                continue;
            }
            let at = c + self.window;
            if at < now || best.is_some_and(|b| at >= b) {
                continue;
            }
            // The bucket may hold only stale pregs (re-inserted or
            // invalidated since); an expiry only fires if some entry is
            // still live for the bucket's cycle.
            if self.buckets[idx]
                .iter()
                .any(|r| self.cycles[r.index()] == c)
            {
                best = Some(at);
            }
        }
        best
    }

    /// Drop entries older than the window (housekeeping). Call once per
    /// cycle after `expiring`. O(1): advances the eviction watermark; stale
    /// entries stop matching without being visited.
    #[inline]
    pub fn evict_expired(&mut self, now: u64) {
        let floor = now.saturating_sub(self.window);
        self.watermark = self.watermark.max(floor);
    }

    /// Invalidate any entry for `r` (physical-register reallocation; a new
    /// consumer must never see the previous incarnation's value).
    #[inline]
    pub fn invalidate(&mut self, r: PhysReg) {
        if let Some(c) = self.cycles.get_mut(r.index()) {
            *c = EMPTY;
        }
    }

    /// Clear everything (full squash of a thread does **not** require this —
    /// values remain architecturally correct — but tests use it).
    pub fn clear(&mut self) {
        self.cycles.fill(EMPTY);
        for b in &mut self.buckets {
            b.clear();
        }
        self.bucket_cycle.fill(EMPTY);
    }

    /// (hits, misses) among counted lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_window_miss_after() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 42, 100);
        assert_eq!(f.lookup(PhysReg(1), 100), Some(42));
        assert_eq!(f.lookup(PhysReg(1), 108), Some(42));
        assert_eq!(f.lookup(PhysReg(1), 109), None);
        assert_eq!(f.stats(), (2, 1));
    }

    #[test]
    fn reinsert_refreshes_window() {
        let mut f = ForwardingBuffer::new(4);
        f.insert(PhysReg(2), 1, 10);
        f.insert(PhysReg(2), 2, 13);
        assert_eq!(f.lookup(PhysReg(2), 16), Some(2));
    }

    #[test]
    fn expiring_reports_writeback_traffic() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 11, 100);
        f.insert(PhysReg(2), 22, 101);
        assert_eq!(f.expiring(109), vec![(PhysReg(1), 11)]);
        assert_eq!(f.expiring(110), vec![(PhysReg(2), 22)]);
        assert!(
            f.expiring(111).is_empty(),
            "only reported at the exact boundary"
        );
    }

    #[test]
    fn expiring_skips_refreshed_and_invalidated_entries() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 11, 100);
        f.insert(PhysReg(2), 22, 100);
        f.insert(PhysReg(3), 33, 100);
        f.insert(PhysReg(1), 12, 104); // refreshed: expires later
        f.invalidate(PhysReg(2)); // reallocated: never written back
        assert_eq!(f.expiring(109), vec![(PhysReg(3), 33)]);
        assert_eq!(f.expiring(113), vec![(PhysReg(1), 12)]);
    }

    #[test]
    fn expiring_into_reuses_buffer_without_allocating() {
        let mut f = ForwardingBuffer::with_regs(9, 8);
        f.insert(PhysReg(5), 55, 40);
        let mut out = Vec::with_capacity(4);
        out.push((PhysReg(0), 999)); // must be cleared
        f.expiring_into(49, &mut out);
        assert_eq!(out, vec![(PhysReg(5), 55)]);
        f.expiring_into(50, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn evict_expired_removes_stale_entries() {
        let mut f = ForwardingBuffer::new(2);
        f.insert(PhysReg(1), 5, 0);
        f.evict_expired(10);
        assert!(f.probe(PhysReg(1), 1).is_none());
    }

    #[test]
    fn invalidate_on_reallocation() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(7), 99, 50);
        f.invalidate(PhysReg(7));
        assert_eq!(f.lookup(PhysReg(7), 51), None);
    }

    #[test]
    fn next_expiry_finds_the_earliest_pending_writeback() {
        let mut f = ForwardingBuffer::new(9);
        assert_eq!(f.next_expiry(0), None);
        f.insert(PhysReg(1), 11, 100);
        f.insert(PhysReg(2), 22, 103);
        assert_eq!(f.next_expiry(100), Some(109));
        assert_eq!(f.next_expiry(109), Some(109), "inclusive at the boundary");
        assert_eq!(f.next_expiry(110), Some(112), "past expiries are skipped");
        assert_eq!(f.next_expiry(113), None);
    }

    #[test]
    fn next_expiry_ignores_stale_and_evicted_entries() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 11, 100);
        f.insert(PhysReg(2), 22, 101);
        f.insert(PhysReg(1), 12, 104); // refreshed: old bucket entry stale
        f.invalidate(PhysReg(2)); // reallocated: never expires
        assert_eq!(f.next_expiry(100), Some(113));
        f.evict_expired(114); // watermark past every producer cycle
        assert_eq!(f.next_expiry(100), None);
    }

    #[test]
    fn next_expiry_agrees_with_expiring() {
        let mut f = ForwardingBuffer::new(4);
        f.insert(PhysReg(1), 1, 10);
        f.insert(PhysReg(3), 3, 12);
        f.insert(PhysReg(5), 5, 12);
        let mut now = 10;
        while let Some(at) = f.next_expiry(now) {
            for c in now..at {
                assert!(f.expiring(c).is_empty(), "no write-back before {at}");
            }
            assert!(!f.expiring(at).is_empty(), "write-back fires at {at}");
            now = at + 1;
        }
        assert!(f.expiring(now).is_empty());
    }

    #[test]
    fn probe_does_not_count() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 1, 0);
        let _ = f.probe(PhysReg(1), 0);
        assert_eq!(f.stats(), (0, 0));
    }
}
