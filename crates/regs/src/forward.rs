//! The forwarding buffer.
//!
//! Paper §2.2.1: "The base model contains a forwarding buffer which retains
//! results for instructions executed in the last 9 cycles" — five cycles to
//! cover long-latency operations and limit register-file write ports, four
//! more to cover the write-back wire delay. A hit here is the paper's
//! *timely operand* class; the buffer is what turns the execute→RF-write
//! loose loop into a tight loop.

use crate::PhysReg;
use std::collections::HashMap;

/// Sliding-window result store: `(physical register → value)` for results
/// produced in the last `window` cycles.
#[derive(Debug, Clone)]
pub struct ForwardingBuffer {
    window: u64,
    // preg -> (produced_cycle, value). One producer can be live per preg at
    // a time (rename guarantees it), so a map is an exact CAM model.
    entries: HashMap<PhysReg, (u64, u64)>,
    hits: u64,
    misses: u64,
}

impl ForwardingBuffer {
    /// A buffer retaining results for `window` cycles (the paper uses 9).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> ForwardingBuffer {
        assert!(window > 0, "forwarding window must be positive");
        ForwardingBuffer {
            window,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The retention window in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Record a result produced at `cycle`.
    pub fn insert(&mut self, r: PhysReg, value: u64, cycle: u64) {
        self.entries.insert(r, (cycle, value));
    }

    /// Look up `r` at `now`: a hit if its producer wrote within the window
    /// (strictly fewer than `window` cycles ago, counting the producing
    /// cycle itself).
    pub fn lookup(&mut self, r: PhysReg, now: u64) -> Option<u64> {
        match self.entries.get(&r) {
            Some(&(cycle, value)) if now >= cycle && now - cycle < self.window => {
                self.hits += 1;
                Some(value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-counting lookup for diagnostics and the insertion-table protocol
    /// (checking whether a value is *about to leave* the buffer).
    pub fn probe(&self, r: PhysReg, now: u64) -> Option<u64> {
        match self.entries.get(&r) {
            Some(&(cycle, value)) if now >= cycle && now - cycle < self.window => Some(value),
            _ => None,
        }
    }

    /// Values whose retention expires exactly at `now` — i.e. results
    /// written back to the register file this cycle. The DRA snoops this
    /// write-back traffic to fill the cluster register caches.
    pub fn expiring(&self, now: u64) -> Vec<(PhysReg, u64)> {
        let mut v: Vec<(PhysReg, u64)> = self
            .entries
            .iter()
            .filter(|(_, &(cycle, _))| now.saturating_sub(cycle) == self.window)
            .map(|(&r, &(_, value))| (r, value))
            .collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    /// Drop entries older than the window (housekeeping; also keeps
    /// `expiring` cheap). Call once per cycle after `expiring`.
    pub fn evict_expired(&mut self, now: u64) {
        let w = self.window;
        self.entries
            .retain(|_, &mut (cycle, _)| now.saturating_sub(cycle) <= w);
    }

    /// Invalidate any entry for `r` (physical-register reallocation; a new
    /// consumer must never see the previous incarnation's value).
    pub fn invalidate(&mut self, r: PhysReg) {
        self.entries.remove(&r);
    }

    /// Clear everything (full squash of a thread does **not** require this —
    /// values remain architecturally correct — but tests use it).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// (hits, misses) among counted lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_window_miss_after() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 42, 100);
        assert_eq!(f.lookup(PhysReg(1), 100), Some(42));
        assert_eq!(f.lookup(PhysReg(1), 108), Some(42));
        assert_eq!(f.lookup(PhysReg(1), 109), None);
        assert_eq!(f.stats(), (2, 1));
    }

    #[test]
    fn reinsert_refreshes_window() {
        let mut f = ForwardingBuffer::new(4);
        f.insert(PhysReg(2), 1, 10);
        f.insert(PhysReg(2), 2, 13);
        assert_eq!(f.lookup(PhysReg(2), 16), Some(2));
    }

    #[test]
    fn expiring_reports_writeback_traffic() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 11, 100);
        f.insert(PhysReg(2), 22, 101);
        assert_eq!(f.expiring(109), vec![(PhysReg(1), 11)]);
        assert_eq!(f.expiring(110), vec![(PhysReg(2), 22)]);
        assert!(
            f.expiring(111).is_empty(),
            "only reported at the exact boundary"
        );
    }

    #[test]
    fn evict_expired_removes_stale_entries() {
        let mut f = ForwardingBuffer::new(2);
        f.insert(PhysReg(1), 5, 0);
        f.evict_expired(10);
        assert!(f.probe(PhysReg(1), 1).is_none());
    }

    #[test]
    fn invalidate_on_reallocation() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(7), 99, 50);
        f.invalidate(PhysReg(7));
        assert_eq!(f.lookup(PhysReg(7), 51), None);
    }

    #[test]
    fn probe_does_not_count() {
        let mut f = ForwardingBuffer::new(9);
        f.insert(PhysReg(1), 1, 0);
        let _ = f.probe(PhysReg(1), 0);
        assert_eq!(f.stats(), (0, 0));
    }
}
