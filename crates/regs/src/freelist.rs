//! Physical-register free list.

use crate::PhysReg;

/// LIFO free list of physical registers.
///
/// Registers are handed out at rename and returned at retire (or on a
/// squash, when speculative allocations are rolled back). The list starts
/// full: every physical register except those consumed by the initial
/// architectural mappings is free.
#[derive(Debug, Clone)]
pub struct FreeList {
    free: Vec<PhysReg>,
    total: usize,
}

impl FreeList {
    /// A free list over `total` physical registers, all initially free.
    pub fn new(total: usize) -> FreeList {
        assert!(
            total > 0 && total <= u16::MAX as usize,
            "bad physical register count"
        );
        FreeList {
            free: (0..total as u16).rev().map(PhysReg).collect(),
            total,
        }
    }

    /// Allocate a register, or `None` if the pool is exhausted (the pipeline
    /// stalls rename in that case).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        self.free.pop()
    }

    /// Return a register to the pool.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on double-free.
    pub fn release(&mut self, r: PhysReg) {
        debug_assert!(!self.free.contains(&r), "double free of {r}");
        debug_assert!(r.index() < self.total, "{r} outside pool");
        self.free.push(r);
    }

    /// Number of currently free registers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total pool size.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_conserves_pool() {
        let mut f = FreeList::new(8);
        assert_eq!(f.available(), 8);
        let a = f.alloc().unwrap();
        let b = f.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(f.available(), 6);
        f.release(a);
        f.release(b);
        assert_eq!(f.available(), 8);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut f = FreeList::new(2);
        assert!(f.alloc().is_some());
        assert!(f.alloc().is_some());
        assert!(f.alloc().is_none());
    }

    #[test]
    fn allocations_are_unique_until_released() {
        let mut f = FreeList::new(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(f.alloc().unwrap()));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn double_free_panics_in_debug() {
        let mut f = FreeList::new(4);
        let a = f.alloc().unwrap();
        f.release(a);
        f.release(a);
    }
}
