//! Register pre-read filtering table (RPFT) — paper §5.2.
//!
//! One bit per physical register. Set ⇒ the value is present in the
//! register file and may be *pre-read* during DEC-IQ (the paper's
//! *completed operand* class). The bit is set when a value is written back
//! to the register file and cleared when the renamer allocates the register
//! to a new producer.

use crate::PhysReg;

/// 1-bit-per-physical-register validity table.
#[derive(Debug, Clone)]
pub struct Rpft {
    valid: Vec<bool>,
}

impl Rpft {
    /// A table over `total` physical registers, all initially valid (the
    /// initial architectural mappings hold committed zeros).
    pub fn new(total: usize) -> Rpft {
        Rpft {
            valid: vec![true; total],
        }
    }

    /// May `r` be pre-read from the register file right now?
    pub fn can_preread(&self, r: PhysReg) -> bool {
        self.valid[r.index()]
    }

    /// The renamer allocated `r` to an in-flight producer: clear validity.
    pub fn on_allocate(&mut self, r: PhysReg) {
        self.valid[r.index()] = false;
    }

    /// `r`'s value was written back to the register file: set validity.
    pub fn on_writeback(&mut self, r: PhysReg) {
        self.valid[r.index()] = true;
    }

    /// Squash rollback: the allocation is undone, and the *previous* value
    /// in the register file is current again.
    pub fn on_rollback(&mut self, r: PhysReg) {
        self.valid[r.index()] = true;
    }

    /// Number of currently valid (pre-readable) registers.
    pub fn valid_count(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = Rpft::new(8);
        let r = PhysReg(3);
        assert!(t.can_preread(r));
        t.on_allocate(r);
        assert!(!t.can_preread(r));
        t.on_writeback(r);
        assert!(t.can_preread(r));
    }

    #[test]
    fn rollback_restores_validity() {
        let mut t = Rpft::new(8);
        let r = PhysReg(1);
        t.on_allocate(r);
        t.on_rollback(r);
        assert!(t.can_preread(r));
    }

    #[test]
    fn valid_count_tracks() {
        let mut t = Rpft::new(4);
        assert_eq!(t.valid_count(), 4);
        t.on_allocate(PhysReg(0));
        t.on_allocate(PhysReg(1));
        assert_eq!(t.valid_count(), 2);
    }
}
