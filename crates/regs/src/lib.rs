//! Register machinery for the *Loose Loops* reproduction.
//!
//! Two groups of structures live here:
//!
//! **Baseline machine** (paper §2): [`FreeList`] + [`RenameMap`] register
//! renaming, the [`PhysRegFile`] (monolithic, fully ported, multi-cycle
//! access), and the [`ForwardingBuffer`] that turns the
//! execute→register-write loose loop into a tight loop by retaining the
//! last nine cycles of results.
//!
//! **Distributed Register Algorithm** (paper §4–5): the
//! [`Rpft`] (register pre-read filtering table: one valid bit per physical
//! register), one [`InsertionTable`] per functional-unit cluster (2-bit
//! outstanding-consumer counters), and one [`ClusterRegCache`] per cluster
//! (16-entry FIFO register cache).
//!
//! The pipeline crate wires these together; this crate owns the structure
//! semantics and their invariants.

pub mod crc;
pub mod forward;
pub mod freelist;
pub mod insertion;
pub mod physfile;
pub mod rename;
pub mod rpft;

pub use crc::{ClusterRegCache, CrcPolicy};
pub use forward::ForwardingBuffer;
pub use freelist::FreeList;
pub use insertion::InsertionTable;
pub use physfile::PhysRegFile;
pub use rename::RenameMap;
pub use rpft::Rpft;

use std::fmt;

/// A physical register name.
///
/// Physical registers are allocated from the [`FreeList`] at rename and
/// reclaimed at retire (when the previous mapping of the same architectural
/// register retires past).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
