//! Randomized property tests for the register machinery: conservation laws
//! and reference-model equivalence for the DRA structures, driven by a
//! deterministic seed schedule from `looseloops-rng`.

use looseloops_regs::{ClusterRegCache, ForwardingBuffer, FreeList, PhysReg, RenameMap};
use looseloops_rng::Rng;
use std::collections::VecDeque;

/// Free-list conservation: allocations + available == total, always;
/// rollback and release restore exactly.
#[test]
fn freelist_conserves_registers() {
    let mut rng = Rng::seed_from_u64(0x4e61);
    for _ in 0..64 {
        let total = 64;
        let mut fl = FreeList::new(total);
        let mut held = Vec::new();
        let steps = rng.gen_range(1usize..200);
        for _ in 0..steps {
            if rng.gen_bool(0.5) {
                if let Some(r) = fl.alloc() {
                    assert!(!held.contains(&r), "double allocation of {r}");
                    held.push(r);
                }
            } else if let Some(r) = held.pop() {
                fl.release(r);
            }
            assert_eq!(held.len() + fl.available(), total);
        }
    }
}

/// Rename + rollback in LIFO order restores the original mapping and
/// loses no registers.
#[test]
fn rename_rollback_is_exact() {
    let mut rng = Rng::seed_from_u64(0x4e62);
    for _ in 0..64 {
        let mut fl = FreeList::new(256);
        let mut rm = RenameMap::new(&mut fl);
        let before: Vec<_> = (0..31)
            .map(|i| rm.lookup(looseloops_isa::Reg::int(i)))
            .collect();
        let avail = fl.available();
        let mut undo = Vec::new();
        let n = rng.gen_range(1usize..40);
        for _ in 0..n {
            let arch = looseloops_isa::Reg::int(rng.gen_range(1u8..31));
            let (_, prev) = rm.rename_dest(arch, &mut fl).unwrap();
            undo.push((arch, prev));
        }
        for (arch, prev) in undo.into_iter().rev() {
            rm.rollback(arch, prev, &mut fl);
        }
        let after: Vec<_> = (0..31)
            .map(|i| rm.lookup(looseloops_isa::Reg::int(i)))
            .collect();
        assert_eq!(before, after);
        assert_eq!(fl.available(), avail);
    }
}

/// The CRC behaves exactly like a reference FIFO-of-pairs model.
#[test]
fn crc_matches_reference_fifo() {
    let mut rng = Rng::seed_from_u64(0x4e63);
    for _ in 0..64 {
        let cap = 4;
        let mut crc = ClusterRegCache::new(cap);
        let mut reference: VecDeque<(u16, u64)> = VecDeque::new();
        let steps = rng.gen_range(1usize..300);
        for _ in 0..steps {
            let op = rng.gen_range(0u8..3);
            let reg = rng.gen_range(0u16..24);
            let val = rng.next_u64();
            let p = PhysReg(reg);
            match op {
                0 => {
                    // insert
                    if let Some(e) = reference.iter_mut().find(|(r, _)| *r == reg) {
                        e.1 = val;
                    } else {
                        if reference.len() == cap {
                            reference.pop_front();
                        }
                        reference.push_back((reg, val));
                    }
                    crc.insert(p, val);
                }
                1 => {
                    // lookup
                    let expect = reference.iter().find(|(r, _)| *r == reg).map(|&(_, v)| v);
                    assert_eq!(crc.lookup(p), expect);
                }
                _ => {
                    // invalidate
                    reference.retain(|(r, _)| *r != reg);
                    crc.invalidate(p);
                }
            }
            assert_eq!(crc.len(), reference.len());
        }
    }
}

/// Forwarding-buffer window semantics against a reference: a lookup at
/// time `t` hits iff the last insert for that register happened within
/// the window.
#[test]
fn forwarding_window_is_exact() {
    let mut rng = Rng::seed_from_u64(0x4e64);
    for _ in 0..64 {
        let window = 9;
        let mut fwd = ForwardingBuffer::new(window);
        let n_ins = rng.gen_range(1usize..60);
        let mut sorted: Vec<(u16, u64, u64)> = (0..n_ins)
            .map(|_| {
                (
                    rng.gen_range(0u16..8),
                    rng.gen_range(0u64..40),
                    rng.next_u64(),
                )
            })
            .collect();
        sorted.sort_by_key(|&(_, cycle, _)| cycle);
        for (reg, cycle, val) in &sorted {
            fwd.insert(PhysReg(*reg), *val, *cycle);
        }
        let n_probe = rng.gen_range(1usize..60);
        for _ in 0..n_probe {
            let reg = rng.gen_range(0u16..8);
            let t = rng.gen_range(0u64..60);
            let expect = sorted
                .iter()
                .rev()
                .find(|&&(r, _, _)| r == reg)
                .filter(|&&(_, c, _)| t >= c && t - c < window)
                .map(|&(_, _, v)| v);
            assert_eq!(fwd.probe(PhysReg(reg), t), expect);
        }
    }
}
