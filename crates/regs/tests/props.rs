//! Property tests for the register machinery: conservation laws and
//! reference-model equivalence for the DRA structures.

use looseloops_regs::{ClusterRegCache, ForwardingBuffer, FreeList, PhysReg, RenameMap};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// Free-list conservation: allocations + available == total, always;
    /// rollback and release restore exactly.
    #[test]
    fn freelist_conserves_registers(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let total = 64;
        let mut fl = FreeList::new(total);
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(r) = fl.alloc() {
                    prop_assert!(!held.contains(&r), "double allocation of {r}");
                    held.push(r);
                }
            } else if let Some(r) = held.pop() {
                fl.release(r);
            }
            prop_assert_eq!(held.len() + fl.available(), total);
        }
    }

    /// Rename + rollback in LIFO order restores the original mapping and
    /// loses no registers.
    #[test]
    fn rename_rollback_is_exact(regs in prop::collection::vec(1u8..31, 1..40)) {
        let mut fl = FreeList::new(256);
        let mut rm = RenameMap::new(&mut fl);
        let before: Vec<_> =
            (0..31).map(|i| rm.lookup(looseloops_isa::Reg::int(i))).collect();
        let avail = fl.available();
        let mut undo = Vec::new();
        for r in &regs {
            let arch = looseloops_isa::Reg::int(*r);
            let (_, prev) = rm.rename_dest(arch, &mut fl).unwrap();
            undo.push((arch, prev));
        }
        for (arch, prev) in undo.into_iter().rev() {
            rm.rollback(arch, prev, &mut fl);
        }
        let after: Vec<_> =
            (0..31).map(|i| rm.lookup(looseloops_isa::Reg::int(i))).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(fl.available(), avail);
    }

    /// The CRC behaves exactly like a reference FIFO-of-pairs model.
    #[test]
    fn crc_matches_reference_fifo(
        ops in prop::collection::vec((0u8..3, 0u16..24, any::<u64>()), 1..300)
    ) {
        let cap = 4;
        let mut crc = ClusterRegCache::new(cap);
        let mut reference: VecDeque<(u16, u64)> = VecDeque::new();
        for (op, reg, val) in ops {
            let p = PhysReg(reg);
            match op {
                0 => {
                    // insert
                    if let Some(e) = reference.iter_mut().find(|(r, _)| *r == reg) {
                        e.1 = val;
                    } else {
                        if reference.len() == cap {
                            reference.pop_front();
                        }
                        reference.push_back((reg, val));
                    }
                    crc.insert(p, val);
                }
                1 => {
                    // lookup
                    let expect = reference.iter().find(|(r, _)| *r == reg).map(|&(_, v)| v);
                    prop_assert_eq!(crc.lookup(p), expect);
                }
                _ => {
                    // invalidate
                    reference.retain(|(r, _)| *r != reg);
                    crc.invalidate(p);
                }
            }
            prop_assert_eq!(crc.len(), reference.len());
        }
    }

    /// Forwarding-buffer window semantics against a reference: a lookup at
    /// time `t` hits iff the last insert for that register happened within
    /// the window.
    #[test]
    fn forwarding_window_is_exact(
        inserts in prop::collection::vec((0u16..8, 0u64..40, any::<u64>()), 1..60),
        probes in prop::collection::vec((0u16..8, 0u64..60), 1..60)
    ) {
        let window = 9;
        let mut fwd = ForwardingBuffer::new(window);
        let mut sorted = inserts.clone();
        sorted.sort_by_key(|&(_, cycle, _)| cycle);
        for (reg, cycle, val) in &sorted {
            fwd.insert(PhysReg(*reg), *val, *cycle);
        }
        for (reg, t) in probes {
            let expect = sorted
                .iter()
                .rev()
                .find(|&&(r, _, _)| r == reg)
                .filter(|&&(_, c, _)| t >= c && t - c < window)
                .map(|&(_, _, v)| v);
            prop_assert_eq!(fwd.probe(PhysReg(reg), t), expect);
        }
    }
}
