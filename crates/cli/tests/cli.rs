//! End-to-end CLI tests: spawn the built binary and check its behaviour.

use std::process::Command;

fn looseloops(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_looseloops"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = looseloops(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("figure"));
}

#[test]
fn list_names_everything() {
    let out = looseloops(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["compress", "turb3d", "apsi-swim", "fig8"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn run_bench_reports_stats() {
    let out = looseloops(&[
        "run",
        "--bench",
        "m88ksim",
        "--warmup",
        "1000",
        "--measure",
        "5000",
        "--verify",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("operand sources"));
}

#[test]
fn run_json_is_parseable_shape() {
    let out = looseloops(&[
        "run",
        "--bench",
        "go",
        "--warmup",
        "500",
        "--measure",
        "3000",
        "--json",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("\"ipc\""));
}

#[test]
fn asm_assembles_runs_and_disassembles() {
    let dir = std::env::temp_dir();
    let path = dir.join("looseloops_cli_test.s");
    std::fs::write(
        &path,
        "addi r1, r31, 3\ntop:\nsubi r1, r1, 1\nbne r1, top\nhalt\n",
    )
    .unwrap();
    let out = looseloops(&["asm", path.to_str().unwrap(), "--run", "--disasm"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("halted: true"));
    assert!(text.contains("subi r1, r1, 1"));
}

#[test]
fn figure_smoke_runs() {
    let out = looseloops(&["figure", "fig6", "--smoke"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("fig6"));
}

#[test]
fn loops_inventory_prints() {
    let out = looseloops(&["loops", "--scheme", "dra", "--rf", "7"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("operand resolution"));
    assert!(text.contains("load resolution"));
}

#[test]
fn errors_exit_nonzero_with_message() {
    let out = looseloops(&["run"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bench"));

    let out = looseloops(&["run", "--bench", "nonesuch"]);
    assert!(!out.status.success());

    let out = looseloops(&["frobnicate"]);
    assert!(!out.status.success());

    let out = looseloops(&["run", "--bnech", "go"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn trace_file_is_written() {
    let path = std::env::temp_dir().join("looseloops_cli_trace.kanata");
    let _ = std::fs::remove_file(&path);
    let out = looseloops(&[
        "run",
        "--bench",
        "go",
        "--warmup",
        "200",
        "--measure",
        "1500",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(&path).unwrap();
    assert!(log.starts_with("Kanata\t0004"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn figure_store_dir_makes_the_second_run_simulation_free() {
    let dir = std::env::temp_dir().join(format!("looseloops-cli-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let args = [
        "figure",
        "fig6",
        "--smoke",
        "--jobs",
        "2",
        "--store-dir",
        dir.to_str().unwrap(),
    ];

    let cold = looseloops(&args);
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let warm = looseloops(&args);
    assert!(warm.status.success());

    assert_eq!(
        cold.stdout, warm.stdout,
        "store-served figures must be byte-identical"
    );
    let warm_log = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_log.contains("0 jobs run"),
        "warm store must simulate nothing: {warm_log}"
    );
    assert!(warm_log.contains("store hits"), "{warm_log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_submit_round_trip_a_figure() {
    use std::io::BufRead;

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_looseloops"))
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    let mut first_line = String::new();
    std::io::BufReader::new(daemon.stdout.take().expect("daemon stdout"))
        .read_line(&mut first_line)
        .expect("daemon announces its address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .expect("announce line")
        .to_string();

    // Rendered through --table, the streamed figure must be
    // byte-identical to the same figure generated locally.
    let budget = ["--warmup", "500", "--measure", "3000"];
    let mut submit_args = vec!["submit", "fig6", "--addr", &addr, "--table"];
    submit_args.extend_from_slice(&budget);
    let remote = looseloops(&submit_args);
    assert!(
        remote.status.success(),
        "{}",
        String::from_utf8_lossy(&remote.stderr)
    );
    let mut local_args = vec!["figure", "fig6", "--jobs", "2"];
    local_args.extend_from_slice(&budget);
    let local = looseloops(&local_args);
    assert!(local.status.success());
    assert_eq!(
        String::from_utf8_lossy(&remote.stdout),
        String::from_utf8_lossy(&local.stdout),
        "served figure must match the local run byte-for-byte"
    );
    // The per-request summary (with its dedup counter) goes to stderr.
    let log = String::from_utf8_lossy(&remote.stderr);
    assert!(log.contains("dedup hits"), "{log}");

    // Raw mode: every streamed line parses as JSON with an event field.
    let mut raw_args = vec!["submit", "fig6", "--addr", &addr];
    raw_args.extend_from_slice(&budget);
    let raw = looseloops(&raw_args);
    assert!(raw.status.success());
    let events: Vec<String> = String::from_utf8_lossy(&raw.stdout)
        .lines()
        .map(|l| {
            let v = looseloops::json::parse(l).expect("event line parses as JSON");
            v.get("event")
                .and_then(looseloops::json::JsonValue::as_str)
                .expect("event field")
                .to_string()
        })
        .collect();
    assert_eq!(events, ["hello", "figure", "summary", "done"]);

    // Unknown figures fail loudly, with the daemon still up.
    let bad = looseloops(&["submit", "nonesuch", "--addr", &addr]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown figure"));

    let down = looseloops(&["submit", "--shutdown", "--addr", &addr]);
    assert!(down.status.success());
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success());
}

#[test]
fn kernel_inspection_disassembles() {
    let out = looseloops(&["kernel", "go", "--disasm"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("go:"));
    assert!(text.contains("bne"), "go's disassembly has branches");
}
