//! End-to-end CLI tests: spawn the built binary and check its behaviour.

use std::process::Command;

fn looseloops(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_looseloops"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = looseloops(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("figure"));
}

#[test]
fn list_names_everything() {
    let out = looseloops(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["compress", "turb3d", "apsi-swim", "fig8"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn run_bench_reports_stats() {
    let out = looseloops(&[
        "run",
        "--bench",
        "m88ksim",
        "--warmup",
        "1000",
        "--measure",
        "5000",
        "--verify",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IPC"));
    assert!(text.contains("operand sources"));
}

#[test]
fn run_json_is_parseable_shape() {
    let out = looseloops(&[
        "run",
        "--bench",
        "go",
        "--warmup",
        "500",
        "--measure",
        "3000",
        "--json",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.trim_start().starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("\"ipc\""));
}

#[test]
fn asm_assembles_runs_and_disassembles() {
    let dir = std::env::temp_dir();
    let path = dir.join("looseloops_cli_test.s");
    std::fs::write(
        &path,
        "addi r1, r31, 3\ntop:\nsubi r1, r1, 1\nbne r1, top\nhalt\n",
    )
    .unwrap();
    let out = looseloops(&["asm", path.to_str().unwrap(), "--run", "--disasm"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("halted: true"));
    assert!(text.contains("subi r1, r1, 1"));
}

#[test]
fn figure_smoke_runs() {
    let out = looseloops(&["figure", "fig6", "--smoke"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("fig6"));
}

#[test]
fn loops_inventory_prints() {
    let out = looseloops(&["loops", "--scheme", "dra", "--rf", "7"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("operand resolution"));
    assert!(text.contains("load resolution"));
}

#[test]
fn errors_exit_nonzero_with_message() {
    let out = looseloops(&["run"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bench"));

    let out = looseloops(&["run", "--bench", "nonesuch"]);
    assert!(!out.status.success());

    let out = looseloops(&["frobnicate"]);
    assert!(!out.status.success());

    let out = looseloops(&["run", "--bnech", "go"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn trace_file_is_written() {
    let path = std::env::temp_dir().join("looseloops_cli_trace.kanata");
    let _ = std::fs::remove_file(&path);
    let out = looseloops(&[
        "run",
        "--bench",
        "go",
        "--warmup",
        "200",
        "--measure",
        "1500",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = std::fs::read_to_string(&path).unwrap();
    assert!(log.starts_with("Kanata\t0004"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn kernel_inspection_disassembles() {
    let out = looseloops(&["kernel", "go", "--disasm"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("go:"));
    assert!(text.contains("bne"), "go's disassembly has branches");
}
