//! Subcommand implementations.

use crate::args::{ArgError, Args};
use crate::config::{budget_from_args, config_from_args, BUDGET_FLAGS, CONFIG_FLAGS};
use looseloops::{
    ablation_dra_design_on, ablation_fwd_window_on, ablation_iq_size_on, ablation_load_policies_on,
    ablation_predictors_on, ablation_prefetch_on, capture_checkpoint, cpi_stack_report_on,
    fig4_pipeline_length_on, fig5_fixed_total_on, fig6_operand_gap_cdf_on, fig8_dra_speedup_on,
    fig9_operand_sources_on, figure_cpi_stacks_on, loop_inventory, restore_into, run_sampled,
    warm_digest, CheckpointStore, ExecMode, FigureResult, Job, Machine, ResultStore, RunBudget,
    SamplingPlan, SimStats, SweepEngine, WarmMemo, Workload,
};
use looseloops_workload::Benchmark;

fn config_flag_set(extra: &[&str]) -> Vec<&'static str> {
    let mut v: Vec<&str> = CONFIG_FLAGS.to_vec();
    v.extend_from_slice(BUDGET_FLAGS);
    // Leak is fine: flag names live for the whole process.
    v.iter()
        .copied()
        .chain(extra.iter().copied())
        .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
        .collect()
}

fn print_stats(stats: &SimStats, json: bool) {
    if json {
        println!("{{");
        println!("  \"cycles\": {},", stats.cycles);
        println!("  \"retired\": {:?},", stats.retired);
        println!("  \"ipc\": {},", stats.ipc());
        println!("  \"branches\": {},", stats.branches);
        println!("  \"branch_mispredicts\": {},", stats.branch_mispredicts);
        println!("  \"loads\": {},", stats.loads);
        println!("  \"load_l1_misses\": {},", stats.load_l1_misses);
        println!("  \"load_replays\": {},", stats.load_replays);
        println!("  \"operand_misses\": {},", stats.operand_misses);
        println!("  \"operand_sources\": {:?},", stats.operand_sources);
        println!("  \"mem_order_traps\": {},", stats.mem_order_traps);
        println!("  \"tlb_traps\": {},", stats.tlb_traps);
        println!("  \"iq_occupancy_mean\": {},", stats.iq_occupancy_mean);
        println!("  \"audit_checks\": {},", stats.audit_checks);
        println!("  \"faults_injected\": {},", stats.faults_injected);
        println!("  \"deadlocks_detected\": {}", stats.deadlocks_detected);
        println!("}}");
        return;
    }
    println!("cycles                {}", stats.cycles);
    println!(
        "instructions retired  {} {:?}",
        stats.total_retired(),
        stats.retired
    );
    println!("IPC                   {:.4}", stats.ipc());
    println!(
        "branches              {} ({} mispredicted, {:.2}%)",
        stats.branches,
        stats.branch_mispredicts,
        stats.branch_mispredict_rate() * 100.0
    );
    println!(
        "loads                 {} ({} L1 misses, {:.2}%)",
        stats.loads,
        stats.load_l1_misses,
        stats.load_miss_rate() * 100.0
    );
    println!(
        "useless work          {} (load replays {}, shadow {}, operand {}, squashed-after-issue {})",
        stats.useless_work(),
        stats.load_replays,
        stats.shadow_replays,
        stats.operand_replays,
        stats.squashed_after_issue
    );
    let f = stats.operand_source_fractions();
    println!(
        "operand sources       pre-read {:.1}%  forward {:.1}%  crc {:.1}%  regfile {:.1}%  miss {:.3}%",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0,
        f[4] * 100.0
    );
    println!(
        "traps                 memory-order {}  dTLB {}  barriers {}",
        stats.mem_order_traps, stats.tlb_traps, stats.mem_barriers
    );
    println!(
        "IQ occupancy          mean {:.1}  post-issue {:.1}  peak {}",
        stats.iq_occupancy_mean, stats.iq_post_issue_mean, stats.iq_peak
    );
    if stats.audit_checks > 0 || stats.faults_injected > 0 || stats.deadlocks_detected > 0 {
        println!(
            "hardening             audit checks {}  faults injected {} (flip/spike/miss {:?})  deadlocks {}",
            stats.audit_checks, stats.faults_injected, stats.faults_by_kind, stats.deadlocks_detected
        );
    }
}

/// Print the wall-clock stage profile accumulated since the last call,
/// when `--profile-stages` recorded one. Goes to stderr, like the sweep
/// summary, so piped figure output stays byte-identical. With
/// `--profile-json FILE`, the report is also appended to FILE as one JSON
/// line per label, for `scripts/diff_stage_profile.py`.
fn emit_profile(label: &str, json_path: Option<&str>) {
    if let Some(rep) = looseloops_pipeline::profile::take_report() {
        eprintln!("[profile] {label}: {}", rep.render());
        if let Some(path) = json_path {
            use std::io::Write as _;
            let line = rep.render_json(label);
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = written {
                eprintln!("[profile] cannot write {path}: {e}");
            }
        }
    }
}

/// Shared handling of the profiling flags: `--profile-stages` turns the
/// per-stage timers on; `--profile-json FILE` does too and selects a JSON
/// sink. Returns the sink path for `emit_profile`.
fn profile_from_args(args: &Args) -> Option<&str> {
    if args.has("profile-stages") || args.has("profile-json") {
        looseloops_pipeline::profile::enable();
    }
    args.get("profile-json")
}

/// Parse the execution-mode flags shared by `run` and `figure`:
/// `--fast-forward`, `--sample SPEC`, `--ckpt-dir DIR`.
fn mode_from_args(
    args: &Args,
    budget: RunBudget,
) -> Result<(ExecMode, Option<CheckpointStore>), ArgError> {
    let mode = match (args.get("sample"), args.has("fast-forward")) {
        (Some(_), true) => {
            return Err(ArgError(
                "--sample already fast-forwards between windows; drop --fast-forward".into(),
            ))
        }
        (Some(spec), false) => {
            ExecMode::Sampled(SamplingPlan::parse(spec, budget).map_err(ArgError)?)
        }
        (None, true) => ExecMode::FastForward,
        (None, false) => ExecMode::Detailed,
    };
    let store = match args.get("ckpt-dir") {
        None => None,
        Some(_) if mode == ExecMode::Detailed => {
            return Err(ArgError(
                "--ckpt-dir needs --fast-forward or --sample".into(),
            ))
        }
        Some(dir) => Some(CheckpointStore::open(dir).map_err(|e| ArgError(e.to_string()))?),
    };
    Ok((mode, store))
}

/// Resolve `--bench NAME` / `--pair NAME` into a [`Workload`].
fn workload_from_flags(args: &Args) -> Result<Workload, ArgError> {
    if let Some(name) = args.get("bench") {
        Benchmark::all()
            .into_iter()
            .find(|b| b.name() == name)
            .map(Workload::Single)
            .ok_or_else(|| {
                ArgError(format!(
                    "unknown benchmark `{name}` — see `looseloops list`"
                ))
            })
    } else if let Some(name) = args.get("pair") {
        Benchmark::pairs()
            .into_iter()
            .find(|p| p.name() == name)
            .map(Workload::Pair)
            .ok_or_else(|| ArgError(format!("unknown pair `{name}` — see `looseloops list`")))
    } else {
        Err(ArgError("need --bench or --pair".into()))
    }
}

/// `looseloops run`
pub fn run(args: &Args) -> Result<(), ArgError> {
    let allowed = config_flag_set(&[
        "bench",
        "pair",
        "asm",
        "verify",
        "trace",
        "json",
        "fast-forward",
        "sample",
        "ckpt-dir",
        "profile-stages",
        "profile-json",
    ]);
    args.reject_unknown(&allowed)?;
    let mut cfg = config_from_args(args)?;
    let budget = budget_from_args(args)?;
    let profile_json = profile_from_args(args);

    let (mode, store) = mode_from_args(args, budget)?;
    if mode != ExecMode::Detailed {
        for incompatible in ["asm", "verify", "trace"] {
            if args.has(incompatible) {
                return Err(ArgError(format!(
                    "--{incompatible} runs the detailed path only; drop --fast-forward/--sample"
                )));
            }
        }
        let workload = workload_from_flags(args)?;
        let job = Job::new(cfg, workload, budget);
        let memo = WarmMemo::default();
        let label = workload.name();
        match mode {
            ExecMode::FastForward => {
                let stats = looseloops::checkpoint::run_fast_forwarded(&job, store.as_ref(), &memo)
                    .map_err(|e| ArgError(e.to_string()))?;
                if !args.has("json") {
                    println!(
                        "== {label} (fast-forwarded warm-up: {} instrs) ==",
                        budget.warmup
                    );
                }
                print_stats(&stats, args.has("json"));
            }
            ExecMode::Sampled(plan) => {
                let run = run_sampled(&job, plan, store.as_ref(), &memo)
                    .map_err(|e| ArgError(e.to_string()))?;
                if !args.has("json") {
                    println!(
                        "== {label} (sampled: {} windows of {} detailed instrs) ==",
                        plan.windows, plan.detail
                    );
                }
                print_stats(&run.stats, args.has("json"));
                if !args.has("json") {
                    println!("sampling              {}", run.error_bar());
                }
            }
            ExecMode::Detailed => unreachable!("handled above"),
        }
        emit_profile(&label, profile_json);
        return Ok(());
    }

    let (programs, label) = if let Some(name) = args.get("bench") {
        let b = Benchmark::all()
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| {
                ArgError(format!(
                    "unknown benchmark `{name}` — see `looseloops list`"
                ))
            })?;
        (vec![b.program()], name.to_string())
    } else if let Some(name) = args.get("pair") {
        let p = Benchmark::pairs()
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| ArgError(format!("unknown pair `{name}` — see `looseloops list`")))?;
        cfg.threads = 2;
        (p.programs(), name.to_string())
    } else if let Some(path) = args.get("asm") {
        let src = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let prog = looseloops_isa::asm::assemble_named(path, &src)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        (vec![prog], path.to_string())
    } else {
        return Err(ArgError("run needs --bench, --pair, or --asm".into()));
    };
    cfg.validate().map_err(|e| ArgError(e.to_string()))?;

    let mut m = Machine::new(cfg, programs).map_err(|e| ArgError(e.to_string()))?;
    if args.has("verify") {
        m.enable_verification();
    }
    if args.get("trace").is_some() {
        m.enable_trace();
    }
    if budget.warmup > 0 {
        m.run(budget.warmup, budget.max_cycles)
            .map_err(|e| ArgError(e.to_string()))?;
        m.reset_stats();
        // Tracing starts after warm-up.
        if args.get("trace").is_some() {
            let _ = m.take_trace();
            m.enable_trace();
        }
    }
    m.run(budget.measure, budget.max_cycles)
        .map_err(|e| ArgError(e.to_string()))?;

    if !args.has("json") {
        println!("== {label} ==");
    }
    print_stats(m.stats(), args.has("json"));
    if let Some(path) = args.get("trace") {
        std::fs::write(path, m.take_trace())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        if !args.has("json") {
            println!("trace written to {path}");
        }
    }
    emit_profile(&label, profile_json);
    Ok(())
}

/// Figure ids understood by `looseloops figure`, with their generators.
/// `all` regenerates every one of them on a single engine, so overlapping
/// grids (the base machine appears in several figures) simulate once.
const FIGURE_IDS: &[&str] = &[
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "load-policy",
    "dra-design",
    "fwd-window",
    "iq-size",
    "prefetch",
    "predictor",
];

fn generate_figure(
    id: &str,
    sweep: &SweepEngine,
    workloads: &[Workload],
    budget: RunBudget,
) -> Result<FigureResult, ArgError> {
    Ok(match id {
        "fig4" => fig4_pipeline_length_on(sweep, workloads, budget),
        "fig5" => fig5_fixed_total_on(sweep, workloads, budget),
        "fig6" => fig6_operand_gap_cdf_on(sweep, budget),
        "fig8" => fig8_dra_speedup_on(sweep, workloads, budget),
        "fig9" => fig9_operand_sources_on(sweep, workloads, budget),
        "load-policy" => ablation_load_policies_on(sweep, workloads, budget),
        "dra-design" => ablation_dra_design_on(sweep, workloads, budget),
        "fwd-window" => ablation_fwd_window_on(sweep, workloads, budget),
        "iq-size" => ablation_iq_size_on(sweep, workloads, budget),
        "prefetch" => ablation_prefetch_on(sweep, workloads, budget),
        "predictor" => ablation_predictors_on(sweep, workloads, budget),
        other => {
            return Err(ArgError(format!(
                "unknown figure `{other}` (known: {}, all)",
                FIGURE_IDS.join(", ")
            )))
        }
    })
}

/// Parse `--workloads a,b,c` (default: the full paper set).
fn workloads_from_args(args: &Args) -> Result<Vec<Workload>, ArgError> {
    match args.get("workloads") {
        None => Ok(Workload::paper_set()),
        Some(list) => list
            .split(',')
            .map(|n| {
                Workload::paper_set()
                    .into_iter()
                    .find(|w| w.name() == n)
                    .ok_or_else(|| ArgError(format!("unknown workload `{n}`")))
            })
            .collect(),
    }
}

/// Resolve the persistent result store: `--store-dir DIR` explicitly,
/// else the `LOOSELOOPS_STORE` environment variable, else none.
fn result_store_from_args(args: &Args) -> Result<Option<ResultStore>, ArgError> {
    match args.get("store-dir") {
        Some(dir) => ResultStore::open(dir)
            .map(Some)
            .map_err(|e| ArgError(e.to_string())),
        None => Ok(ResultStore::from_env()),
    }
}

/// Build a sweep engine from `--jobs N` (0 or absent: `LOOSELOOPS_JOBS` /
/// the machine) executing under `mode`, with the persistent result store
/// from `--store-dir` / `LOOSELOOPS_STORE` attached when configured.
fn sweep_from_args(
    args: &Args,
    mode: ExecMode,
    store: Option<CheckpointStore>,
) -> Result<SweepEngine, ArgError> {
    let jobs: usize = args.get_or("jobs", 0)?;
    let workers = if jobs == 0 {
        looseloops::jobs_from_env()
    } else {
        jobs
    };
    let result_store = result_store_from_args(args)?;
    Ok(SweepEngine::with_stores(workers, mode, store, result_store))
}

/// `looseloops figure`
pub fn figure(args: &Args) -> Result<(), ArgError> {
    let allowed = config_flag_set(&[
        "smoke",
        "json-out",
        "workloads",
        "jobs",
        "stacks",
        "fast-forward",
        "sample",
        "ckpt-dir",
        "store-dir",
        "profile-stages",
        "profile-json",
    ]);
    args.reject_unknown(&allowed)?;
    let profile_json = profile_from_args(args);
    let id = args
        .positional()
        .first()
        .ok_or_else(|| {
            ArgError(format!(
                "figure needs an id ({}, all)",
                FIGURE_IDS.join(", ")
            ))
        })?
        .clone();
    let mut budget = budget_from_args(args)?;
    if args.has("smoke") {
        budget = RunBudget {
            warmup: 1_000,
            measure: 5_000,
            max_cycles: 2_000_000,
        };
    }
    let workloads = workloads_from_args(args)?;
    let (mode, store) = mode_from_args(args, budget)?;
    let sweep = sweep_from_args(args, mode, store)?;
    // With --stacks, each figure's per-loop CPI stacks are appended after
    // the figure itself — the points are the figure's own memoized jobs,
    // so no extra simulation happens and without the flag the output is
    // byte-identical to before.
    let stacks = args.has("stacks");

    if id == "all" {
        if args.get("json-out").is_some() {
            return Err(ArgError(
                "--json-out applies to a single figure, not `all`".into(),
            ));
        }
        for fid in FIGURE_IDS {
            let fig = generate_figure(fid, &sweep, &workloads, budget)?;
            print!("{fig}");
            if stacks {
                if let Some(rep) = figure_cpi_stacks_on(&sweep, &fig.id, &workloads, budget) {
                    print!("{rep}");
                }
            }
            emit_profile(fid, profile_json);
        }
        eprintln!("[sweep] {}", sweep.summary().line());
        return Ok(());
    }

    let fig = generate_figure(&id, &sweep, &workloads, budget)?;
    print!("{fig}");
    if stacks {
        if let Some(rep) = figure_cpi_stacks_on(&sweep, &fig.id, &workloads, budget) {
            print!("{rep}");
        }
    }
    emit_profile(&id, profile_json);
    eprintln!("[sweep] {}", sweep.summary().line());
    if let Some(path) = args.get("json-out") {
        std::fs::write(path, fig.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("(json written to {path})");
    }
    Ok(())
}

/// `looseloops store` — manage the persistent result store. The one
/// subcommand, `gc --max-bytes N`, evicts least-recently-used entries
/// (both saves and hits refresh recency) until the store fits the budget.
pub fn store(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["store-dir", "max-bytes"])?;
    match args.positional().first().map(String::as_str) {
        Some("gc") => {
            let store = result_store_from_args(args)?.ok_or_else(|| {
                ArgError("store gc needs --store-dir DIR (or LOOSELOOPS_STORE)".into())
            })?;
            let max_bytes: u64 = match args.get("max-bytes") {
                Some(v) => v
                    .parse()
                    .map_err(|_| ArgError(format!("--max-bytes: cannot parse `{v}`")))?,
                None => return Err(ArgError("store gc needs --max-bytes N (bytes)".into())),
            };
            let report = store.gc(max_bytes).map_err(|e| ArgError(e.to_string()))?;
            println!(
                "{}: evicted {} entr(ies) ({} bytes), kept {} ({} bytes) within the {} byte budget",
                store.dir().display(),
                report.evicted,
                report.bytes_evicted,
                report.kept,
                report.bytes_kept,
                max_bytes
            );
            Ok(())
        }
        Some(other) => Err(ArgError(format!(
            "unknown store subcommand `{other}` (known: gc)"
        ))),
        None => Err(ArgError("store needs a subcommand (known: gc)".into())),
    }
}

/// `looseloops serve` — bind a TCP job server in front of one shared
/// sweep engine (plus result store, when configured) and run until a
/// client sends `{"cmd":"shutdown"}`.
pub fn serve(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["addr", "jobs", "queue", "store-dir"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:4641");
    let queue: usize = args.get_or("queue", 4)?;
    let sweep = sweep_from_args(args, ExecMode::Detailed, None)?;
    let server = looseloops::server::JobServer::bind(addr, sweep, queue)
        .map_err(|e| ArgError(format!("cannot bind {addr}: {e}")))?;
    // Scripts wait for this exact line before submitting.
    println!(
        "listening on {}",
        server.local_addr().map_err(|e| ArgError(e.to_string()))?
    );
    server.run().map_err(|e| ArgError(e.to_string()))
}

/// `looseloops submit` — send one request to a running `serve` daemon
/// and print the streamed NDJSON events (or, with `--table`, render the
/// figure/stacks events exactly as a local `figure` run would).
pub fn submit(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "addr",
        "smoke",
        "warmup",
        "measure",
        "max-cycles",
        "workloads",
        "stacks",
        "table",
        "shutdown",
    ])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:4641");
    let request = if args.has("shutdown") {
        "{\"cmd\":\"shutdown\"}".to_string()
    } else {
        let id = args
            .positional()
            .first()
            .ok_or_else(|| ArgError("submit needs a figure id (or --shutdown)".into()))?;
        let mut req = format!(
            "{{\"cmd\":\"figure\",\"id\":{}",
            looseloops::json_escape(id)
        );
        if !args.has("smoke") {
            // Budget fields are optional on the wire; the server's default
            // is exactly `--smoke`, so only overrides are sent.
            let budget = budget_from_args(args)?;
            req.push_str(&format!(
                ",\"warmup\":{},\"measure\":{},\"max_cycles\":{}",
                budget.warmup, budget.measure, budget.max_cycles
            ));
        }
        if let Some(list) = args.get("workloads") {
            let names: Vec<String> = list.split(',').map(looseloops::json_escape).collect();
            req.push_str(&format!(",\"workloads\":[{}]", names.join(",")));
        }
        if args.has("stacks") {
            req.push_str(",\"stacks\":true");
        }
        req.push('}');
        req
    };

    let lines = looseloops::server::request_lines(addr, &request)
        .map_err(|e| ArgError(format!("cannot reach {addr}: {e}")))?;
    let mut failed = None;
    for line in &lines {
        let parsed = looseloops::json::parse(line).ok();
        let event = parsed
            .as_ref()
            .and_then(|v| v.get("event"))
            .and_then(looseloops::json::JsonValue::as_str);
        if event == Some("error") {
            failed = Some(
                parsed
                    .as_ref()
                    .and_then(|v| v.get("message"))
                    .and_then(looseloops::json::JsonValue::as_str)
                    .unwrap_or("unknown server error")
                    .to_string(),
            );
        }
        if args.has("table") {
            match (event, &parsed) {
                (Some("figure"), Some(v)) => {
                    if let Some(fig) = v
                        .get("figure")
                        .and_then(looseloops::server::figure_from_json)
                    {
                        print!("{fig}");
                        continue;
                    }
                }
                (Some("stacks"), Some(v)) => {
                    if let Some(rep) = v
                        .get("stacks")
                        .and_then(looseloops::server::stacks_from_json)
                    {
                        print!("{rep}");
                        continue;
                    }
                }
                (Some("summary"), Some(v)) => {
                    if let Some(l) = v.get("line").and_then(looseloops::json::JsonValue::as_str) {
                        eprintln!("[serve] {l}");
                        continue;
                    }
                }
                (Some("hello" | "done"), _) => continue,
                _ => {}
            }
        }
        println!("{line}");
    }
    match failed {
        Some(msg) => Err(ArgError(format!("server: {msg}"))),
        None => Ok(()),
    }
}

/// `looseloops loops` (and `looseloops loops attribute`)
pub fn loops(args: &Args) -> Result<(), ArgError> {
    if args.positional().first().map(String::as_str) == Some("attribute") {
        return loops_attribute(args);
    }
    let allowed = config_flag_set(&[]);
    args.reject_unknown(&allowed)?;
    let cfg = config_from_args(args)?;
    println!(
        "machine: DEC-IQ={} IQ-EX={} RF-read={} scheme={:?}",
        cfg.dec_iq_stages, cfg.iq_ex_stages, cfg.rf_read_latency, cfg.scheme
    );
    for l in loop_inventory(&cfg) {
        println!("  {l}");
    }
    Ok(())
}

/// `looseloops loops attribute` — run the configured machine over the
/// workloads and print its per-loop CPI stack: where every lost retire
/// slot went, one column per loop-cost component, components summing to
/// the measured CPI.
fn loops_attribute(args: &Args) -> Result<(), ArgError> {
    let allowed = config_flag_set(&["workloads", "jobs", "store-dir"]);
    args.reject_unknown(&allowed)?;
    let cfg = config_from_args(args)?;
    let budget = budget_from_args(args)?;
    let workloads = workloads_from_args(args)?;
    let sweep = sweep_from_args(args, ExecMode::Detailed, None)?;
    let label = format!(
        "{}:{}_{}",
        if cfg.scheme.is_dra() { "dra" } else { "base" },
        cfg.dec_iq_stages,
        cfg.iq_ex_stages
    );
    let configs = [(label, cfg.clone())];
    let rep = cpi_stack_report_on(
        &sweep,
        "loops-attribute",
        "Per-loop CPI attribution (components sum to CPI)",
        &configs,
        &workloads,
        budget,
    );
    print!("{rep}");
    println!("loops charged:");
    for l in loop_inventory(&cfg) {
        if let Some(c) = l.cpi_component() {
            println!("  {:<18} <- {l}", c.name());
        }
    }
    println!(
        "conservation: every cycle's {} retire slots are either used by a retiring \
         instruction or charged to exactly one component (enforced by the invariant \
         auditor under --audit)",
        cfg.width
    );
    eprintln!("[sweep] {}", sweep.summary().line());
    Ok(())
}

/// `looseloops asm`
pub fn asm(args: &Args) -> Result<(), ArgError> {
    let allowed = config_flag_set(&["run", "disasm", "verify", "instructions"]);
    args.reject_unknown(&allowed)?;
    let path = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("asm needs a source file".into()))?;
    let src =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let prog = looseloops_isa::asm::assemble_named(path, &src)
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    println!(
        "{path}: {} instructions, {} data chunks",
        prog.len(),
        prog.init_data.len()
    );
    if args.has("disasm") {
        print!("{}", looseloops_isa::disassemble(&prog));
    }
    if args.has("run") {
        let cfg = config_from_args(args)?;
        let max: u64 = args.get_or("instructions", 1_000_000)?;
        let mut m = Machine::new(cfg, vec![prog]).map_err(|e| ArgError(e.to_string()))?;
        m.enable_verification();
        m.run(max, 100_000_000)
            .map_err(|e| ArgError(e.to_string()))?;
        println!("halted: {}", m.is_done());
        print_stats(m.stats(), false);
    }
    Ok(())
}

/// `looseloops kernel` — inspect a benchmark proxy's generated code.
pub fn kernel(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&["disasm"])?;
    let name = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("kernel needs a benchmark name — see `looseloops list`".into()))?;
    let b = Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| ArgError(format!("unknown benchmark `{name}`")))?;
    let prog = b.program();
    println!("{name}: {}", b.description());
    println!(
        "{} instructions, {} data chunks ({} bytes of initial data)",
        prog.len(),
        prog.init_data.len(),
        prog.init_data.iter().map(|(_, b)| b.len()).sum::<usize>()
    );
    if args.has("disasm") {
        print!("{}", looseloops_isa::disassemble(&prog));
    }
    Ok(())
}

/// `looseloops list`
pub fn list(_args: &Args) -> Result<(), ArgError> {
    println!("benchmarks (Spec95 proxies):");
    for b in Benchmark::all() {
        println!(
            "  {:<10} {:<4} {}",
            b.name(),
            if b.is_int() { "int" } else { "fp" },
            b.description()
        );
    }
    println!("SMT pairs:");
    for p in Benchmark::pairs() {
        println!("  {}", p.name());
    }
    println!("figures: fig4 fig5 fig6 fig8 fig9 load-policy dra-design predictor");
    Ok(())
}

/// `looseloops checkpoint` — build (or report) the functional warm-up
/// checkpoint a workload's sweep points would share, and optionally
/// verify a detailed resume from it against the ISA oracle.
pub fn checkpoint(args: &Args) -> Result<(), ArgError> {
    let allowed = config_flag_set(&["bench", "pair", "dir", "verify"]);
    args.reject_unknown(&allowed)?;
    let cfg = config_from_args(args)?;
    let budget = budget_from_args(args)?;
    let workload = workload_from_flags(args)?;
    let dir = args.get("dir").unwrap_or(".looseloops-ckpt");
    let store = CheckpointStore::open(dir).map_err(|e| ArgError(e.to_string()))?;

    let wcfg = workload.config_for(&cfg);
    let digest = warm_digest(&wcfg, &workload, budget.warmup);
    let (ckpt, cached) = match store.load(digest) {
        Ok(Some(c)) => (c, true),
        Ok(None) => {
            let c = capture_checkpoint(&wcfg, workload.programs(), budget.warmup)
                .map_err(|e| ArgError(e.to_string()))?;
            store
                .save(digest, &c)
                .map_err(|e| ArgError(e.to_string()))?;
            (c, false)
        }
        Err(e) => return Err(ArgError(e.to_string())),
    };

    println!(
        "{} after {} functional warm-up instruction(s)",
        workload.name(),
        ckpt.instructions
    );
    println!(
        "digest     {digest:016x}{}",
        if cached { "  (already stored)" } else { "" }
    );
    println!(
        "file       {} ({} bytes)",
        store.path(digest).display(),
        ckpt.encode().len()
    );
    let live_btb = ckpt.btb.iter().filter(|(t, _)| *t != u64::MAX).count();
    println!(
        "contents   {} thread(s), {} memory page(s), {} predictor word(s), {} BTB entr(ies)",
        ckpt.threads.len(),
        ckpt.mem.pages_touched(),
        ckpt.predictor.len(),
        live_btb
    );

    if args.has("verify") {
        let check = budget.measure.clamp(1_000, 20_000);
        let mut m = Machine::new(wcfg, workload.programs()).map_err(|e| ArgError(e.to_string()))?;
        restore_into(&mut m, &ckpt).map_err(|e| ArgError(e.to_string()))?;
        m.enable_verification();
        m.run(check, budget.max_cycles)
            .map_err(|e| ArgError(format!("resume verification failed: {e}")))?;
        println!(
            "verify     ok — detailed resume matched the ISA oracle for {} instruction(s)",
            m.stats().total_retired()
        );
    }
    Ok(())
}

/// `looseloops fuzz`
pub fn fuzz(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown(&[
        "seeds",
        "start",
        "jobs",
        "budget",
        "profile",
        "replay",
        "write-corpus",
        "no-shrink",
    ])?;

    // Replay mode: re-run every checked-in reproducer and fail on any
    // divergence.
    if let Some(dir) = args.get("replay") {
        let entries = looseloops_fuzz::corpus::load_dir(std::path::Path::new(dir))
            .map_err(|e| ArgError(format!("corpus: {e}")))?;
        let mut failed = 0;
        for entry in &entries {
            let out = looseloops_fuzz::run_case(&entry.case);
            match out.finding {
                None => println!(
                    "ok   {:<40} ({} retired, recorded: {})",
                    entry.name, out.retired, entry.recorded_finding
                ),
                Some(f) => {
                    println!("FAIL {:<40} {f}", entry.name);
                    failed += 1;
                }
            }
        }
        println!(
            "replayed {} corpus entr(ies), {failed} failure(s)",
            entries.len()
        );
        if failed > 0 {
            return Err(ArgError(format!("{failed} corpus entr(ies) diverged")));
        }
        return Ok(());
    }

    let jobs: usize = args.get_or("jobs", 0)?;
    let profile = match args.get("profile") {
        None => None,
        Some(name) => Some(looseloops_fuzz::GenProfile::from_name(name).ok_or_else(|| {
            ArgError(format!(
                "unknown profile `{name}` (try: {})",
                looseloops_fuzz::GenProfile::all()
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?),
    };
    let opts = looseloops_fuzz::CampaignOpts {
        start: args.get_or("start", 0u64)?,
        seeds: args.get_or("seeds", 100u64)?,
        jobs: if jobs == 0 {
            looseloops::jobs_from_env()
        } else {
            jobs
        },
        profile,
        shrink: !args.has("no-shrink"),
        budget: args
            .get("budget")
            .map(|b| {
                b.parse::<u64>()
                    .map_err(|_| ArgError(format!("bad --budget `{b}`")))
            })
            .transpose()?,
    };
    let report = looseloops_fuzz::run_campaign(&opts);
    print!("{report}");

    if let Some(dir) = args.get("write-corpus") {
        let dir = std::path::Path::new(dir);
        for fail in &report.failures {
            if let Some((case, finding)) = &fail.shrunk {
                let name = format!("fuzz-seed-{:04x}", fail.seed);
                let path = looseloops_fuzz::save_entry(dir, &name, case, finding)
                    .map_err(|e| ArgError(format!("corpus: {e}")))?;
                println!("wrote {}", path.display());
            }
        }
    }
    if report.failures.is_empty() {
        Ok(())
    } else {
        Err(ArgError(format!(
            "{} differential failure(s) in {} case(s)",
            report.failures.len(),
            report.cases
        )))
    }
}
