//! Flag → [`PipelineConfig`] translation shared by the subcommands.

use crate::args::{ArgError, Args};
use looseloops::{FaultPlan, LoadSpecPolicy, PipelineConfig, RunBudget};

/// Flags understood by every simulation-running subcommand.
pub const CONFIG_FLAGS: &[&str] = &[
    "scheme",
    "rf",
    "dec",
    "ex",
    "policy",
    "threads",
    "predictor",
    "audit",
    "watchdog",
    "inject",
    "inject-seed",
];

/// Budget flags.
pub const BUDGET_FLAGS: &[&str] = &["warmup", "measure", "max-cycles"];

/// Build a machine configuration from flags.
///
/// `--scheme base|dra` (default base), `--rf 3|5|7`, `--dec X`, `--ex Y`
/// (explicit latencies override the rf-derived ones), `--policy
/// tree|shadow|stall|refetch`, `--threads N`, `--predictor
/// tournament|gshare|local|bimodal|taken`.
///
/// # Errors
///
/// Reports unknown schemes/policies/predictors and invalid combinations
/// (via [`PipelineConfig::validate`]).
pub fn config_from_args(args: &Args) -> Result<PipelineConfig, ArgError> {
    let rf: u32 = args.get_or("rf", 3)?;
    let mut cfg = match args.get("scheme").unwrap_or("base") {
        "base" => PipelineConfig::base_for_rf(rf),
        "dra" => PipelineConfig::dra_for_rf(rf),
        other => return Err(ArgError(format!("unknown scheme `{other}` (base|dra)"))),
    };
    if let Some(dec) = args.get("dec") {
        cfg.dec_iq_stages = dec
            .parse()
            .map_err(|_| ArgError(format!("--dec: bad value `{dec}`")))?;
    }
    if let Some(ex) = args.get("ex") {
        cfg.iq_ex_stages = ex
            .parse()
            .map_err(|_| ArgError(format!("--ex: bad value `{ex}`")))?;
    }
    if let Some(p) = args.get("policy") {
        cfg.load_policy = match p {
            "tree" => LoadSpecPolicy::ReissueTree,
            "shadow" => LoadSpecPolicy::ReissueShadow,
            "stall" => LoadSpecPolicy::Stall,
            "refetch" => LoadSpecPolicy::Refetch,
            other => {
                return Err(ArgError(format!(
                    "unknown policy `{other}` (tree|shadow|stall|refetch)"
                )))
            }
        };
    }
    if let Some(p) = args.get("predictor") {
        use looseloops::branch::PredictorKind::*;
        cfg.predictor = match p {
            "tournament" => Tournament,
            "gshare" => Gshare,
            "local" => Local,
            "bimodal" => Bimodal,
            "taken" => Taken,
            other => {
                return Err(ArgError(format!(
                    "unknown predictor `{other}` (tournament|gshare|local|bimodal|taken)"
                )))
            }
        };
    }
    cfg.threads = args.get_or("threads", cfg.threads)?;
    if args.has("audit") {
        cfg.audit = true;
    }
    cfg.watchdog_window = args.get_or("watchdog", cfg.watchdog_window)?;
    if let Some(spec) = args.get("inject") {
        cfg.faults = Some(faults_from_spec(spec, args.get_or("inject-seed", 1)?)?);
    }
    cfg.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(cfg)
}

/// Parse `--inject` specs: comma-separated `branch:RATE`, `load:RATE[:CYCLES]`,
/// `operand:RATE` entries, e.g. `--inject branch:0.01,load:0.05:300`.
fn faults_from_spec(spec: &str, seed: u64) -> Result<FaultPlan, ArgError> {
    let mut plan = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    for entry in spec.split(',') {
        let mut fields = entry.split(':');
        let kind = fields.next().unwrap_or("");
        let rate: f64 = fields
            .next()
            .ok_or_else(|| ArgError(format!("--inject `{entry}`: missing rate (kind:rate)")))?
            .parse()
            .map_err(|_| ArgError(format!("--inject `{entry}`: bad rate")))?;
        match kind {
            "branch" => plan.branch_flip_rate = rate,
            "load" => {
                plan.load_spike_rate = rate;
                if let Some(cycles) = fields.next() {
                    plan.load_spike_cycles = cycles
                        .parse()
                        .map_err(|_| ArgError(format!("--inject `{entry}`: bad spike cycles")))?;
                }
            }
            "operand" => plan.operand_miss_rate = rate,
            other => {
                return Err(ArgError(format!(
                    "--inject: unknown fault kind `{other}` (branch|load|operand)"
                )))
            }
        }
    }
    Ok(plan)
}

/// Build a run budget from `--warmup/--measure/--max-cycles`.
///
/// # Errors
///
/// Fails on unparsable numbers.
pub fn budget_from_args(args: &Args) -> Result<RunBudget, ArgError> {
    let mut b = RunBudget::bench();
    b.warmup = args.get_or("warmup", b.warmup)?;
    b.measure = args.get_or("measure", b.measure)?;
    b.max_cycles = args.get_or("max-cycles", b.max_cycles)?;
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops::RegisterScheme;

    fn args(s: &str) -> Args {
        // Same value-flag set as main.rs: everything but the boolean --audit.
        let vals: Vec<&str> = CONFIG_FLAGS
            .iter()
            .chain(BUDGET_FLAGS.iter())
            .copied()
            .filter(|f| *f != "audit")
            .collect();
        Args::parse(s.split_whitespace().map(String::from), &vals).unwrap()
    }

    #[test]
    fn defaults_to_base_rf3() {
        let cfg = config_from_args(&args("")).unwrap();
        assert_eq!(cfg.scheme, RegisterScheme::Monolithic);
        assert_eq!(cfg.iq_ex_stages, 5);
    }

    #[test]
    fn dra_with_rf() {
        let cfg = config_from_args(&args("--scheme dra --rf 7")).unwrap();
        assert!(cfg.scheme.is_dra());
        assert_eq!(cfg.dec_iq_stages, 9);
        assert_eq!(cfg.iq_ex_stages, 3);
    }

    #[test]
    fn explicit_latencies_override() {
        let cfg = config_from_args(&args("--dec 7 --ex 5")).unwrap();
        assert_eq!((cfg.dec_iq_stages, cfg.iq_ex_stages), (7, 5));
    }

    #[test]
    fn bad_scheme_and_policy_report() {
        assert!(config_from_args(&args("--scheme fancy")).is_err());
        assert!(config_from_args(&args("--policy yolo")).is_err());
        assert!(config_from_args(&args("--predictor psychic")).is_err());
    }

    #[test]
    fn invalid_combination_caught_by_validate() {
        // IQ-EX shorter than the register read on the base scheme.
        assert!(config_from_args(&args("--rf 5 --ex 3")).is_err());
    }

    #[test]
    fn budget_parses() {
        let b = budget_from_args(&args("--warmup 10 --measure 20")).unwrap();
        assert_eq!((b.warmup, b.measure), (10, 20));
    }

    #[test]
    fn audit_and_watchdog_flags() {
        let cfg = config_from_args(&args("--audit --watchdog 1000")).unwrap();
        assert!(cfg.audit);
        assert_eq!(cfg.watchdog_window, 1000);
        let cfg = config_from_args(&args("")).unwrap();
        assert!(!cfg.audit);
    }

    #[test]
    fn inject_spec_parses() {
        let cfg =
            config_from_args(&args("--inject branch:0.01,load:0.05:300 --inject-seed 7")).unwrap();
        let plan = cfg.faults.unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.branch_flip_rate, 0.01);
        assert_eq!(plan.load_spike_rate, 0.05);
        assert_eq!(plan.load_spike_cycles, 300);
        assert_eq!(plan.operand_miss_rate, 0.0);
    }

    #[test]
    fn bad_inject_specs_report() {
        assert!(config_from_args(&args("--inject gamma:0.5")).is_err());
        assert!(config_from_args(&args("--inject branch")).is_err());
        assert!(config_from_args(&args("--inject branch:lots")).is_err());
        // Out-of-range rate is caught by PipelineConfig::validate.
        assert!(config_from_args(&args("--inject branch:1.5")).is_err());
    }
}
