//! `looseloops` — command-line front end to the *Loose Loops Sink Chips*
//! reproduction.
//!
//! ```text
//! looseloops run --bench swim --scheme dra --rf 5 --measure 200000
//! looseloops run --asm kernel.s --verify --trace out.kanata
//! looseloops figure fig8 --measure 100000
//! looseloops loops --scheme dra --rf 7
//! looseloops asm kernel.s --run
//! looseloops list
//! ```

mod args;
mod commands;
mod config;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
looseloops — 'Loose Loops Sink Chips' (HPCA 2002) reproduction

USAGE:
    looseloops <command> [flags]

COMMANDS:
    run      Simulate a workload and print statistics
             --bench NAME | --pair NAME | --asm FILE  (what to run)
             --scheme base|dra  --rf N  --dec X  --ex Y
             --policy tree|shadow|stall|refetch
             --predictor tournament|gshare|local|bimodal|taken
             --threads N  --warmup N  --measure N  --max-cycles N
             --verify  --trace FILE  --json
             --audit  (per-cycle invariant auditor)
             --watchdog N  (deadlock window in cycles, 0 = off)
             --inject branch:RATE,load:RATE[:CYCLES],operand:RATE
             --inject-seed N  (fault schedule seed, default 1)
             --fast-forward  (functional warm-up from a shared checkpoint)
             --sample auto|w=N,detail=N,warm=N,skip=N  (interval sampling
             with a CPI error bar; implies functional fast-forward)
             --ckpt-dir DIR  (on-disk checkpoint store for warm-up reuse)
             --profile-stages  (wall-clock per-stage breakdown of the
             simulator itself, printed to stderr; simulated results are
             byte-identical with or without it)
             --profile-json FILE  (append the stage profile to FILE as
             one JSON line per label; scripts/diff_stage_profile.py
             diffs two such files across commits)
    figure   Regenerate the paper's evaluation figures
             fig4|fig5|fig6|fig8|fig9|load-policy|dra-design|fwd-window|
             iq-size|prefetch|predictor|all  (`all` shares one run cache)
             --warmup N  --measure N  --smoke  --json-out FILE
             --jobs N  (sweep workers; default LOOSELOOPS_JOBS or all cores)
             --stacks  (append each figure's per-loop CPI stacks; reuses
             the figure's own memoized runs)
             --fast-forward | --sample SPEC  --ckpt-dir DIR  (as in `run`;
             sampled figures report estimates, detailed stays the reference)
             --store-dir DIR  (persistent result store: finished runs are
             reused across processes; LOOSELOOPS_STORE sets a default)
             --profile-stages  (per-figure wall-clock stage breakdown)
             --profile-json FILE  (stage profiles as JSON lines, as in `run`)
    store    Manage the persistent result store
             gc --max-bytes N  (evict least-recently-used entries until
             the store fits in N bytes)
             --store-dir DIR  (which store; LOOSELOOPS_STORE sets a default)
    serve    Long-lived job server sharing one sweep engine (and store)
             across clients speaking newline-delimited JSON over TCP
             --addr HOST:PORT  (default 127.0.0.1:4641)
             --jobs N  --queue N  (max concurrently executing requests)
             --store-dir DIR  (as in `figure`)
    submit   Send one figure request to a running `serve` daemon and
             print the streamed events
             ID  --addr HOST:PORT  --smoke | --warmup N --measure N
             --max-cycles N  --workloads a,b,c  --stacks
             --table  (render received figures as tables instead of JSON)
             --shutdown  (stop the daemon instead of submitting)
    checkpoint
             Build or inspect the functional warm-up checkpoint a
             workload's sweep points share
             --bench NAME | --pair NAME  --dir DIR  (default .looseloops-ckpt)
             --verify  (restore + detailed resume against the ISA oracle)
             (plus config/budget flags; --warmup sets the warm-up length)
    loops    Print the micro-architectural loop inventory for a config
             (same config flags as `run`)
    loops attribute
             Per-loop CPI stacks for a config over workloads: each lost
             retire slot charged to the loop that caused it, components
             summing to the measured CPI
             --workloads a,b,c  --jobs N  (plus config/budget flags)
    fuzz     Differential fuzzing: generated programs run through both the
             timing pipeline and the ISA oracle; any divergence in retire
             streams, final state or memory is a failure (shrunk by default)
             --seeds N  --start N  --jobs N  --budget CYCLES
             --profile branch|memory|chain|barrier|frontend|fp|mixed
             --no-shrink  --write-corpus DIR
             --replay DIR  (re-run checked-in reproducers, fail on drift)
    asm      Assemble a .s file; --run simulates it, --disasm round-trips
    kernel   Inspect a benchmark proxy (NAME [--disasm])
    list     List benchmarks, SMT pairs, and figures
    help     This text
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cmd = raw.first().cloned().unwrap_or_else(|| "help".into());
    let rest = raw.into_iter().skip(1);
    let value_flags: Vec<&str> = [
        "bench",
        "pair",
        "asm",
        "trace",
        "json-out",
        "workloads",
        "jobs",
        "scheme",
        "rf",
        "dec",
        "ex",
        "policy",
        "threads",
        "predictor",
        "warmup",
        "measure",
        "max-cycles",
        "instructions",
        "watchdog",
        "inject",
        "inject-seed",
        "seeds",
        "start",
        "budget",
        "profile",
        "replay",
        "write-corpus",
        "sample",
        "ckpt-dir",
        "profile-json",
        "dir",
        "store-dir",
        "addr",
        "queue",
        "max-bytes",
    ]
    .to_vec();
    let args = match Args::parse(rest, &value_flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match cmd.as_str() {
        "run" => commands::run(&args),
        "figure" => commands::figure(&args),
        "serve" => commands::serve(&args),
        "store" => commands::store(&args),
        "submit" => commands::submit(&args),
        "loops" => commands::loops(&args),
        "fuzz" => commands::fuzz(&args),
        "checkpoint" => commands::checkpoint(&args),
        "asm" => commands::asm(&args),
        "kernel" => commands::kernel(&args),
        "list" => commands::list(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(args::ArgError(format!(
            "unknown command `{other}` — try `looseloops help`"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
