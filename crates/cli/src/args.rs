//! Tiny hand-rolled flag parser: `--key value`, `--flag`, and positional
//! arguments, with typed accessors and an unknown-flag check.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, Option<String>>,
    order: Vec<String>,
}

/// Argument error with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw arguments. `value_flags` lists flags that consume the
    /// next token; everything else starting with `--` is boolean.
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        value_flags: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let name = name.to_string();
                if value_flags.contains(&name.as_str()) {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    out.flags.insert(name.clone(), Some(v));
                } else {
                    out.flags.insert(name.clone(), None);
                }
                out.order.push(name);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// String value of a flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// Parsed value of a flag, with a default.
    ///
    /// # Errors
    ///
    /// Fails if the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse `{v}`"))),
        }
    }

    /// Fail on flags outside the allowed set (catches typos).
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for f in &self.order {
            if !allowed.contains(&f.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{f} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, vals: &[&str]) -> Args {
        Args::parse(s.split_whitespace().map(String::from), vals).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse("run --bench swim --verify extra", &["bench"]);
        assert_eq!(a.positional(), ["run", "extra"]);
        assert_eq!(a.get("bench"), Some("swim"));
        assert!(a.has("verify"));
        assert!(!a.has("nope"));
    }

    #[test]
    fn typed_values_and_defaults() {
        let a = parse("--measure 5000", &["measure"]);
        assert_eq!(a.get_or("measure", 0u64).unwrap(), 5000);
        assert_eq!(a.get_or("warmup", 7u64).unwrap(), 7);
        assert!(a.get_or::<u64>("measure", 0).is_ok());
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = parse("--measure lots", &["measure"]);
        assert!(a.get_or::<u64>("measure", 0).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(["--bench".to_string()], &["bench"]).unwrap_err();
        assert!(e.0.contains("--bench"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = parse("--bnech swim", &["bnech"]);
        assert!(a.reject_unknown(&["bench"]).is_err());
        let a = parse("--bench swim", &["bench"]);
        assert!(a.reject_unknown(&["bench"]).is_ok());
    }
}
