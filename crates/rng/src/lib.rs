//! A small, fully deterministic pseudo-random number generator.
//!
//! The repository must build and test offline, so it carries its own PRNG
//! instead of depending on `rand`. Everything that needs randomness —
//! synthetic workload generation, randomized property tests, and the
//! fault-injection schedules in `looseloops-pipeline` — routes through this
//! crate, which guarantees that a given seed reproduces the same stream on
//! every platform and in every build profile.
//!
//! The core generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64 so that small, human-friendly seeds (0, 1, 2, …) still land
//! in well-mixed states.

#![forbid(unsafe_code)]

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64 — used for seeding only.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// A generator whose entire stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 raw bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, n)`. `n` must be positive.
    ///
    /// Uses the widening-multiply reduction; the residual bias is on the
    /// order of `n / 2^64` — irrelevant here, and the method is branch-free
    /// and deterministic.
    pub fn bounded(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A uniform value from a half-open or inclusive integer range, e.g.
    /// `rng.gen_range(0..24)` or `rng.gen_range(0..=i)`.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded(slice.len() as u64) as usize])
        }
    }
}

/// Integer ranges that [`Rng::gen_range`] can sample from.
pub trait RangeSample {
    /// The sampled value's type.
    type Out;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Out;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for core::ops::Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.bounded(span)) as $t
            }
        }
        impl RangeSample for core::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.bounded(span)) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sample_signed {
    ($($t:ty),*) => {$(
        impl RangeSample for core::ops::Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.bounded(span) as i64) as $t
            }
        }
        impl RangeSample for core::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64).wrapping_add(rng.bounded(span) as i64) as $t
            }
        }
    )*};
}

impl_range_sample_signed!(i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_varies() {
        let mut rng = Rng::seed_from_u64(9);
        let samples: Vec<f64> = (0..1_000).map(|_| rng.gen_f64()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(5).shuffle(&mut a);
        Rng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(a, sorted, "32 elements should not shuffle to identity");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = Rng::seed_from_u64(13);
        let xs = [1, 2, 3];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        assert_eq!(rng.choose::<u32>(&[]), None);
    }
}
