//! Randomized property tests for the ISA layer.
//!
//! These run the same properties a proptest suite would, but over a fixed
//! deterministic seed schedule from `looseloops-rng` so the whole repo
//! builds and tests without external dependencies (and failures reproduce
//! exactly).

use looseloops_isa::{decode, encode, eval_op, FlatMemory, Inst, Memory, Opcode, Reg};
use looseloops_rng::Rng;

const CASES: u64 = 512;

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.gen_range(0u8..64))
}

fn arb_opcode(rng: &mut Rng) -> Opcode {
    Opcode::from_u8(rng.gen_range(0u8..looseloops_isa::inst::NUM_OPCODES)).unwrap()
}

fn arb_inst(rng: &mut Rng) -> Inst {
    Inst {
        op: arb_opcode(rng),
        rd: arb_reg(rng),
        rs1: arb_reg(rng),
        rs2: arb_reg(rng),
        imm: rng.gen_range(Inst::IMM_MIN..=Inst::IMM_MAX),
        uses_imm: rng.gen_bool(0.5),
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng::seed_from_u64(0x15a1);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        let word = encode(inst);
        let back = decode(word).expect("encoded instructions always decode");
        assert_eq!(back, inst);
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = Rng::seed_from_u64(0x15a2);
    for _ in 0..CASES * 4 {
        let _ = decode(rng.next_u64()); // may Err, must not panic
    }
}

#[test]
fn decoded_garbage_reencodes_identically() {
    let mut rng = Rng::seed_from_u64(0x15a3);
    for _ in 0..CASES * 4 {
        let word = rng.next_u64();
        if let Ok(inst) = decode(word) {
            // Valid words are fixed points of decode∘encode.
            assert_eq!(encode(inst), word);
        }
    }
}

#[test]
fn commutative_ops_commute() {
    let mut rng = Rng::seed_from_u64(0x15a4);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        for op in [
            Opcode::Add,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Mul,
        ] {
            assert_eq!(eval_op(op, a, b), eval_op(op, b, a));
        }
        assert_eq!(eval_op(Opcode::Seq, a, b), eval_op(Opcode::Seq, b, a));
    }
}

#[test]
fn shifts_mask_their_amount() {
    let mut rng = Rng::seed_from_u64(0x15a5);
    for _ in 0..CASES {
        let (a, s) = (rng.next_u64(), rng.next_u64());
        assert_eq!(eval_op(Opcode::Sll, a, s), eval_op(Opcode::Sll, a, s & 63));
        assert_eq!(eval_op(Opcode::Srl, a, s), eval_op(Opcode::Srl, a, s & 63));
        assert_eq!(eval_op(Opcode::Sra, a, s), eval_op(Opcode::Sra, a, s & 63));
    }
}

#[test]
fn comparison_trichotomy() {
    let mut rng = Rng::seed_from_u64(0x15a6);
    for i in 0..CASES {
        let a = rng.next_u64();
        // Mix in equal pairs: a random pair of u64s is almost never equal.
        let b = if i % 4 == 0 { a } else { rng.next_u64() };
        let lt = eval_op(Opcode::Slt, a, b);
        let gt = eval_op(Opcode::Slt, b, a);
        let eq = eval_op(Opcode::Seq, a, b);
        assert_eq!(lt + gt + eq, 1, "exactly one of <, >, == holds");
    }
}

#[test]
fn memory_read_back_what_you_wrote() {
    let mut rng = Rng::seed_from_u64(0x15a7);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..20);
        let writes: Vec<(u64, u64)> = (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect();
        let mut m = FlatMemory::new();
        for (addr, val) in &writes {
            m.write(*addr, 8, *val);
        }
        // The last write to each address wins.
        let mut last = std::collections::HashMap::new();
        for (addr, val) in &writes {
            last.insert(*addr, *val);
        }
        for (addr, val) in last {
            // Only check addresses not partially overwritten by others.
            if writes.iter().filter(|(a, _)| a.abs_diff(addr) < 8).count() == 1 {
                assert_eq!(m.read(addr, 8), val);
            }
        }
    }
}

#[test]
fn byte_assembled_reads_match_word_reads() {
    let mut rng = Rng::seed_from_u64(0x15a8);
    for _ in 0..CASES {
        let (addr, val) = (rng.next_u64(), rng.next_u64());
        let mut m = FlatMemory::new();
        m.write(addr, 8, val);
        let lo = m.read(addr, 4);
        let hi = m.read(addr.wrapping_add(4), 4);
        assert_eq!(lo | (hi << 32), val);
    }
}

#[test]
fn srcs_and_dest_never_include_zero_registers() {
    let mut rng = Rng::seed_from_u64(0x15a9);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        for s in inst.srcs().into_iter().flatten() {
            assert!(!s.is_zero());
        }
        if let Some(d) = inst.dest() {
            assert!(!d.is_zero());
        }
    }
}

/// assemble ∘ disassemble is the identity on instruction streams built
/// from any mix of representable instructions.
#[test]
fn disassembly_round_trips() {
    let mut rng = Rng::seed_from_u64(0x15aa);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..40);
        // The text form expresses exactly the canonical instructions (dead
        // fields normalized — see `Inst::canonical`).
        let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng).canonical()).collect();
        let prog = looseloops_isa::Program::new("p", insts);
        let text = looseloops_isa::disassemble(&prog);
        let back = looseloops_isa::assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must re-assemble: {e}\n{text}"));
        assert_eq!(back.insts, prog.insts);
    }
}

/// Canonicalization never changes an instruction's dataflow contract.
#[test]
fn canonicalization_preserves_semantics() {
    let mut rng = Rng::seed_from_u64(0x15ab);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        let c = inst.canonical();
        assert_eq!(c.canonical(), c, "idempotent");
        assert_eq!(c.op, inst.op);
        assert_eq!(c.dest(), inst.dest());
        // Sources: identical except that immediate forms drop the dead rs2.
        assert_eq!(c.srcs()[0], inst.srcs()[0]);
    }
}
