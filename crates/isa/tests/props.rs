//! Property tests for the ISA layer.

use looseloops_isa::{decode, encode, eval_op, FlatMemory, Inst, Memory, Opcode, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(Reg::from_index)
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0u8..looseloops_isa::inst::NUM_OPCODES).prop_map(|v| Opcode::from_u8(v).unwrap())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_opcode(), arb_reg(), arb_reg(), arb_reg(), Inst::IMM_MIN..=Inst::IMM_MAX, any::<bool>())
        .prop_map(|(op, rd, rs1, rs2, imm, uses_imm)| Inst { op, rd, rs1, rs2, imm, uses_imm })
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in arb_inst()) {
        let word = encode(inst);
        let back = decode(word).expect("encoded instructions always decode");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word); // may Err, must not panic
    }

    #[test]
    fn decoded_garbage_reencodes_identically(word in any::<u64>()) {
        if let Ok(inst) = decode(word) {
            // Valid words are fixed points of decode∘encode.
            prop_assert_eq!(encode(inst), word);
        }
    }

    #[test]
    fn commutative_ops_commute(a in any::<u64>(), b in any::<u64>()) {
        for op in [Opcode::Add, Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Mul] {
            prop_assert_eq!(eval_op(op, a, b), eval_op(op, b, a));
        }
        prop_assert_eq!(eval_op(Opcode::Seq, a, b), eval_op(Opcode::Seq, b, a));
    }

    #[test]
    fn shifts_mask_their_amount(a in any::<u64>(), s in any::<u64>()) {
        prop_assert_eq!(
            eval_op(Opcode::Sll, a, s),
            eval_op(Opcode::Sll, a, s & 63)
        );
        prop_assert_eq!(
            eval_op(Opcode::Srl, a, s),
            eval_op(Opcode::Srl, a, s & 63)
        );
        prop_assert_eq!(
            eval_op(Opcode::Sra, a, s),
            eval_op(Opcode::Sra, a, s & 63)
        );
    }

    #[test]
    fn comparison_trichotomy(a in any::<u64>(), b in any::<u64>()) {
        let lt = eval_op(Opcode::Slt, a, b);
        let gt = eval_op(Opcode::Slt, b, a);
        let eq = eval_op(Opcode::Seq, a, b);
        prop_assert_eq!(lt + gt + eq, 1, "exactly one of <, >, == holds");
    }

    #[test]
    fn memory_read_back_what_you_wrote(
        writes in prop::collection::vec((any::<u64>(), any::<u64>()), 1..20)
    ) {
        let mut m = FlatMemory::new();
        for (addr, val) in &writes {
            m.write(*addr, 8, *val);
        }
        // The last write to each address wins.
        let mut last = std::collections::HashMap::new();
        for (addr, val) in &writes {
            last.insert(*addr, *val);
        }
        for (addr, val) in last {
            // Only check addresses not partially overwritten by others.
            if writes.iter().filter(|(a, _)| a.abs_diff(addr) < 8).count() == 1 {
                prop_assert_eq!(m.read(addr, 8), val);
            }
        }
    }

    #[test]
    fn byte_assembled_reads_match_word_reads(addr in any::<u64>(), val in any::<u64>()) {
        let mut m = FlatMemory::new();
        m.write(addr, 8, val);
        let lo = m.read(addr, 4);
        let hi = m.read(addr.wrapping_add(4), 4);
        prop_assert_eq!(lo | (hi << 32), val);
    }

    #[test]
    fn srcs_and_dest_never_include_zero_registers(inst in arb_inst()) {
        for s in inst.srcs().into_iter().flatten() {
            prop_assert!(!s.is_zero());
        }
        if let Some(d) = inst.dest() {
            prop_assert!(!d.is_zero());
        }
    }
}

proptest! {
    /// assemble ∘ disassemble is the identity on instruction streams built
    /// from any mix of representable instructions.
    #[test]
    fn disassembly_round_trips(insts in prop::collection::vec(arb_inst(), 1..40)) {
        // The text form expresses exactly the canonical instructions (dead
        // fields normalized — see `Inst::canonical`).
        let insts: Vec<Inst> = insts.into_iter().map(Inst::canonical).collect();
        let prog = looseloops_isa::Program::new("p", insts);
        let text = looseloops_isa::disassemble(&prog);
        let back = looseloops_isa::assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must re-assemble: {e}\n{text}"));
        prop_assert_eq!(back.insts, prog.insts);
    }

    /// Canonicalization never changes an instruction's dataflow contract.
    #[test]
    fn canonicalization_preserves_semantics(inst in arb_inst()) {
        let c = inst.canonical();
        prop_assert_eq!(c.canonical(), c, "idempotent");
        prop_assert_eq!(c.op, inst.op);
        prop_assert_eq!(c.dest(), inst.dest());
        // Sources: identical except that immediate forms drop the dead rs2.
        prop_assert_eq!(c.srcs()[0], inst.srcs()[0]);
    }
}
