//! Randomized property tests for the ISA layer.
//!
//! These run the same properties a proptest suite would, but over a fixed
//! deterministic seed schedule from `looseloops-rng` so the whole repo
//! builds and tests without external dependencies (and failures reproduce
//! exactly).

use looseloops_isa::{decode, encode, eval_op, FlatMemory, Inst, Memory, Opcode, Reg};
use looseloops_rng::Rng;

const CASES: u64 = 512;

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.gen_range(0u8..64))
}

fn arb_opcode(rng: &mut Rng) -> Opcode {
    Opcode::from_u8(rng.gen_range(0u8..looseloops_isa::inst::NUM_OPCODES)).unwrap()
}

fn arb_inst(rng: &mut Rng) -> Inst {
    Inst {
        op: arb_opcode(rng),
        rd: arb_reg(rng),
        rs1: arb_reg(rng),
        rs2: arb_reg(rng),
        imm: rng.gen_range(Inst::IMM_MIN..=Inst::IMM_MAX),
        uses_imm: rng.gen_bool(0.5),
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = Rng::seed_from_u64(0x15a1);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        let word = encode(inst);
        let back = decode(word).expect("encoded instructions always decode");
        assert_eq!(back, inst);
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = Rng::seed_from_u64(0x15a2);
    for _ in 0..CASES * 4 {
        let _ = decode(rng.next_u64()); // may Err, must not panic
    }
}

#[test]
fn decoded_garbage_reencodes_identically() {
    let mut rng = Rng::seed_from_u64(0x15a3);
    for _ in 0..CASES * 4 {
        let word = rng.next_u64();
        if let Ok(inst) = decode(word) {
            // Valid words are fixed points of decode∘encode.
            assert_eq!(encode(inst), word);
        }
    }
}

#[test]
fn commutative_ops_commute() {
    let mut rng = Rng::seed_from_u64(0x15a4);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        for op in [
            Opcode::Add,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Mul,
        ] {
            assert_eq!(eval_op(op, a, b), eval_op(op, b, a));
        }
        assert_eq!(eval_op(Opcode::Seq, a, b), eval_op(Opcode::Seq, b, a));
    }
}

#[test]
fn shifts_mask_their_amount() {
    let mut rng = Rng::seed_from_u64(0x15a5);
    for _ in 0..CASES {
        let (a, s) = (rng.next_u64(), rng.next_u64());
        assert_eq!(eval_op(Opcode::Sll, a, s), eval_op(Opcode::Sll, a, s & 63));
        assert_eq!(eval_op(Opcode::Srl, a, s), eval_op(Opcode::Srl, a, s & 63));
        assert_eq!(eval_op(Opcode::Sra, a, s), eval_op(Opcode::Sra, a, s & 63));
    }
}

#[test]
fn comparison_trichotomy() {
    let mut rng = Rng::seed_from_u64(0x15a6);
    for i in 0..CASES {
        let a = rng.next_u64();
        // Mix in equal pairs: a random pair of u64s is almost never equal.
        let b = if i % 4 == 0 { a } else { rng.next_u64() };
        let lt = eval_op(Opcode::Slt, a, b);
        let gt = eval_op(Opcode::Slt, b, a);
        let eq = eval_op(Opcode::Seq, a, b);
        assert_eq!(lt + gt + eq, 1, "exactly one of <, >, == holds");
    }
}

#[test]
fn memory_read_back_what_you_wrote() {
    let mut rng = Rng::seed_from_u64(0x15a7);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..20);
        let writes: Vec<(u64, u64)> = (0..n).map(|_| (rng.next_u64(), rng.next_u64())).collect();
        let mut m = FlatMemory::new();
        for (addr, val) in &writes {
            m.write(*addr, 8, *val);
        }
        // The last write to each address wins.
        let mut last = std::collections::HashMap::new();
        for (addr, val) in &writes {
            last.insert(*addr, *val);
        }
        for (addr, val) in last {
            // Only check addresses not partially overwritten by others.
            if writes.iter().filter(|(a, _)| a.abs_diff(addr) < 8).count() == 1 {
                assert_eq!(m.read(addr, 8), val);
            }
        }
    }
}

#[test]
fn byte_assembled_reads_match_word_reads() {
    let mut rng = Rng::seed_from_u64(0x15a8);
    for _ in 0..CASES {
        let (addr, val) = (rng.next_u64(), rng.next_u64());
        let mut m = FlatMemory::new();
        m.write(addr, 8, val);
        let lo = m.read(addr, 4);
        let hi = m.read(addr.wrapping_add(4), 4);
        assert_eq!(lo | (hi << 32), val);
    }
}

#[test]
fn srcs_and_dest_never_include_zero_registers() {
    let mut rng = Rng::seed_from_u64(0x15a9);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        for s in inst.srcs().into_iter().flatten() {
            assert!(!s.is_zero());
        }
        if let Some(d) = inst.dest() {
            assert!(!d.is_zero());
        }
    }
}

/// assemble ∘ disassemble is the identity on instruction streams built
/// from any mix of representable instructions.
#[test]
fn disassembly_round_trips() {
    let mut rng = Rng::seed_from_u64(0x15aa);
    for _ in 0..64 {
        let n = rng.gen_range(1usize..40);
        // The text form expresses exactly the canonical instructions (dead
        // fields normalized — see `Inst::canonical`). Streams end in `halt`
        // because the assembler rejects images that can fall off the end.
        let mut insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng).canonical()).collect();
        insts.push(Inst::halt());
        let prog = looseloops_isa::Program::new("p", insts);
        let text = looseloops_isa::disassemble(&prog);
        let back = looseloops_isa::assemble(&text)
            .unwrap_or_else(|e| panic!("disassembly must re-assemble: {e}\n{text}"));
        assert_eq!(back.insts, prog.insts);
    }
}

/// The operate opcodes `eval_op` defines semantics for. Listed explicitly
/// rather than derived from `Class` (Nop is `IntAlu` but has no dataflow);
/// `operate_list_is_exhaustive` pins the list against the opcode table.
const OPERATE_OPS: [Opcode; 20] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Seq,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FCmpLt,
    Opcode::FCmpEq,
    Opcode::FCvtIf,
    Opcode::FCvtFi,
];

/// Operand schedule for the `eval_op` properties: uniform random values
/// salted with the corner cases where wrapping and sign behavior live.
fn arb_operand(rng: &mut Rng) -> u64 {
    const CORNERS: [u64; 8] = [
        0,
        1,
        u64::MAX,        // -1
        i64::MAX as u64, // largest positive
        i64::MIN as u64, // smallest negative
        63,
        64,
        f64::NAN.to_bits(),
    ];
    if rng.gen_bool(0.4) {
        *rng.choose(&CORNERS).unwrap()
    } else {
        rng.next_u64()
    }
}

/// The operate list covers exactly the opcodes `eval_op` accepts: every
/// listed opcode evaluates, and they are the contiguous leading block of
/// the opcode table (each appears exactly once).
#[test]
fn operate_list_is_exhaustive() {
    for (i, op) in OPERATE_OPS.iter().enumerate() {
        assert_eq!(
            Opcode::from_u8(i as u8),
            Some(*op),
            "operate opcodes are the leading discriminants"
        );
        let _ = eval_op(*op, 1, 2); // must not panic
    }
    // The next discriminant starts the non-operate opcodes (memory block).
    assert_eq!(Opcode::from_u8(OPERATE_OPS.len() as u8), Some(Opcode::Ldq));
}

/// Integer arithmetic wraps at the u64 boundary, exactly like two's
/// complement hardware: Add/Sub are inverses, Sub is Add of the negation,
/// and Mul matches the low 64 bits of the full 128-bit product.
#[test]
fn arithmetic_wraps_at_u64_boundaries() {
    let mut rng = Rng::seed_from_u64(0x15ac);
    assert_eq!(eval_op(Opcode::Add, u64::MAX, 1), 0);
    assert_eq!(eval_op(Opcode::Sub, 0, 1), u64::MAX);
    assert_eq!(eval_op(Opcode::Mul, 1 << 63, 2), 0);
    for _ in 0..CASES {
        let (a, b) = (arb_operand(&mut rng), arb_operand(&mut rng));
        assert_eq!(eval_op(Opcode::Sub, eval_op(Opcode::Add, a, b), b), a);
        assert_eq!(
            eval_op(Opcode::Add, a, eval_op(Opcode::Sub, 0, b)),
            eval_op(Opcode::Sub, a, b)
        );
        let wide = (a as u128).wrapping_mul(b as u128) as u64;
        assert_eq!(eval_op(Opcode::Mul, a, b), wide);
    }
}

/// Shift amounts use only the low 6 bits of the second operand — a shift
/// by 64 is a shift by 0, never undefined behavior or a zero result.
#[test]
fn shift_amounts_mask_to_six_bits() {
    let mut rng = Rng::seed_from_u64(0x15ad);
    for _ in 0..CASES {
        let a = arb_operand(&mut rng);
        let sh = rng.next_u64();
        for op in [Opcode::Sll, Opcode::Srl, Opcode::Sra] {
            assert_eq!(eval_op(op, a, sh), eval_op(op, a, sh & 63));
        }
        assert_eq!(eval_op(Opcode::Sll, a, 64), a);
        assert_eq!(eval_op(Opcode::Srl, a, 128), a);
        // Sra fills with the sign bit; 63 copies it everywhere.
        let expect = if (a as i64) < 0 { u64::MAX } else { 0 };
        assert_eq!(eval_op(Opcode::Sra, a, 63), expect);
        // Logical vs arithmetic shift agree on non-negative values.
        if (a as i64) >= 0 {
            assert_eq!(eval_op(Opcode::Sra, a, sh), eval_op(Opcode::Srl, a, sh));
        }
    }
}

/// Slt compares signed, Sltu unsigned, Seq is equality — and the three are
/// mutually consistent with the native comparisons on every operand pair.
#[test]
fn compares_are_signed_unsigned_consistent() {
    let mut rng = Rng::seed_from_u64(0x15ae);
    // The boundary where the two orders disagree: -1 <s 0 but MAX >u 0.
    assert_eq!(eval_op(Opcode::Slt, u64::MAX, 0), 1);
    assert_eq!(eval_op(Opcode::Sltu, u64::MAX, 0), 0);
    for _ in 0..CASES {
        let (a, b) = (arb_operand(&mut rng), arb_operand(&mut rng));
        assert_eq!(eval_op(Opcode::Slt, a, b), ((a as i64) < (b as i64)) as u64);
        assert_eq!(eval_op(Opcode::Sltu, a, b), (a < b) as u64);
        assert_eq!(eval_op(Opcode::Seq, a, b), (a == b) as u64);
        // Trichotomy: exactly one of <, ==, > holds (per signedness).
        let lt = eval_op(Opcode::Slt, a, b);
        let gt = eval_op(Opcode::Slt, b, a);
        let eq = eval_op(Opcode::Seq, a, b);
        assert_eq!(lt + gt + eq, 1);
    }
}

/// Bitwise ops are pure lane-wise functions: idempotent And/Or,
/// self-inverse Xor, De Morgan duality through Xor-with-all-ones.
#[test]
fn bitwise_ops_obey_boolean_algebra() {
    let mut rng = Rng::seed_from_u64(0x15af);
    for _ in 0..CASES {
        let (a, b) = (arb_operand(&mut rng), arb_operand(&mut rng));
        assert_eq!(eval_op(Opcode::And, a, a), a);
        assert_eq!(eval_op(Opcode::Or, a, a), a);
        assert_eq!(eval_op(Opcode::Xor, eval_op(Opcode::Xor, a, b), b), a);
        let not = |x| eval_op(Opcode::Xor, x, u64::MAX);
        assert_eq!(
            not(eval_op(Opcode::And, a, b)),
            eval_op(Opcode::Or, not(a), not(b))
        );
    }
}

/// FP opcodes operate on bit patterns: comparisons are IEEE (NaN compares
/// false, even to itself) and the float→int conversion pins NaN to 0
/// instead of UB.
#[test]
fn fp_ops_follow_ieee_and_pin_nan_conversion() {
    let mut rng = Rng::seed_from_u64(0x15b0);
    let nan = f64::NAN.to_bits();
    assert_eq!(eval_op(Opcode::FCmpEq, nan, nan), 0);
    assert_eq!(eval_op(Opcode::FCmpLt, nan, 1.0f64.to_bits()), 0);
    assert_eq!(eval_op(Opcode::FCvtFi, nan, 0), 0);
    for _ in 0..CASES {
        let x = rng.gen_range(-1_000_000i64..1_000_000);
        // Round-trip integers through the fp bank: exact for small values.
        let f = eval_op(Opcode::FCvtIf, x as u64, 0);
        assert_eq!(eval_op(Opcode::FCvtFi, f, 0), x as u64);
        // FAdd on converted integers matches integer addition.
        let y = rng.gen_range(-1_000_000i64..1_000_000);
        let g = eval_op(Opcode::FCvtIf, y as u64, 0);
        assert_eq!(
            eval_op(Opcode::FCvtFi, eval_op(Opcode::FAdd, f, g), 0),
            (x + y) as u64
        );
        // Comparisons agree with the signed integer order.
        assert_eq!(eval_op(Opcode::FCmpLt, f, g), (x < y) as u64);
    }
}

/// Canonicalization never changes an instruction's dataflow contract.
#[test]
fn canonicalization_preserves_semantics() {
    let mut rng = Rng::seed_from_u64(0x15ab);
    for _ in 0..CASES {
        let inst = arb_inst(&mut rng);
        let c = inst.canonical();
        assert_eq!(c.canonical(), c, "idempotent");
        assert_eq!(c.op, inst.op);
        assert_eq!(c.dest(), inst.dest());
        // Sources: identical except that immediate forms drop the dead rs2.
        assert_eq!(c.srcs()[0], inst.srcs()[0]);
    }
}
