//! A small, fixed-width, Alpha-flavoured 64-bit ISA used as the substrate of
//! the *Loose Loops Sink Chips* reproduction.
//!
//! The paper's machine executes Alpha binaries; we substitute an ISA of our
//! own that preserves everything the study depends on: two register banks
//! (32 integer + 32 floating-point registers with hard-wired zero registers),
//! loads/stores with displacement addressing, conditional branches that
//! resolve in the execute stage, indirect jumps and calls, a memory barrier,
//! and instruction classes with distinct execution latencies.
//!
//! The crate provides four layers:
//!
//! - [`inst`] / [`reg`]: the instruction and register model,
//! - [`encode`]: a fixed 8-byte binary encoding with lossless round-trip,
//! - [`asm`] / [`program`]: a text assembler and a programmatic
//!   [`ProgramBuilder`] used by the workload generators,
//! - [`interp`]: an architectural (functional) interpreter that serves as
//!   the reference model the timing simulator is validated against.
//!
//! # Example
//!
//! ```
//! use looseloops_isa::{asm, interp::{ArchState, FlatMemory}};
//!
//! let prog = asm::assemble(
//!     "
//!         addi r1, r31, 10      ; counter = 10
//!         addi r2, r31, 0       ; sum = 0
//!     loop:
//!         add  r2, r2, r1
//!         subi r1, r1, 1
//!         bne  r1, loop
//!         halt
//!     ",
//! ).expect("valid assembly");
//!
//! let mut mem = FlatMemory::new();
//! let mut state = ArchState::new(&prog);
//! let trace = state.run(&prog, &mut mem, 1_000).expect("program halts");
//! assert_eq!(state.read_reg(looseloops_isa::Reg::int(2)), 55);
//! assert!(trace.halted);
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod fastfwd;
pub mod inst;
pub mod interp;
pub mod predecode;
pub mod program;
pub mod reg;

pub use asm::{assemble, AsmError};
pub use disasm::{disassemble, disassemble_words};
pub use encode::{decode, encode, DecodeError};
pub use fastfwd::{fast_forward, NoWarm, WarmHooks, NO_FETCH_LINE};
pub use inst::{Class, Inst, Opcode};
pub use interp::{
    branch_taken, control_target, eval_op, ArchState, ExecError, FlatMemory, Memory, Retired,
    RunSummary, StateDivergence,
};
pub use predecode::{BranchKind, ClusterAffinity, Predecode, StaticInstInfo};
pub use program::{Program, ProgramBuilder, ProgramError};
pub use reg::Reg;
