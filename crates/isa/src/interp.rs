//! Architectural (functional) interpreter.
//!
//! This is the reference model of the ISA: one instruction per step, in
//! program order, with no timing. The cycle-level pipeline in
//! `looseloops-pipeline` is validated against it — every instruction the
//! pipeline retires must match the interpreter's retire stream value for
//! value ([`Retired`] records carry enough state to compare).

use crate::inst::{Class, Inst, Opcode};
use crate::program::Program;
use crate::reg::{Reg, NUM_ARCH_REGS};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Byte-addressed data memory as seen by the interpreter (and, through the
/// same trait, by the timing simulator's retire stage).
///
/// Reads of never-written locations return zero, mirroring a zero-filled
/// address space.
pub trait Memory {
    /// Read `size` bytes (1, 4, or 8) at `addr`, little-endian, zero-extended.
    fn read(&mut self, addr: u64, size: u8) -> u64;
    /// Write the low `size` bytes of `val` at `addr`, little-endian.
    fn write(&mut self, addr: u64, size: u8, val: u64);
}

/// Simple sparse memory: 4 KiB pages allocated on first touch.
#[derive(Debug, Default, Clone)]
pub struct FlatMemory {
    pages: HashMap<u64, Box<[u8; 4096]>>,
}

impl FlatMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> FlatMemory {
        FlatMemory::default()
    }

    /// Build a memory pre-loaded with a program's initial data image.
    pub fn with_program(prog: &Program) -> FlatMemory {
        let mut m = FlatMemory::new();
        m.load_init_data(prog);
        m
    }

    /// Copy `prog.init_data` into this memory.
    pub fn load_init_data(&mut self, prog: &Program) {
        for (addr, bytes) in &prog.init_data {
            for (i, b) in bytes.iter().enumerate() {
                self.write_byte(addr + i as u64, *b);
            }
        }
    }

    /// Number of 4 KiB pages that have been touched.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// Iterate over touched pages as `(page_index, bytes)` — the byte range
    /// covered by a page is `page_index * 4096 ..`. Order is unspecified;
    /// checkpoint writers sort by index for a canonical encoding.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8; 4096])> {
        self.pages.iter().map(|(&idx, bytes)| (idx, &**bytes))
    }

    /// Install a whole page's bytes at `page_index` (checkpoint restore),
    /// replacing any existing contents of that page.
    pub fn install_page(&mut self, page_index: u64, bytes: &[u8; 4096]) {
        self.pages.insert(page_index, Box::new(*bytes));
    }

    /// Compare two memories byte for byte, treating untouched pages as
    /// zero-filled. For each page whose contents differ, the first
    /// differing byte is reported; a page touched on only one side whose
    /// contents still compare equal (all zeros) is reported as a
    /// touched-set divergence instead.
    pub fn diff(&self, other: &FlatMemory) -> Vec<StateDivergence> {
        const ZERO_PAGE: [u8; 4096] = [0; 4096];
        let mut pages: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let mut out = Vec::new();
        for page in pages {
            let a = self.pages.get(&page).map_or(&ZERO_PAGE[..], |p| &p[..]);
            let b = other.pages.get(&page).map_or(&ZERO_PAGE[..], |p| &p[..]);
            if let Some(off) = (0..4096).find(|&i| a[i] != b[i]) {
                out.push(StateDivergence::Memory {
                    addr: (page << 12) + off as u64,
                    left: a[off],
                    right: b[off],
                });
            } else if self.pages.contains_key(&page) != other.pages.contains_key(&page) {
                out.push(StateDivergence::PageTouched {
                    page,
                    left: self.pages.contains_key(&page),
                    right: other.pages.contains_key(&page),
                });
            }
        }
        out
    }

    fn read_byte(&mut self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> 12)) {
            Some(p) => p[(addr & 0xfff) as usize],
            None => 0,
        }
    }

    fn write_byte(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0u8; 4096]));
        page[(addr & 0xfff) as usize] = val;
    }
}

impl Memory for FlatMemory {
    fn read(&mut self, addr: u64, size: u8) -> u64 {
        debug_assert!(matches!(size, 1 | 4 | 8), "unsupported access size {size}");
        let off = (addr & 0xfff) as usize;
        // One page lookup for the whole access; the per-byte path (one
        // hash lookup per byte) only remains for page-straddling accesses.
        if off + size as usize <= 4096 {
            return match self.pages.get(&(addr >> 12)) {
                Some(p) => {
                    let mut v: u64 = 0;
                    for (i, &b) in p[off..off + size as usize].iter().enumerate() {
                        v |= (b as u64) << (8 * i);
                    }
                    v
                }
                None => 0,
            };
        }
        let mut v: u64 = 0;
        for i in 0..size as u64 {
            v |= (self.read_byte(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    fn write(&mut self, addr: u64, size: u8, val: u64) {
        debug_assert!(matches!(size, 1 | 4 | 8), "unsupported access size {size}");
        let off = (addr & 0xfff) as usize;
        if off + size as usize <= 4096 {
            let page = self
                .pages
                .entry(addr >> 12)
                .or_insert_with(|| Box::new([0u8; 4096]));
            for (i, b) in page[off..off + size as usize].iter_mut().enumerate() {
                *b = (val >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..size as u64 {
            self.write_byte(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }
}

/// Execution error from the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The PC ran off the end of the instruction image (or an indirect jump
    /// targeted a non-instruction address).
    PcOutOfRange(u64),
    /// `step` was called on a halted thread.
    Halted,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program image"),
            ExecError::Halted => write!(f, "thread already halted"),
        }
    }
}

impl Error for ExecError {}

/// Record of one architecturally retired instruction; the timing simulator
/// emits the same records so the two streams can be compared exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retired {
    /// PC of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Destination register and the value written, if any.
    pub wrote: Option<(Reg, u64)>,
    /// Effective address and size for loads/stores.
    pub mem_addr: Option<(u64, u8)>,
    /// Branch outcome for control instructions.
    pub taken: Option<bool>,
    /// PC of the next instruction in program order.
    pub next_pc: u64,
}

/// Summary returned by [`ArchState::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Instructions retired.
    pub retired: u64,
    /// True if a `halt` retired (as opposed to the step budget expiring).
    pub halted: bool,
}

/// One observed difference between two architectural states or two data
/// memories — the unit of comparison for the differential tests (see
/// [`ArchState::diff`] and [`FlatMemory::diff`]). `left`/`right` follow the
/// call: `a.diff(&b)` reports `a`'s value as `left`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateDivergence {
    /// An architectural register holds different values.
    Register {
        /// The diverging register.
        reg: Reg,
        /// Value on the left-hand state.
        left: u64,
        /// Value on the right-hand state.
        right: u64,
    },
    /// The program counters differ.
    Pc {
        /// Left-hand PC.
        left: u64,
        /// Right-hand PC.
        right: u64,
    },
    /// One state has halted and the other has not.
    Halted {
        /// Left-hand halt flag.
        left: bool,
        /// Right-hand halt flag.
        right: bool,
    },
    /// A 4 KiB page was touched on one side only (contents still equal,
    /// i.e. all zeros).
    PageTouched {
        /// Page number (byte address `page << 12`).
        page: u64,
        /// Whether the left-hand memory touched the page.
        left: bool,
        /// Whether the right-hand memory touched the page.
        right: bool,
    },
    /// First differing byte of a page whose contents diverge.
    Memory {
        /// Byte address of the first difference within the page.
        addr: u64,
        /// Byte on the left-hand memory.
        left: u8,
        /// Byte on the right-hand memory.
        right: u8,
    },
}

impl fmt::Display for StateDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StateDivergence::Register { reg, left, right } => {
                write!(f, "register {reg}: {left:#x} != {right:#x}")
            }
            StateDivergence::Pc { left, right } => write!(f, "pc: {left} != {right}"),
            StateDivergence::Halted { left, right } => {
                write!(f, "halted: {left} != {right}")
            }
            StateDivergence::PageTouched { page, left, right } => write!(
                f,
                "page {page:#x} (addr {:#x}): touched {left} != {right}",
                page << 12
            ),
            StateDivergence::Memory { addr, left, right } => {
                write!(f, "mem[{addr:#x}]: {left:#04x} != {right:#04x}")
            }
        }
    }
}

/// Architectural register + PC state of one thread.
#[derive(Debug, Clone)]
pub struct ArchState {
    regs: [u64; NUM_ARCH_REGS as usize],
    pc: u64,
    halted: bool,
}

impl ArchState {
    /// Fresh state at the program's entry point with all registers zero.
    pub fn new(prog: &Program) -> ArchState {
        ArchState {
            regs: [0; NUM_ARCH_REGS as usize],
            pc: prog.entry,
            halted: false,
        }
    }

    /// Current PC (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True once a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Read an architectural register (zero registers read as 0).
    pub fn read_reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Write an architectural register (writes to zero registers are
    /// discarded).
    pub fn write_reg(&mut self, r: Reg, val: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = val;
        }
    }

    /// Overwrite the PC — for reconstructing a snapshot of an externally
    /// tracked architectural state (the timing model's retired rename map).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Overwrite the halt flag (snapshot reconstruction, like [`set_pc`]).
    ///
    /// [`set_pc`]: ArchState::set_pc
    pub fn set_halted(&mut self, halted: bool) {
        self.halted = halted;
    }

    /// Every difference between two architectural states: registers
    /// (zero registers always compare equal), PC, and halt flag. Empty
    /// means the states are architecturally identical.
    pub fn diff(&self, other: &ArchState) -> Vec<StateDivergence> {
        let mut out = Vec::new();
        for idx in 0..NUM_ARCH_REGS {
            let reg = Reg::from_index(idx);
            let (left, right) = (self.read_reg(reg), other.read_reg(reg));
            if left != right {
                out.push(StateDivergence::Register { reg, left, right });
            }
        }
        if self.pc != other.pc {
            out.push(StateDivergence::Pc {
                left: self.pc,
                right: other.pc,
            });
        }
        if self.halted != other.halted {
            out.push(StateDivergence::Halted {
                left: self.halted,
                right: other.halted,
            });
        }
        out
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// [`ExecError::Halted`] if the thread has halted, or
    /// [`ExecError::PcOutOfRange`] if the PC does not point at an
    /// instruction.
    pub fn step(&mut self, prog: &Program, mem: &mut dyn Memory) -> Result<Retired, ExecError> {
        if self.halted {
            return Err(ExecError::Halted);
        }
        let pc = self.pc;
        let inst = prog.fetch(pc).ok_or(ExecError::PcOutOfRange(pc))?;
        let retired = self.execute(inst, pc, mem);
        self.pc = retired.next_pc;
        Ok(retired)
    }

    /// Run up to `max_steps` instructions or until `halt`.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError::PcOutOfRange`]; never returns
    /// [`ExecError::Halted`] (a halt simply ends the run).
    pub fn run(
        &mut self,
        prog: &Program,
        mem: &mut dyn Memory,
        max_steps: u64,
    ) -> Result<RunSummary, ExecError> {
        let mut retired = 0;
        while retired < max_steps && !self.halted {
            self.step(prog, mem)?;
            retired += 1;
        }
        Ok(RunSummary {
            retired,
            halted: self.halted,
        })
    }

    /// The semantics of `inst` at `pc`; shared by `step` and (via re-export)
    /// the timing simulator's execute stage.
    pub fn execute(&mut self, inst: Inst, pc: u64, mem: &mut dyn Memory) -> Retired {
        use Opcode::*;
        let s1 = self.read_reg(inst.rs1);
        let s2 = if inst.uses_imm {
            inst.imm as i64 as u64
        } else {
            self.read_reg(inst.rs2)
        };
        let fall = pc + 1;
        let mut wrote = None;
        let mut mem_addr = None;
        let mut taken = None;
        let mut next_pc = fall;

        let mut write = |st: &mut Self, r: Reg, v: u64| {
            st.write_reg(r, v);
            if !r.is_zero() {
                wrote = Some((r, v));
            }
        };

        match inst.op {
            Add | Sub | Mul | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Seq | FAdd | FSub
            | FMul | FDiv | FCmpLt | FCmpEq | FCvtIf | FCvtFi => {
                write(self, inst.rd, eval_op(inst.op, s1, s2))
            }
            Ldq | Ldl | FLdq => {
                let addr = s1.wrapping_add(inst.imm as i64 as u64);
                let size = if inst.op == Ldl { 4 } else { 8 };
                let v = mem.read(addr, size);
                mem_addr = Some((addr, size));
                write(self, inst.rd, v);
            }
            Stq | Stl | FStq => {
                let addr = s1.wrapping_add(inst.imm as i64 as u64);
                let size = if inst.op == Stl { 4 } else { 8 };
                let data = self.read_reg(inst.rs2);
                mem.write(addr, size, data);
                mem_addr = Some((addr, size));
            }
            Beq | Bne | Blt | Bge | Ble | Bgt => {
                let t = branch_taken(inst.op, s1);
                taken = Some(t);
                if t {
                    next_pc = (fall as i64 + inst.imm as i64) as u64;
                }
            }
            Br => {
                taken = Some(true);
                next_pc = (fall as i64 + inst.imm as i64) as u64;
            }
            Jsr => {
                taken = Some(true);
                write(self, inst.rd, fall);
                next_pc = (fall as i64 + inst.imm as i64) as u64;
            }
            Jmp => {
                taken = Some(true);
                write(self, inst.rd, fall);
                next_pc = s1;
            }
            Ret => {
                taken = Some(true);
                next_pc = s1;
            }
            Mb | Nop => {}
            Halt => {
                self.halted = true;
                next_pc = pc; // a halted thread's PC stays put
            }
        }

        Retired {
            pc,
            inst,
            wrote,
            mem_addr,
            taken,
            next_pc,
        }
    }
}

/// Pure evaluation of an operate-class instruction: `rd = s1 <op> s2`.
///
/// Shared by the interpreter and the pipeline's execute stage so the two
/// models cannot diverge on ALU semantics.
///
/// # Panics
///
/// Panics for non-operate opcodes (memory, control, misc).
pub fn eval_op(op: Opcode, s1: u64, s2: u64) -> u64 {
    use Opcode::*;
    match op {
        Add => s1.wrapping_add(s2),
        Sub => s1.wrapping_sub(s2),
        Mul => s1.wrapping_mul(s2),
        And => s1 & s2,
        Or => s1 | s2,
        Xor => s1 ^ s2,
        Sll => s1.wrapping_shl((s2 & 63) as u32),
        Srl => s1.wrapping_shr((s2 & 63) as u32),
        Sra => ((s1 as i64).wrapping_shr((s2 & 63) as u32)) as u64,
        Slt => ((s1 as i64) < (s2 as i64)) as u64,
        Sltu => (s1 < s2) as u64,
        Seq => (s1 == s2) as u64,
        FAdd => fop(s1, s2, |a, b| a + b),
        FSub => fop(s1, s2, |a, b| a - b),
        FMul => fop(s1, s2, |a, b| a * b),
        FDiv => fop(s1, s2, |a, b| a / b),
        FCmpLt => (f64::from_bits(s1) < f64::from_bits(s2)) as u64,
        FCmpEq => (f64::from_bits(s1) == f64::from_bits(s2)) as u64,
        FCvtIf => (s1 as i64 as f64).to_bits(),
        FCvtFi => {
            let f = f64::from_bits(s1);
            if f.is_nan() {
                0
            } else {
                f as i64 as u64
            }
        }
        other => panic!("{other:?} is not an operate opcode"),
    }
}

/// Evaluate a conditional branch's direction for a given test value.
pub fn branch_taken(op: Opcode, test: u64) -> bool {
    let s = test as i64;
    match op {
        Opcode::Beq => test == 0,
        Opcode::Bne => test != 0,
        Opcode::Blt => s < 0,
        Opcode::Bge => s >= 0,
        Opcode::Ble => s <= 0,
        Opcode::Bgt => s > 0,
        _ => panic!("{op:?} is not a conditional branch"),
    }
}

/// Resolve the taken-path target of any control instruction given its
/// operand value. Shared by the interpreter and the pipeline's execute
/// stage.
pub fn control_target(inst: Inst, pc: u64, src_val: u64) -> u64 {
    match inst.class() {
        Class::CondBranch | Class::Branch => (pc as i64 + 1 + inst.imm as i64) as u64,
        Class::Jump => src_val,
        _ => panic!("{inst} is not a control instruction"),
    }
}

fn fop(a: u64, b: u64, f: impl Fn(f64, f64) -> f64) -> u64 {
    f(f64::from_bits(a), f64::from_bits(b)).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn run_prog(b: ProgramBuilder) -> (ArchState, FlatMemory) {
        let prog = b.build().unwrap();
        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        let summary = st.run(&prog, &mut mem, 1_000_000).unwrap();
        assert!(summary.halted, "program did not halt");
        (st, mem)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let mut b = ProgramBuilder::new("sum");
        b.addi(Reg::int(1), Reg::ZERO, 100);
        b.label("top");
        b.add(Reg::int(2), Reg::int(2), Reg::int(1));
        b.subi(Reg::int(1), Reg::int(1), 1);
        b.bne(Reg::int(1), "top");
        b.halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.read_reg(Reg::int(2)), 5050);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut b = ProgramBuilder::new("mem");
        b.data_words(0x2000, &[11, 22, 33]);
        b.addi(Reg::int(1), Reg::ZERO, 0x2000);
        b.ldq(Reg::int(2), Reg::int(1), 8); // 22
        b.ldq(Reg::int(3), Reg::int(1), 16); // 33
        b.add(Reg::int(4), Reg::int(2), Reg::int(3));
        b.stq(Reg::int(4), Reg::int(1), 24);
        b.ldq(Reg::int(5), Reg::int(1), 24);
        b.halt();
        let (st, mut mem) = run_prog(b);
        assert_eq!(st.read_reg(Reg::int(5)), 55);
        assert_eq!(mem.read(0x2018, 8), 55);
    }

    #[test]
    fn word_store_truncates() {
        let mut b = ProgramBuilder::new("stl");
        b.addi(Reg::int(1), Reg::ZERO, 0x3000);
        b.addi(Reg::int(2), Reg::ZERO, -1); // 0xffff_ffff_ffff_ffff
        b.push(Inst::store(Opcode::Stl, Reg::int(2), Reg::int(1), 0));
        b.push(Inst::load(Opcode::Ldl, Reg::int(3), Reg::int(1), 0));
        b.ldq(Reg::int(4), Reg::int(1), 0);
        b.halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.read_reg(Reg::int(3)), 0xffff_ffff);
        assert_eq!(st.read_reg(Reg::int(4)), 0xffff_ffff);
    }

    #[test]
    fn fp_pipeline_math() {
        let mut b = ProgramBuilder::new("fp");
        b.data_words(0x100, &[2.5f64.to_bits(), 4.0f64.to_bits()]);
        b.addi(Reg::int(1), Reg::ZERO, 0x100);
        b.fldq(Reg::fp(0), Reg::int(1), 0);
        b.fldq(Reg::fp(1), Reg::int(1), 8);
        b.fmul(Reg::fp(2), Reg::fp(0), Reg::fp(1)); // 10.0
        b.fdiv(Reg::fp(3), Reg::fp(2), Reg::fp(1)); // 2.5
        b.fsub(Reg::fp(4), Reg::fp(3), Reg::fp(0)); // 0.0
        b.fstq(Reg::fp(2), Reg::int(1), 16);
        b.halt();
        let (st, mut mem) = run_prog(b);
        assert_eq!(f64::from_bits(st.read_reg(Reg::fp(4))), 0.0);
        assert_eq!(f64::from_bits(mem.read(0x110, 8)), 10.0);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("call");
        b.jsr(Reg::int(26), "func");
        b.addi(Reg::int(2), Reg::int(1), 100); // executes after return
        b.halt();
        b.label("func");
        b.addi(Reg::int(1), Reg::ZERO, 5);
        b.ret(Reg::int(26));
        let (st, _) = run_prog(b);
        assert_eq!(st.read_reg(Reg::int(2)), 105);
    }

    #[test]
    fn branch_directions() {
        assert!(branch_taken(Opcode::Beq, 0));
        assert!(!branch_taken(Opcode::Beq, 1));
        assert!(branch_taken(Opcode::Bne, u64::MAX));
        assert!(branch_taken(Opcode::Blt, (-5i64) as u64));
        assert!(!branch_taken(Opcode::Blt, 5));
        assert!(branch_taken(Opcode::Bge, 0));
        assert!(branch_taken(Opcode::Ble, 0));
        assert!(!branch_taken(Opcode::Bgt, 0));
        assert!(branch_taken(Opcode::Bgt, 7));
    }

    #[test]
    fn halt_freezes_state() {
        let mut b = ProgramBuilder::new("h");
        b.halt();
        let prog = b.build().unwrap();
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        let r = st.step(&prog, &mut mem).unwrap();
        assert_eq!(r.next_pc, 0);
        assert!(st.is_halted());
        assert_eq!(st.step(&prog, &mut mem), Err(ExecError::Halted));
    }

    #[test]
    fn runaway_pc_is_detected() {
        let prog = Program::new("bad", vec![Inst::nop()]);
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        st.step(&prog, &mut mem).unwrap();
        assert_eq!(st.step(&prog, &mut mem), Err(ExecError::PcOutOfRange(1)));
    }

    #[test]
    fn zero_register_never_changes() {
        let mut b = ProgramBuilder::new("z");
        b.addi(Reg::ZERO, Reg::ZERO, 42);
        b.add(Reg::int(1), Reg::ZERO, Reg::ZERO);
        b.halt();
        let (st, _) = run_prog(b);
        assert_eq!(st.read_reg(Reg::ZERO), 0);
        assert_eq!(st.read_reg(Reg::int(1)), 0);
    }

    #[test]
    fn flat_memory_is_zero_initialized_and_sparse() {
        let mut m = FlatMemory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
        assert_eq!(m.pages_touched(), 0);
        m.write(0x1000, 8, 0x1122334455667788);
        assert_eq!(m.read(0x1000, 8), 0x1122334455667788);
        assert_eq!(m.read(0x1004, 4), 0x11223344);
        assert_eq!(m.pages_touched(), 1);
        // Cross-page access.
        m.write(0x1ffc, 8, u64::MAX);
        assert_eq!(m.read(0x1ffc, 8), u64::MAX);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn identical_states_have_no_divergences() {
        let prog = Program::new("p", vec![Inst::nop()]);
        let a = ArchState::new(&prog);
        let b = a.clone();
        assert!(a.diff(&b).is_empty());
        assert!(FlatMemory::new().diff(&FlatMemory::new()).is_empty());
    }

    #[test]
    fn state_diff_reports_registers_pc_and_halt() {
        let prog = Program::new("p", vec![Inst::nop()]);
        let mut a = ArchState::new(&prog);
        let mut b = ArchState::new(&prog);
        a.write_reg(Reg::int(5), 7);
        b.write_reg(Reg::fp(2), 9);
        b.set_pc(3);
        b.set_halted(true);
        // Zero-register writes are discarded, so they never diverge.
        a.write_reg(Reg::ZERO, 1);
        let d = a.diff(&b);
        assert_eq!(
            d,
            vec![
                StateDivergence::Register {
                    reg: Reg::int(5),
                    left: 7,
                    right: 0
                },
                StateDivergence::Register {
                    reg: Reg::fp(2),
                    left: 0,
                    right: 9
                },
                StateDivergence::Pc { left: 0, right: 3 },
                StateDivergence::Halted {
                    left: false,
                    right: true
                },
            ]
        );
        // diff is anti-symmetric in left/right.
        assert_eq!(b.diff(&a).len(), d.len());
    }

    #[test]
    fn memory_diff_finds_first_differing_byte_per_page() {
        let mut a = FlatMemory::new();
        let mut b = FlatMemory::new();
        a.write(0x1000, 8, 0x1122334455667788);
        b.write(0x1000, 8, 0x1122334455667789);
        a.write(0x5008, 4, 1); // page only a touches, nonzero
        let d = a.diff(&b);
        assert_eq!(
            d,
            vec![
                StateDivergence::Memory {
                    addr: 0x1000,
                    left: 0x88,
                    right: 0x89
                },
                StateDivergence::Memory {
                    addr: 0x5008,
                    left: 1,
                    right: 0
                },
            ]
        );
    }

    #[test]
    fn memory_diff_reports_zero_page_touch_asymmetry() {
        let mut a = FlatMemory::new();
        a.write(0x2000, 8, 0); // touched, but still all zeros
        assert_eq!(
            a.diff(&FlatMemory::new()),
            vec![StateDivergence::PageTouched {
                page: 2,
                left: true,
                right: false
            }]
        );
    }

    #[test]
    fn divergences_display_readably() {
        let d = StateDivergence::Register {
            reg: Reg::int(5),
            left: 7,
            right: 0,
        };
        assert_eq!(d.to_string(), "register r5: 0x7 != 0x0");
        let m = StateDivergence::Memory {
            addr: 0x1000,
            left: 0x88,
            right: 0x89,
        };
        assert_eq!(m.to_string(), "mem[0x1000]: 0x88 != 0x89");
    }

    #[test]
    fn retired_records_capture_effects() {
        let mut b = ProgramBuilder::new("r");
        b.addi(Reg::int(1), Reg::ZERO, 7);
        b.stq(Reg::int(1), Reg::ZERO, 0x40);
        b.beq(Reg::ZERO, "t");
        b.nop();
        b.label("t");
        b.halt();
        let prog = b.build().unwrap();
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        let r0 = st.step(&prog, &mut mem).unwrap();
        assert_eq!(r0.wrote, Some((Reg::int(1), 7)));
        let r1 = st.step(&prog, &mut mem).unwrap();
        assert_eq!(r1.mem_addr, Some((0x40, 8)));
        let r2 = st.step(&prog, &mut mem).unwrap();
        assert_eq!(r2.taken, Some(true));
        assert_eq!(r2.next_pc, 4);
    }
}

#[cfg(test)]
mod control_tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    #[test]
    fn computed_jump_table() {
        // jump to base + selector via jmp.
        let mut b = ProgramBuilder::new("jumptable");
        // r1 = selector (1), r2 = target pc
        b.addi(Reg::int(1), Reg::ZERO, 1);
        b.addi(Reg::int(2), Reg::ZERO, 5); // case1 label index (computed below)
        b.add(Reg::int(2), Reg::int(2), Reg::int(1));
        b.push(crate::inst::Inst::jmp(Reg::int(3), Reg::int(2)));
        b.halt(); // skipped
        b.label("case0"); // pc 5
        b.addi(Reg::int(4), Reg::ZERO, 100);
        b.label("case1"); // pc 6
        b.addi(Reg::int(4), Reg::int(4), 1);
        b.halt();
        let prog = b.build().unwrap();
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        st.run(&prog, &mut mem, 100).unwrap();
        // Selector 1 skips case0's init: r4 == 1.
        assert_eq!(st.read_reg(Reg::int(4)), 1);
        assert_eq!(st.read_reg(Reg::int(3)), 4, "jmp links pc+1");
    }

    #[test]
    fn nested_calls_return_correctly() {
        // main -> f -> g, returns unwind in order.
        let mut b = ProgramBuilder::new("nest");
        b.jsr(Reg::int(26), "f");
        b.addi(Reg::int(1), Reg::int(1), 100); // after f returns
        b.halt();
        b.label("f");
        b.jsr(Reg::int(27), "g");
        b.addi(Reg::int(1), Reg::int(1), 10); // after g returns
        b.ret(Reg::int(26));
        b.label("g");
        b.addi(Reg::int(1), Reg::int(1), 1);
        b.ret(Reg::int(27));
        let prog = b.build().unwrap();
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        let summary = st.run(&prog, &mut mem, 100).unwrap();
        assert!(summary.halted);
        assert_eq!(st.read_reg(Reg::int(1)), 111);
    }
}
