//! Program container and a label-aware builder API.
//!
//! A [`Program`] couples an instruction image with its entry point and the
//! initial contents of data memory; it is what the functional interpreter
//! executes and what a hardware thread of the timing simulator fetches from.
//! [`ProgramBuilder`] is the programmatic counterpart of the text assembler
//! and is what the workload generators use to emit kernels.

use crate::encode::INST_BYTES;
use crate::inst::{Class, Inst, Opcode};
use crate::reg::Reg;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A complete executable image.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Human-readable name (workload kernels set this to the benchmark name).
    pub name: String,
    /// The instruction stream; the PC indexes into this vector.
    pub insts: Vec<Inst>,
    /// Entry PC (instruction index).
    pub entry: u64,
    /// Initial data-memory image: `(byte address, bytes)` chunks.
    pub init_data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// A program from a raw instruction list, entering at index 0.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        Program {
            name: name.into(),
            insts,
            entry: 0,
            init_data: Vec::new(),
        }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end of the image.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Byte address of the instruction at `pc` (for instruction-cache
    /// indexing in the timing model).
    pub fn inst_addr(pc: u64) -> u64 {
        pc * INST_BYTES
    }
}

/// Errors produced when a [`ProgramBuilder`] is finalized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A resolved displacement does not fit the 24-bit immediate field.
    DisplacementOverflow { label: String, disp: i64 },
    /// The builder holds no instructions — an empty image has no valid PC.
    Empty,
    /// The image ends in a conditional branch, whose not-taken path falls
    /// off the image. (Trailing `halt`, `ret`, or backward `br` are legal:
    /// they never fall through.)
    TrailingBranch(Opcode),
}

/// Former name of [`ProgramError`], kept for existing callers.
pub type BuildError = ProgramError;

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            ProgramError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            ProgramError::DisplacementOverflow { label, disp } => {
                write!(
                    f,
                    "branch to `{label}` needs displacement {disp}, out of range"
                )
            }
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::TrailingBranch(op) => write!(
                f,
                "program ends in conditional branch `{}` whose fall-through runs off the image",
                op.mnemonic()
            ),
        }
    }
}

impl Error for ProgramError {}

/// Incremental, label-aware program constructor.
///
/// Branch displacements are recorded symbolically and resolved when
/// [`ProgramBuilder::build`] runs, so forward references are fine:
///
/// ```
/// use looseloops_isa::{ProgramBuilder, Reg, Opcode};
///
/// let mut b = ProgramBuilder::new("demo");
/// b.addi(Reg::int(1), Reg::ZERO, 3);
/// b.label("top");
/// b.subi(Reg::int(1), Reg::int(1), 1);
/// b.bne(Reg::int(1), "top");
/// b.halt();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 4);
/// assert_eq!(prog.insts[2].imm, -2); // back to `top`, relative to pc+1
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, u64>,
    // (inst index, label) pairs whose displacement needs patching.
    fixups: Vec<(usize, String)>,
    init_data: Vec<(u64, Vec<u8>)>,
    duplicate: Option<String>,
    entry_label: Option<String>,
}

impl ProgramBuilder {
    /// Create an empty builder for a program called `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Current instruction index (where the next emitted instruction lands).
    pub fn here(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Define `label` at the current position.
    pub fn label(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if self.labels.insert(label.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label);
        }
        self
    }

    /// Append an arbitrary pre-built instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Append a control-flow instruction whose displacement targets `label`.
    pub fn push_to_label(&mut self, inst: Inst, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.insts.len(), label.into()));
        self.insts.push(inst);
        self
    }

    /// Make the program start at `label` instead of instruction 0.
    pub fn entry(&mut self, label: impl Into<String>) -> &mut Self {
        self.entry_label = Some(label.into());
        self
    }

    /// Preload `bytes` at data address `addr`.
    pub fn data(&mut self, addr: u64, bytes: Vec<u8>) -> &mut Self {
        self.init_data.push((addr, bytes));
        self
    }

    /// Preload 64-bit words starting at `addr`.
    pub fn data_words(&mut self, addr: u64, words: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data(addr, bytes)
    }

    /// Resolve labels and produce the finished [`Program`].
    ///
    /// # Errors
    ///
    /// Fails if the program is empty, a label is missing or duplicated, a
    /// displacement overflows the immediate field, or the last instruction
    /// is a conditional branch (its fall-through would run off the image).
    pub fn build(mut self) -> Result<Program, ProgramError> {
        let Some(last) = self.insts.last().copied() else {
            return Err(ProgramError::Empty);
        };
        if last.class() == Class::CondBranch {
            return Err(ProgramError::TrailingBranch(last.op));
        }
        if let Some(l) = self.duplicate.take() {
            return Err(ProgramError::DuplicateLabel(l));
        }
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .ok_or_else(|| ProgramError::UndefinedLabel(label.clone()))?;
            let disp = target as i64 - (idx as i64 + 1);
            if disp < Inst::IMM_MIN as i64 || disp > Inst::IMM_MAX as i64 {
                return Err(ProgramError::DisplacementOverflow { label, disp });
            }
            self.insts[idx].imm = disp as i32;
        }
        let entry = match self.entry_label.take() {
            None => 0,
            Some(l) => *self.labels.get(&l).ok_or(ProgramError::UndefinedLabel(l))?,
        };
        Ok(Program {
            name: self.name,
            insts: self.insts,
            entry,
            init_data: self.init_data,
        })
    }
}

/// Convenience emitters for every common instruction shape. Each returns
/// `&mut Self` for chaining.
impl ProgramBuilder {
    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Add, rd, rs1, rs2))
    }
    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Add, rd, rs1, imm))
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Sub, rd, rs1, rs2))
    }
    /// `rd = rs1 - imm`
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Sub, rd, rs1, imm))
    }
    /// `rd = rs1 * rs2` (long-latency integer multiply)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Mul, rd, rs1, rs2))
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::And, rd, rs1, rs2))
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::And, rd, rs1, imm))
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Or, rd, rs1, rs2))
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Xor, rd, rs1, rs2))
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Xor, rd, rs1, imm))
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Sll, rd, rs1, imm))
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Srl, rd, rs1, imm))
    }
    /// `rd = (rs1 < rs2)` signed
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::Slt, rd, rs1, rs2))
    }
    /// `rd = (rs1 < imm)` signed
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::op_ri(Opcode::Slt, rd, rs1, imm))
    }
    /// `rd = mem64[rs1 + disp]`
    pub fn ldq(&mut self, rd: Reg, base: Reg, disp: i32) -> &mut Self {
        self.push(Inst::load(Opcode::Ldq, rd, base, disp))
    }
    /// `mem64[base + disp] = data`
    pub fn stq(&mut self, data: Reg, base: Reg, disp: i32) -> &mut Self {
        self.push(Inst::store(Opcode::Stq, data, base, disp))
    }
    /// `fd = mem64[rs1 + disp]` (fp bank)
    pub fn fldq(&mut self, fd: Reg, base: Reg, disp: i32) -> &mut Self {
        self.push(Inst::load(Opcode::FLdq, fd, base, disp))
    }
    /// `mem64[base + disp] = fdata` (fp bank)
    pub fn fstq(&mut self, fdata: Reg, base: Reg, disp: i32) -> &mut Self {
        self.push(Inst::store(Opcode::FStq, fdata, base, disp))
    }
    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::FAdd, fd, fs1, fs2))
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::FSub, fd, fs1, fs2))
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::FMul, fd, fs1, fs2))
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: Reg, fs1: Reg, fs2: Reg) -> &mut Self {
        self.push(Inst::op_rr(Opcode::FDiv, fd, fs1, fs2))
    }
    /// Branch to `label` if `rs1 == 0`.
    pub fn beq(&mut self, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::branch(Opcode::Beq, rs1, 0), label)
    }
    /// Branch to `label` if `rs1 != 0`.
    pub fn bne(&mut self, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::branch(Opcode::Bne, rs1, 0), label)
    }
    /// Branch to `label` if `rs1 < 0` (signed).
    pub fn blt(&mut self, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::branch(Opcode::Blt, rs1, 0), label)
    }
    /// Branch to `label` if `rs1 >= 0` (signed).
    pub fn bge(&mut self, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::branch(Opcode::Bge, rs1, 0), label)
    }
    /// Branch to `label` if `rs1 > 0` (signed).
    pub fn bgt(&mut self, rs1: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::branch(Opcode::Bgt, rs1, 0), label)
    }
    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::br(0), label)
    }
    /// Call `label`, linking the return address into `rd`.
    pub fn jsr(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.push_to_label(Inst::jsr(rd, 0), label)
    }
    /// Return through `target`.
    pub fn ret(&mut self, target: Reg) -> &mut Self {
        self.push(Inst::ret(target))
    }
    /// Memory barrier.
    pub fn mb(&mut self) -> &mut Self {
        self.push(Inst::mb())
    }
    /// Halt the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::halt())
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::nop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new("t");
        b.label("start");
        b.addi(Reg::int(1), Reg::ZERO, 1);
        b.beq(Reg::int(1), "end"); // forward
        b.bne(Reg::int(1), "start"); // backward
        b.label("end");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.insts[1].imm, 1); // idx 1 -> target 3: 3 - 2 = 1
        assert_eq!(p.insts[2].imm, -3); // idx 2 -> target 0: 0 - 3 = -3
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.br("nowhere");
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.nop();
        b.label("x");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(
            ProgramBuilder::new("t").build().unwrap_err(),
            ProgramError::Empty
        );
        // Labels and data alone don't make a program.
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.data_words(0x1000, &[1]);
        assert_eq!(b.build().unwrap_err(), ProgramError::Empty);
    }

    #[test]
    fn trailing_conditional_branch_is_an_error() {
        for op in [Opcode::Beq, Opcode::Bne, Opcode::Bgt] {
            let mut b = ProgramBuilder::new("t");
            b.label("top");
            b.nop();
            b.push_to_label(Inst::branch(op, Reg::int(1), 0), "top");
            assert_eq!(b.build().unwrap_err(), ProgramError::TrailingBranch(op));
        }
    }

    #[test]
    fn trailing_unconditional_control_is_legal() {
        // `ret`, backward `br`, and `halt` cannot fall through, so a
        // program may end with them.
        let mut b = ProgramBuilder::new("ret");
        b.nop();
        b.ret(Reg::int(26));
        assert!(b.build().is_ok());
        let mut b = ProgramBuilder::new("br");
        b.label("spin");
        b.br("spin");
        assert!(b.build().is_ok());
    }

    #[test]
    fn data_words_serialize_little_endian() {
        let mut b = ProgramBuilder::new("t");
        b.data_words(0x1000, &[1, 0x0102030405060708]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.init_data.len(), 1);
        let (addr, bytes) = &p.init_data[0];
        assert_eq!(*addr, 0x1000);
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[8], 8);
        assert_eq!(bytes[15], 1);
    }

    #[test]
    fn entry_label_sets_start() {
        let mut b = ProgramBuilder::new("t");
        b.entry("main");
        b.nop();
        b.label("main");
        b.halt();
        assert_eq!(b.build().unwrap().entry, 1);
    }

    #[test]
    fn missing_entry_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.entry("nowhere");
        b.halt();
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn fetch_is_bounded() {
        let p = Program::new("t", vec![Inst::nop(), Inst::halt()]);
        assert_eq!(p.fetch(0), Some(Inst::nop()));
        assert_eq!(p.fetch(1), Some(Inst::halt()));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn inst_addresses_are_8_byte_strided() {
        assert_eq!(Program::inst_addr(0), 0);
        assert_eq!(Program::inst_addr(3), 24);
    }
}
