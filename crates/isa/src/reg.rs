//! Architectural register model.
//!
//! The machine has 64 architectural registers arranged in two banks:
//! integer registers `r0`–`r31` (indices 0–31) and floating-point registers
//! `f0`–`f31` (indices 32–63). Following the Alpha convention, `r31` and
//! `f31` are hard-wired zero registers: reads return 0 and writes are
//! discarded. The rename machinery never allocates physical registers for
//! them.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers across both banks.
pub const NUM_ARCH_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register: a bank-tagged index into the 64-entry
/// architectural register space.
///
/// `Reg` is a plain index newtype; whether it refers to the integer or the
/// floating-point bank is encoded in the index range (0–31 integer, 32–63
/// floating point).
///
/// ```
/// use looseloops_isa::Reg;
/// let r = Reg::int(5);
/// assert!(r.is_int() && !r.is_zero());
/// assert!(Reg::fp(31).is_zero());
/// assert_eq!(Reg::int(5).to_string(), "r5");
/// assert_eq!(Reg::fp(2).to_string(), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired integer zero register, `r31`.
    pub const ZERO: Reg = Reg(31);
    /// The hard-wired floating-point zero register, `f31`.
    pub const FZERO: Reg = Reg(63);

    /// Integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < NUM_INT_REGS, "integer register index {n} out of range");
        Reg(n)
    }

    /// Floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < NUM_FP_REGS, "fp register index {n} out of range");
        Reg(NUM_INT_REGS + n)
    }

    /// Construct from a raw unified index (0–63).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn from_index(idx: u8) -> Reg {
        assert!(idx < NUM_ARCH_REGS, "register index {idx} out of range");
        Reg(idx)
    }

    /// The unified 0–63 index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for registers in the integer bank (`r0`–`r31`).
    pub fn is_int(self) -> bool {
        self.0 < NUM_INT_REGS
    }

    /// True for registers in the floating-point bank (`f0`–`f31`).
    pub fn is_fp(self) -> bool {
        !self.is_int()
    }

    /// True for the hard-wired zero registers `r31` and `f31`.
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO || self == Reg::FZERO
    }

    /// Bank-local number (0–31) of this register.
    pub fn number(self) -> u8 {
        self.0 % NUM_INT_REGS
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.number())
        } else {
            write!(f, "f{}", self.number())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_partition_the_index_space() {
        for n in 0..32 {
            assert!(Reg::int(n).is_int());
            assert!(!Reg::int(n).is_fp());
            assert!(Reg::fp(n).is_fp());
            assert_eq!(Reg::int(n).number(), n);
            assert_eq!(Reg::fp(n).number(), n);
        }
    }

    #[test]
    fn zero_registers() {
        assert!(Reg::ZERO.is_zero());
        assert!(Reg::FZERO.is_zero());
        assert!(!Reg::int(0).is_zero());
        assert!(!Reg::fp(30).is_zero());
        assert_eq!(Reg::int(31), Reg::ZERO);
        assert_eq!(Reg::fp(31), Reg::FZERO);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(0).to_string(), "r0");
        assert_eq!(Reg::fp(17).to_string(), "f17");
        assert_eq!(Reg::ZERO.to_string(), "r31");
    }

    #[test]
    fn index_round_trip() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(Reg::from_index(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let _ = Reg::from_index(64);
    }
}
