//! Functional fast-forward: the predecoded interpreter as a warm-up engine.
//!
//! [`ArchState::step`] already executes decoded [`Program`] instructions
//! directly — no timing wheel, no issue queue, no rename. This module wraps
//! that loop so it can *warm* the timing structures while it skips ahead:
//! each retired instruction is reported to a [`WarmHooks`] implementation,
//! which the simulator core backs with the real cache hierarchy, branch
//! predictor, and BTB (`looseloops_mem::MemHierarchy::warm_access`,
//! `DirectionPredictor::update`, `Btb::update`). The hooks carry no timing:
//! fast-forward advances architectural state and replacement/predictor
//! state only, which is exactly the state a detailed run needs warmed.

use crate::inst::Class;
use crate::interp::{ArchState, ExecError, Memory};
use crate::program::Program;

/// Observer for the architectural event stream during fast-forward.
///
/// Every method defaults to a no-op, so a hook implementation states only
/// what it warms. Addresses are byte addresses; `warm_branch`/`warm_jump`
/// PCs are instruction indices (the BTB's key space in the pipeline).
pub trait WarmHooks {
    /// The fetch stream entered the 64-byte line at `line_addr`.
    ///
    /// Reported once per line *entry*, not once per instruction: the
    /// pipeline fetches whole aligned lines, so consecutive instructions
    /// on one line are a single cache touch there too. Re-entering a line
    /// (a short backward branch) reports again.
    fn warm_fetch(&mut self, _line_addr: u64) {}

    /// A load (`is_write == false`) or store touched `addr`.
    fn warm_data(&mut self, _addr: u64, _is_write: bool) {}

    /// A conditional branch at `pc` resolved `taken`.
    fn warm_branch(&mut self, _pc: u64, _taken: bool) {}

    /// An indirect jump at `pc` redirected to `target`.
    fn warm_jump(&mut self, _pc: u64, _target: u64) {}
}

/// Pure fast-forward: skip ahead without warming anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWarm;

impl WarmHooks for NoWarm {}

/// Sentinel for `last_fetch_line` meaning "no line fetched yet" — the
/// first instruction always reports a fetch. (A real line address cannot
/// reach this value: line addresses are instruction indices × 8, masked.)
pub const NO_FETCH_LINE: u64 = u64::MAX;

/// Run up to `max_steps` instructions functionally, reporting each retired
/// instruction to `hooks`. Returns the number of instructions executed
/// (fewer than `max_steps` only if the program halts). Errors propagate
/// from [`ArchState::step`]; the architectural state is left exactly where
/// the last successful step put it, so a detailed machine can resume.
///
/// `last_fetch_line` carries the fetch-line memo across calls (seed with
/// [`NO_FETCH_LINE`]): [`WarmHooks::warm_fetch`] fires only when the line
/// changes, which both matches the pipeline's line-granular fetch and is
/// the dominant cost saving of the functional interpreter. Because the
/// memo is part of the caller's state rather than reset per call, the
/// touch sequence is a pure function of the instruction stream — split
/// runs warm byte-identically to whole runs.
pub fn fast_forward(
    st: &mut ArchState,
    prog: &Program,
    mem: &mut dyn Memory,
    max_steps: u64,
    hooks: &mut dyn WarmHooks,
    last_fetch_line: &mut u64,
) -> Result<u64, ExecError> {
    let mut steps = 0u64;
    while steps < max_steps && !st.is_halted() {
        let r = st.step(prog, mem)?;
        steps += 1;
        let line = Program::inst_addr(r.pc) & !63;
        if line != *last_fetch_line {
            *last_fetch_line = line;
            hooks.warm_fetch(line);
        }
        match r.inst.class() {
            Class::Load => {
                if let Some((addr, _)) = r.mem_addr {
                    hooks.warm_data(addr, false);
                }
            }
            Class::Store => {
                if let Some((addr, _)) = r.mem_addr {
                    hooks.warm_data(addr, true);
                }
            }
            Class::CondBranch => {
                hooks.warm_branch(r.pc, r.taken == Some(true));
            }
            // The pipeline installs BTB targets only for register-indirect
            // jumps (direct branches redirect at decode), so only those
            // warm the BTB here.
            Class::Jump => {
                hooks.warm_jump(r.pc, r.next_pc);
            }
            _ => {}
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::FlatMemory;

    // Loops `r4` times (set r4 before running); 2 setup instructions, a
    // 6-instruction body, then halt.
    fn looping_program() -> Program {
        crate::asm::assemble(
            r"
            .entry start
            start:
                addi r1, r31, 0
                addi r2, r31, 4096
            loop:
                ldq  r3, 0(r2)
                addi r3, r3, 1
                stq  r3, 0(r2)
                addi r1, r1, 1
                sub  r5, r1, r4
                bne  r5, loop
                halt
            ",
        )
        .expect("valid program")
    }

    #[derive(Default)]
    struct Counting {
        fetches: u64,
        loads: u64,
        stores: u64,
        branches: u64,
        taken: u64,
    }

    impl WarmHooks for Counting {
        fn warm_fetch(&mut self, _line: u64) {
            self.fetches += 1;
        }
        fn warm_data(&mut self, _addr: u64, is_write: bool) {
            if is_write {
                self.stores += 1;
            } else {
                self.loads += 1;
            }
        }
        fn warm_branch(&mut self, _pc: u64, taken: bool) {
            self.branches += 1;
            self.taken += taken as u64;
        }
    }

    #[test]
    fn fast_forward_matches_plain_run() {
        let prog = looping_program();
        let mut ff_st = ArchState::new(&prog);
        let mut ff_mem = FlatMemory::with_program(&prog);
        ff_st.write_reg(crate::reg::Reg::int(4), 10);
        let mut line = NO_FETCH_LINE;
        let steps = fast_forward(
            &mut ff_st,
            &prog,
            &mut ff_mem,
            10_000,
            &mut NoWarm,
            &mut line,
        )
        .expect("runs");

        let mut st = ArchState::new(&prog);
        let mut mem = FlatMemory::with_program(&prog);
        st.write_reg(crate::reg::Reg::int(4), 10);
        let summary = st.run(&prog, &mut mem, 10_000).expect("runs");

        assert_eq!(steps, summary.retired);
        assert!(ff_st.diff(&st).is_empty(), "identical architectural state");
        assert!(ff_mem.diff(&mem).is_empty(), "identical memory");
    }

    #[test]
    fn hooks_see_the_event_stream() {
        let prog = looping_program();
        let mut st = ArchState::new(&prog);
        let mut mem = FlatMemory::with_program(&prog);
        st.write_reg(crate::reg::Reg::int(4), 8);
        let mut hooks = Counting::default();
        let mut line = NO_FETCH_LINE;
        let steps =
            fast_forward(&mut st, &prog, &mut mem, 10_000, &mut hooks, &mut line).expect("runs");
        assert!(st.is_halted());
        // 8 iterations of the 6-instruction body + 2 setup + halt.
        assert_eq!(steps, 8 * 6 + 3);
        // Fetch warms are line entries, not instructions: the whole loop
        // (insts 0..=7) lives on line 0, only `halt` (inst 8) crosses.
        assert_eq!(hooks.fetches, 2);
        assert_eq!(hooks.loads, 8);
        assert_eq!(hooks.stores, 8);
        assert_eq!(hooks.branches, 8);
        assert_eq!(hooks.taken, 7, "loop back-edge taken 7 of 8 times");
    }

    #[test]
    fn step_budget_is_respected_and_resumable() {
        let prog = looping_program();
        let mut st = ArchState::new(&prog);
        let mut mem = FlatMemory::with_program(&prog);
        st.write_reg(crate::reg::Reg::int(4), 1000);
        let mut line = NO_FETCH_LINE;
        let a = fast_forward(&mut st, &prog, &mut mem, 100, &mut NoWarm, &mut line).expect("runs");
        assert_eq!(a, 100);
        assert!(!st.is_halted());
        let b =
            fast_forward(&mut st, &prog, &mut mem, u64::MAX, &mut NoWarm, &mut line).expect("runs");

        let mut whole = ArchState::new(&prog);
        let mut whole_mem = FlatMemory::with_program(&prog);
        whole.write_reg(crate::reg::Reg::int(4), 1000);
        let summary = whole.run(&prog, &mut whole_mem, u64::MAX).expect("runs");
        assert_eq!(a + b, summary.retired, "split run retires the same count");
        assert!(st.diff(&whole).is_empty());
    }
}
