//! Per-program predecode cache.
//!
//! The timing pipeline used to re-interrogate [`Inst`] for every *dynamic*
//! instance: `class()`, `srcs()`, and `dest()` are all opcode matches, and
//! the fetch/rename/execute stages each ran several of them per
//! instruction. All of that information is static per PC, so we decode it
//! **once per program** into a dense [`StaticInstInfo`] table — the
//! software analogue of a pre-decoded I-cache — and the hot stages index a
//! flat array instead.
//!
//! The table is deliberately a plain `Vec<StaticInstInfo>` indexed by PC
//! (the ISA has a flat instruction-index address space), built eagerly by
//! [`Predecode::of`]. A process-wide build counter ([`build_count`]) lets
//! the zero-allocation suite assert the table is built exactly once per
//! program and never on the per-cycle path.

use crate::inst::{Class, Inst, Opcode};
use crate::program::Program;
use crate::reg::Reg;
use std::sync::atomic::{AtomicU64, Ordering};

/// Control-flow kind, pre-resolved from the opcode so fetch-stage
/// prediction dispatches on a flat enum instead of `class()` + `op`
/// matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Not a control-flow instruction.
    None,
    /// Conditional PC-relative branch.
    Cond,
    /// Unconditional PC-relative branch.
    Br,
    /// PC-relative call (pushes a return address).
    Jsr,
    /// Indirect jump through a register.
    Jmp,
    /// Return: indirect jump with a return-stack pop hint.
    Ret,
}

/// Which clusters an instruction may be steered to, pre-resolved from the
/// class (the machine's eligibility rule is purely class-driven).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAffinity {
    /// Any cluster (integer/control work).
    Any,
    /// Floating-point clusters only.
    Fp,
    /// Memory clusters only.
    Mem,
}

/// Everything the pipeline needs to know about one static instruction,
/// decoded once at program load.
///
/// The execution *latency class* is [`Class`] itself: the machine assigns
/// latencies per class, so carrying the class is carrying the latency key.
#[derive(Debug, Clone, Copy)]
pub struct StaticInstInfo {
    /// The decoded instruction (still needed for immediates, the tracer's
    /// disassembly, and the functional execute step).
    pub inst: Inst,
    /// Instruction class — also the execution-latency key.
    pub class: Class,
    /// Source architectural registers actually read (zero registers
    /// stripped), exactly [`Inst::srcs`].
    pub srcs: [Option<Reg>; 2],
    /// Destination architectural register, exactly [`Inst::dest`].
    pub dest: Option<Reg>,
    /// Pre-resolved control-flow kind.
    pub branch_kind: BranchKind,
    /// Pre-resolved cluster-eligibility hint.
    pub affinity: ClusterAffinity,
    /// Memory access size in bytes (0 for non-memory instructions).
    pub mem_size: u8,
    /// `class.is_control()`, cached.
    pub is_control: bool,
    /// `class.is_mem()`, cached.
    pub is_mem: bool,
}

impl StaticInstInfo {
    /// Predecode a single instruction.
    pub fn of(inst: Inst) -> StaticInstInfo {
        let class = inst.class();
        let branch_kind = match inst.op {
            _ if class == Class::CondBranch => BranchKind::Cond,
            Opcode::Br => BranchKind::Br,
            Opcode::Jsr => BranchKind::Jsr,
            Opcode::Jmp => BranchKind::Jmp,
            Opcode::Ret => BranchKind::Ret,
            _ => BranchKind::None,
        };
        let affinity = match class {
            Class::FpAdd | Class::FpMul | Class::FpDiv => ClusterAffinity::Fp,
            Class::Load | Class::Store => ClusterAffinity::Mem,
            _ => ClusterAffinity::Any,
        };
        let mem_size = match inst.op {
            Opcode::Ldl | Opcode::Stl => 4,
            _ if class.is_mem() => 8,
            _ => 0,
        };
        StaticInstInfo {
            inst,
            class,
            srcs: inst.srcs(),
            dest: inst.dest(),
            branch_kind,
            affinity,
            mem_size,
            is_control: class.is_control(),
            is_mem: class.is_mem(),
        }
    }
}

/// Process-wide count of predecode table builds (see [`build_count`]).
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// How many [`Predecode`] tables have been built in this process. The
/// zero-allocation suite uses the delta across a simulation to prove the
/// table is built once per program at machine construction and never on
/// the steady-state path.
pub fn build_count() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// Dense per-PC predecode table for one [`Program`].
#[derive(Debug, Clone)]
pub struct Predecode {
    info: Vec<StaticInstInfo>,
}

impl Predecode {
    /// Predecode every instruction of `program`. One heap allocation,
    /// once per program.
    pub fn of(program: &Program) -> Predecode {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        Predecode {
            info: program
                .insts
                .iter()
                .map(|&i| StaticInstInfo::of(i))
                .collect(),
        }
    }

    /// The predecoded record at `pc`, or `None` past the end of the
    /// program (mirrors [`Program::fetch`]).
    #[inline(always)]
    pub fn info(&self, pc: u64) -> Option<&StaticInstInfo> {
        self.info.get(pc as usize)
    }

    /// Number of predecoded instructions.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// Every predecoded field must agree with the `Inst` methods it
    /// caches, across every opcode the assembler can produce.
    #[test]
    fn predecode_agrees_with_inst_methods() {
        let prog = assemble(
            "
                addi r1, r31, 10
                mul  r2, r1, r1
                fadd f1, f2, f3
                fmul f4, f1, f1
                fdiv f5, f4, f1
                ldq  r3, 8(r1)
                ldl  r4, 4(r1)
                stq  r3, 16(r2)
                stl  r4, 20(r2)
                fldq f6, 0(r3)
                fstq f6, 8(r3)
            tgt:
                beq  r4, tgt
                br   tgt
                jsr  r5, tgt
                jmp  r6, r1
                ret  r1
                mb
                nop
                halt
            ",
        )
        .expect("valid assembly");
        let table = Predecode::of(&prog);
        assert_eq!(table.len(), prog.len());
        for pc in 0..prog.len() as u64 {
            let inst = prog.fetch(pc).unwrap();
            let info = table.info(pc).unwrap();
            assert_eq!(info.inst, inst);
            assert_eq!(info.class, inst.class());
            assert_eq!(info.srcs, inst.srcs());
            assert_eq!(info.dest, inst.dest());
            assert_eq!(info.is_control, inst.class().is_control());
            assert_eq!(info.is_mem, inst.class().is_mem());
            let want_kind = match inst.op {
                Opcode::Br => BranchKind::Br,
                Opcode::Jsr => BranchKind::Jsr,
                Opcode::Jmp => BranchKind::Jmp,
                Opcode::Ret => BranchKind::Ret,
                _ if inst.class() == Class::CondBranch => BranchKind::Cond,
                _ => BranchKind::None,
            };
            assert_eq!(info.branch_kind, want_kind);
            if inst.class().is_mem() {
                let want = if matches!(inst.op, Opcode::Ldl | Opcode::Stl) {
                    4
                } else {
                    8
                };
                assert_eq!(info.mem_size, want);
            } else {
                assert_eq!(info.mem_size, 0);
            }
        }
        assert!(table.info(prog.len() as u64).is_none());
    }

    #[test]
    fn build_count_advances_per_table() {
        let prog = assemble("nop\nhalt").expect("valid assembly");
        let before = build_count();
        let _a = Predecode::of(&prog);
        let _b = Predecode::of(&prog);
        assert_eq!(build_count(), before + 2);
    }
}
