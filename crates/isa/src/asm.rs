//! A small text assembler for the mini ISA.
//!
//! Syntax summary (one instruction per line, `;` or `#` start comments):
//!
//! ```text
//!     .data 0x1000, 1, 2, 3      ; preload 64-bit words at an address
//! entry:
//!     addi r1, r31, 64           ; immediate operate forms end in `i`
//!     ldq  r2, 8(r1)             ; loads:  rd, disp(base)
//!     stq  r2, 0(r1)             ; stores: data, disp(base)
//!     fadd f1, f2, f3
//!     bne  r2, entry             ; branches take a label or a displacement
//!     jsr  r26, entry
//!     ret  r26
//!     mb
//!     halt
//! ```

use crate::inst::{Inst, Opcode};
use crate::program::{Program, ProgramBuilder, ProgramError};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for link-time errors such as missing labels).
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "link error: {}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl Error for AsmError {}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// Assemble `source` into a [`Program`] named "asm".
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax problems, or with
/// line 0 for unresolved/duplicate labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_named("asm", source)
}

/// Assemble `source` into a [`Program`] with the given name.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_named(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new(name);
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Leading labels (possibly several): `name:`
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty() || !is_ident(head) {
                break;
            }
            b.label(head);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        parse_inst(&mut b, rest, lineno)?;
    }
    b.build().map_err(|e| match e {
        ProgramError::UndefinedLabel(l) => err(0, format!("undefined label `{l}`")),
        ProgramError::DuplicateLabel(l) => err(0, format!("duplicate label `{l}`")),
        ProgramError::DisplacementOverflow { label, disp } => err(
            0,
            format!("branch to `{label}` out of range (displacement {disp})"),
        ),
        ProgramError::Empty => err(0, "no instructions in source".to_string()),
        ProgramError::TrailingBranch(op) => err(
            0,
            format!(
                "program ends in conditional branch `{}` (fall-through runs off the image)",
                op.mnemonic()
            ),
        ),
    })
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_inst(b: &mut ProgramBuilder, text: &str, line: usize) -> Result<(), AsmError> {
    let (mnemonic, args) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let args: Vec<&str> = if args.is_empty() {
        vec![]
    } else {
        args.split(',').map(str::trim).collect()
    };

    if mnemonic == ".entry" {
        let [label] = one_arg(&args, line)?;
        b.entry(label.to_string());
        return Ok(());
    }

    if mnemonic == ".data" {
        if args.len() < 2 {
            return Err(err(line, ".data needs an address and at least one word"));
        }
        let addr = parse_num(args[0], line)? as u64;
        let words: Result<Vec<u64>, _> = args[1..]
            .iter()
            .map(|a| parse_num(a, line).map(|v| v as u64))
            .collect();
        b.data_words(addr, &words?);
        return Ok(());
    }

    // Operate instructions: register form and `i`-suffixed immediate form.
    let operate = |m: &str| -> Option<(Opcode, bool)> {
        let table: &[(&str, Opcode)] = &[
            ("add", Opcode::Add),
            ("sub", Opcode::Sub),
            ("mul", Opcode::Mul),
            ("and", Opcode::And),
            ("or", Opcode::Or),
            ("xor", Opcode::Xor),
            ("sll", Opcode::Sll),
            ("srl", Opcode::Srl),
            ("sra", Opcode::Sra),
            ("slt", Opcode::Slt),
            ("sltu", Opcode::Sltu),
            ("seq", Opcode::Seq),
            ("fadd", Opcode::FAdd),
            ("fsub", Opcode::FSub),
            ("fmul", Opcode::FMul),
            ("fdiv", Opcode::FDiv),
            ("fcmplt", Opcode::FCmpLt),
            ("fcmpeq", Opcode::FCmpEq),
            ("fcvtif", Opcode::FCvtIf),
            ("fcvtfi", Opcode::FCvtFi),
        ];
        for &(name, op) in table {
            if m == name {
                return Some((op, false));
            }
            // `i`-suffixed immediate forms; for FP ops the immediate is the
            // raw (sign-extended) bit pattern of the second operand, which
            // mainly exists so disassembly of arbitrary encodings can be
            // re-assembled.
            if let Some(stem) = m.strip_suffix('i') {
                if stem == name && !matches!(op, Opcode::FCvtIf | Opcode::FCvtFi) {
                    return Some((op, true));
                }
            }
        }
        None
    };

    let mem_op = |m: &str| -> Option<Opcode> {
        match m {
            "ldq" => Some(Opcode::Ldq),
            "ldl" => Some(Opcode::Ldl),
            "stq" => Some(Opcode::Stq),
            "stl" => Some(Opcode::Stl),
            "fldq" => Some(Opcode::FLdq),
            "fstq" => Some(Opcode::FStq),
            _ => None,
        }
    };

    let branch_op = |m: &str| -> Option<Opcode> {
        match m {
            "beq" => Some(Opcode::Beq),
            "bne" => Some(Opcode::Bne),
            "blt" => Some(Opcode::Blt),
            "bge" => Some(Opcode::Bge),
            "ble" => Some(Opcode::Ble),
            "bgt" => Some(Opcode::Bgt),
            _ => None,
        }
    };

    if let Some((op, imm_form)) = operate(&mnemonic) {
        // fcvt* are unary: rd, rs1
        if matches!(op, Opcode::FCvtIf | Opcode::FCvtFi) {
            let [rd, rs1] = two_args(&args, line)?;
            b.push(Inst::op_rr(
                op,
                parse_reg(rd, line)?,
                parse_reg(rs1, line)?,
                Reg::FZERO,
            ));
            return Ok(());
        }
        let [rd, rs1, src2] = three_args(&args, line)?;
        let rd = parse_reg(rd, line)?;
        let rs1 = parse_reg(rs1, line)?;
        if imm_form {
            b.push(Inst::op_ri(op, rd, rs1, parse_imm(src2, line)?));
        } else {
            b.push(Inst::op_rr(op, rd, rs1, parse_reg(src2, line)?));
        }
        return Ok(());
    }

    if let Some(op) = mem_op(&mnemonic) {
        let [data_or_dest, addr] = two_args(&args, line)?;
        let r = parse_reg(data_or_dest, line)?;
        let (disp, base) = parse_addr(addr, line)?;
        let inst = if op.class() == crate::inst::Class::Load {
            Inst::load(op, r, base, disp)
        } else {
            Inst::store(op, r, base, disp)
        };
        b.push(inst);
        return Ok(());
    }

    if let Some(op) = branch_op(&mnemonic) {
        let [rs1, target] = two_args(&args, line)?;
        let rs1 = parse_reg(rs1, line)?;
        push_control(b, Inst::branch(op, rs1, 0), target, line);
        return Ok(());
    }

    match mnemonic.as_str() {
        "br" => {
            let [target] = one_arg(&args, line)?;
            push_control(b, Inst::br(0), target, line);
            Ok(())
        }
        "jsr" => {
            let [rd, target] = two_args(&args, line)?;
            let rd = parse_reg(rd, line)?;
            push_control(b, Inst::jsr(rd, 0), target, line);
            Ok(())
        }
        "jmp" => {
            let [rd, rs1] = two_args(&args, line)?;
            b.push(Inst::jmp(parse_reg(rd, line)?, parse_reg(rs1, line)?));
            Ok(())
        }
        "ret" => {
            let [rs1] = one_arg(&args, line)?;
            b.push(Inst::ret(parse_reg(rs1, line)?));
            Ok(())
        }
        "mb" | "halt" | "nop" => {
            if !args.is_empty() {
                return Err(err(line, format!("`{mnemonic}` takes no operands")));
            }
            b.push(match mnemonic.as_str() {
                "mb" => Inst::mb(),
                "halt" => Inst::halt(),
                _ => Inst::nop(),
            });
            Ok(())
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

fn push_control(b: &mut ProgramBuilder, mut inst: Inst, target: &str, line: usize) {
    if let Ok(disp) = parse_num(target, line) {
        inst.imm = disp as i32;
        b.push(inst);
    } else {
        b.push_to_label(inst, target);
    }
}

fn one_arg<'a>(args: &[&'a str], line: usize) -> Result<[&'a str; 1], AsmError> {
    match args {
        [a] => Ok([a]),
        _ => Err(err(line, format!("expected 1 operand, got {}", args.len()))),
    }
}

fn two_args<'a>(args: &[&'a str], line: usize) -> Result<[&'a str; 2], AsmError> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(err(
            line,
            format!("expected 2 operands, got {}", args.len()),
        )),
    }
}

fn three_args<'a>(args: &[&'a str], line: usize) -> Result<[&'a str; 3], AsmError> {
    match args {
        [a, b, c] => Ok([a, b, c]),
        _ => Err(err(
            line,
            format!("expected 3 operands, got {}", args.len()),
        )),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let (bank, num) = s.split_at(1.min(s.len()));
    let n: u8 = num
        .parse()
        .map_err(|_| err(line, format!("bad register `{s}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register number out of range in `{s}`")));
    }
    match bank {
        "r" | "R" => Ok(Reg::int(n)),
        "f" | "F" => Ok(Reg::fp(n)),
        _ => Err(err(line, format!("bad register `{s}`"))),
    }
}

fn parse_num(s: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        // Hex literals are bit patterns: accept the full u64 range so
        // 64-bit `.data` words round-trip through the disassembler
        // (immediates are still range-checked by `parse_imm`).
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad number `{s}`")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_imm(s: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_num(s, line)?;
    if v < Inst::IMM_MIN as i64 || v > Inst::IMM_MAX as i64 {
        return Err(err(line, format!("immediate `{s}` out of 24-bit range")));
    }
    Ok(v as i32)
}

/// Parse `disp(base)` memory-operand syntax.
fn parse_addr(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected disp(base), got `{s}`")))?;
    if !s.ends_with(')') {
        return Err(err(line, format!("expected disp(base), got `{s}`")));
    }
    let disp_str = s[..open].trim();
    let disp = if disp_str.is_empty() {
        0
    } else {
        parse_imm(disp_str, line)?
    };
    let base = parse_reg(s[open + 1..s.len() - 1].trim(), line)?;
    Ok((disp, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ArchState, FlatMemory};

    #[test]
    fn assembles_and_runs_a_kernel() {
        let prog = assemble(
            "
            .data 0x1000, 5, 10, 15, 20
                addi r1, r31, 0x1000
                addi r2, r31, 4       # count
                addi r3, r31, 0       ; sum
            top:
                ldq  r4, 0(r1)
                add  r3, r3, r4
                addi r1, r1, 8
                subi r2, r2, 1
                bne  r2, top
                stq  r3, 0(r1)
                halt
            ",
        )
        .unwrap();
        let mut mem = FlatMemory::with_program(&prog);
        let mut st = ArchState::new(&prog);
        st.run(&prog, &mut mem, 10_000).unwrap();
        assert_eq!(st.read_reg(Reg::int(3)), 50);
    }

    #[test]
    fn every_mnemonic_parses() {
        let prog = assemble(
            "
            start:
                add r1, r2, r3
                addi r1, r2, -5
                sub r1, r2, r3
                mul r1, r2, r3
                and r1, r2, r3
                or r1, r2, r3
                xor r1, r2, r3
                slli r1, r2, 3
                srli r1, r2, 3
                srai r1, r2, 3
                slt r1, r2, r3
                sltui r1, r2, 9
                seq r1, r2, r3
                fadd f1, f2, f3
                fsub f1, f2, f3
                fmul f1, f2, f3
                fdiv f1, f2, f3
                fcmplt f1, f2, f3
                fcvtif f1, f2
                fcvtfi f1, f2
                ldq r1, 8(r2)
                ldl r1, (r2)
                stq r1, -8(r2)
                stl r1, 0(r2)
                fldq f1, 16(r2)
                fstq f1, 16(r2)
                beq r1, start
                bne r1, start
                blt r1, start
                bge r1, start
                ble r1, start
                bgt r1, +2
                br start
                jsr r26, start
                jmp r0, r27
                ret r26
                mb
                halt
                nop
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 39);
    }

    #[test]
    fn entry_directive_sets_start_pc() {
        let prog = assemble(
            ".entry main
nop
main: halt",
        )
        .unwrap();
        assert_eq!(prog.entry, 1);
        let mut mem = FlatMemory::new();
        let mut st = ArchState::new(&prog);
        let s = st.run(&prog, &mut mem, 10).unwrap();
        assert!(s.halted);
        assert_eq!(s.retired, 1, "the nop before main never executes");
    }

    #[test]
    fn labels_on_their_own_line() {
        let prog = assemble("a:\nb: nop\n br b\n halt").unwrap();
        assert_eq!(prog.insts[1].imm, -2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\n frobnicate r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn bad_register_reports_line() {
        let e = assemble("add r1, r2, r32").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn undefined_label_reported_at_link() {
        let e = assemble("br nowhere\nhalt").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn numeric_branch_targets_allowed() {
        let prog = assemble("beq r1, -1\nhalt").unwrap();
        assert_eq!(prog.insts[0].imm, -1);
    }

    #[test]
    fn wrong_arity_reports() {
        assert!(assemble("add r1, r2").is_err());
        assert!(assemble("ret").is_err());
        assert!(assemble("mb r1").unwrap_err().msg.contains("no operands"));
    }

    #[test]
    fn hex_and_negative_numbers() {
        let prog = assemble("addi r1, r31, 0x10\naddi r2, r31, -0x10\nhalt").unwrap();
        assert_eq!(prog.insts[0].imm, 16);
        assert_eq!(prog.insts[1].imm, -16);
    }

    #[test]
    fn data_words_cover_the_full_u64_range() {
        // The disassembler emits data words as raw u64 hex; values above
        // i64::MAX must assemble back (found by the differential fuzzer's
        // corpus round-trip).
        let prog = assemble(".data 0x100, 0xdfa3bb67dc8d2eaf, 0xffffffffffffffff\nhalt").unwrap();
        let (addr, bytes) = &prog.init_data[0];
        assert_eq!(*addr, 0x100);
        assert_eq!(&bytes[..8], &0xdfa3_bb67_dc8d_2eafu64.to_le_bytes());
        assert_eq!(&bytes[8..], &u64::MAX.to_le_bytes());
        // But instruction immediates stay range-checked.
        assert!(assemble("addi r1, r31, 0xdfa3bb67dc8d2eaf")
            .unwrap_err()
            .msg
            .contains("24-bit"));
    }
}
