//! Fixed-width binary encoding.
//!
//! Instructions occupy 8 bytes, so an aligned 64-byte instruction-cache line
//! holds exactly one 8-instruction fetch group — the fetch width of the
//! paper's machine. The layout (bit offsets within a little-endian `u64`):
//!
//! ```text
//!  0.. 8   opcode
//!  8..14   rd
//! 14..20   rs1
//! 20..26   rs2
//! 26       uses_imm
//! 27..32   reserved (zero)
//! 32..56   imm, 24-bit two's complement
//! 56..64   reserved (zero)
//! ```

use crate::inst::{Inst, Opcode};
use crate::reg::{Reg, NUM_ARCH_REGS};
use std::error::Error;
use std::fmt;

/// Size of one encoded instruction in bytes.
pub const INST_BYTES: u64 = 8;

/// Error returned by [`decode`] for malformed instruction words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field does not name a valid opcode.
    BadOpcode(u8),
    /// A reserved field was non-zero.
    ReservedBitsSet(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(v) => write!(f, "invalid opcode value {v}"),
            DecodeError::ReservedBitsSet(w) => {
                write!(f, "reserved bits set in instruction word {w:#018x}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Encode an instruction into its 8-byte word.
///
/// # Panics
///
/// Panics if `inst.imm` is outside the 24-bit signed range
/// ([`Inst::IMM_MIN`]..=[`Inst::IMM_MAX`]); the assembler and program
/// builder enforce this earlier with a proper error.
pub fn encode(inst: Inst) -> u64 {
    assert!(
        (Inst::IMM_MIN..=Inst::IMM_MAX).contains(&inst.imm),
        "immediate {} out of encodable range",
        inst.imm
    );
    let imm24 = (inst.imm as u32) & 0x00ff_ffff;
    (inst.op as u64)
        | (inst.rd.index() as u64) << 8
        | (inst.rs1.index() as u64) << 14
        | (inst.rs2.index() as u64) << 20
        | (inst.uses_imm as u64) << 26
        | (imm24 as u64) << 32
}

/// Decode an 8-byte instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode field is invalid or reserved bits
/// are set. Register fields are 6 bits wide and every value is a valid
/// architectural register, so they cannot fail.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let reserved = (word >> 27) & 0x1f | (word >> 56) << 5;
    if reserved != 0 {
        return Err(DecodeError::ReservedBitsSet(word));
    }
    let op =
        Opcode::from_u8((word & 0xff) as u8).ok_or(DecodeError::BadOpcode((word & 0xff) as u8))?;
    let reg_at = |shift: u32| Reg::from_index(((word >> shift) & 0x3f) as u8 % NUM_ARCH_REGS);
    let imm24 = ((word >> 32) & 0x00ff_ffff) as u32;
    // Sign-extend 24 -> 32 bits.
    let imm = ((imm24 << 8) as i32) >> 8;
    Ok(Inst {
        op,
        rd: reg_at(8),
        rs1: reg_at(14),
        rs2: reg_at(20),
        imm,
        uses_imm: (word >> 26) & 1 == 1,
    })
}

/// Encode a whole program into its binary image.
pub fn encode_all(insts: &[Inst]) -> Vec<u64> {
    insts.iter().copied().map(encode).collect()
}

/// Decode a binary image back into instructions.
///
/// # Errors
///
/// Fails on the first malformed word, reporting its index.
pub fn decode_all(words: &[u64]) -> Result<Vec<Inst>, (usize, DecodeError)> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| decode(w).map_err(|e| (i, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Class;

    fn sample_insts() -> Vec<Inst> {
        vec![
            Inst::op_rr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3)),
            Inst::op_ri(Opcode::Sub, Reg::int(4), Reg::int(4), -1),
            Inst::op_ri(Opcode::Sll, Reg::int(5), Reg::int(6), 12),
            Inst::load(Opcode::Ldq, Reg::int(7), Reg::int(8), 4096),
            Inst::store(Opcode::FStq, Reg::fp(1), Reg::int(9), -4096),
            Inst::branch(Opcode::Blt, Reg::int(10), -100),
            Inst::br(Inst::IMM_MAX),
            Inst::jsr(Reg::int(26), Inst::IMM_MIN),
            Inst::jmp(Reg::int(0), Reg::int(27)),
            Inst::ret(Reg::int(26)),
            Inst::mb(),
            Inst::halt(),
            Inst::nop(),
            Inst::op_rr(Opcode::FDiv, Reg::fp(0), Reg::fp(1), Reg::fp(2)),
        ]
    }

    #[test]
    fn round_trip_samples() {
        for inst in sample_insts() {
            let w = encode(inst);
            let back = decode(w).unwrap();
            assert_eq!(back, inst, "round-trip failed for {inst}");
        }
    }

    #[test]
    fn round_trip_all() {
        let insts = sample_insts();
        let words = encode_all(&insts);
        assert_eq!(decode_all(&words).unwrap(), insts);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let i = Inst::op_ri(Opcode::Add, Reg::int(1), Reg::int(1), -1);
        assert_eq!(decode(encode(i)).unwrap().imm, -1);
        let i = Inst::branch(Opcode::Beq, Reg::int(1), Inst::IMM_MIN);
        assert_eq!(decode(encode(i)).unwrap().imm, Inst::IMM_MIN);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(0xfe), Err(DecodeError::BadOpcode(0xfe)));
    }

    #[test]
    fn reserved_bits_rejected() {
        let w = encode(Inst::nop()) | 1 << 27;
        assert!(matches!(decode(w), Err(DecodeError::ReservedBitsSet(_))));
        let w = encode(Inst::nop()) | 1 << 60;
        assert!(matches!(decode(w), Err(DecodeError::ReservedBitsSet(_))));
    }

    #[test]
    #[should_panic]
    fn oversized_immediate_panics() {
        let _ = encode(Inst::op_ri(
            Opcode::Add,
            Reg::int(1),
            Reg::int(1),
            Inst::IMM_MAX + 1,
        ));
    }

    #[test]
    fn decode_all_reports_offending_index() {
        let mut words = encode_all(&sample_insts());
        words[3] = 0xff;
        let err = decode_all(&words).unwrap_err();
        assert_eq!(err.0, 3);
    }

    #[test]
    fn classes_survive_round_trip() {
        for inst in sample_insts() {
            assert_eq!(decode(encode(inst)).unwrap().class(), inst.class());
        }
        assert_eq!(
            decode(encode(Inst::load(Opcode::FLdq, Reg::fp(3), Reg::int(1), 0)))
                .unwrap()
                .class(),
            Class::Load
        );
    }
}
