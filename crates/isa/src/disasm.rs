//! Disassembler: turn a [`Program`] (or raw encoded words) back into
//! assembler text that [`crate::asm::assemble`] accepts.
//!
//! Control-flow targets are emitted as numeric displacements (which the
//! assembler accepts), so `assemble ∘ disassemble` is the identity on the
//! instruction stream — a property test in this module's test suite and in
//! the crate's proptest suite holds the round trip together.

use crate::encode::{decode_all, DecodeError};
use crate::program::Program;
use std::fmt::Write as _;

/// Render a program as assembler text, including its initial data image.
///
/// Branch/call targets are numeric displacements relative to the next
/// instruction, exactly as encoded.
pub fn disassemble(prog: &Program) -> String {
    let mut out = String::new();
    for (addr, bytes) in &prog.init_data {
        // Emit as 64-bit words; pad a ragged tail with zeros (the memory
        // image is zero-filled anyway, so padding is value-preserving
        // only when the tail padding lands on untouched bytes — the
        // assembler-side images we produce are always word-aligned).
        let _ = write!(out, ".data {:#x}", addr);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            let _ = write!(out, ", {:#x}", u64::from_le_bytes(w));
        }
        out.push('\n');
    }
    for inst in &prog.insts {
        let _ = writeln!(out, "    {inst}");
    }
    out
}

/// Disassemble a raw binary image (8-byte words).
///
/// # Errors
///
/// Returns the index and decode error of the first malformed word.
pub fn disassemble_words(words: &[u64]) -> Result<String, (usize, DecodeError)> {
    let insts = decode_all(words)?;
    Ok(disassemble(&Program::new("disasm", insts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::encode::encode_all;

    const KERNEL: &str = "
        .data 0x1000, 1, 2, 3
            addi r1, r31, 0x1000
            addi r2, r31, 3
        top:
            ldq  r3, 0(r1)
            add  r4, r4, r3
            addi r1, r1, 8
            subi r2, r2, 1
            bne  r2, top
            fcvtif f1, r4
            fmul f2, f1, f1
            fcvtfi r5, f2
            stq  r5, 0(r1)
            jsr  r26, fin
            halt
        fin:
            ret  r26
    ";

    #[test]
    fn assemble_disassemble_round_trips() {
        let prog = assemble(KERNEL).unwrap();
        let text = disassemble(&prog);
        let back = assemble(&text).unwrap();
        assert_eq!(back.insts, prog.insts);
        // Data images agree once both are normalized to word chunks.
        assert_eq!(back.init_data.len(), prog.init_data.len());
        for ((a1, b1), (a2, b2)) in prog.init_data.iter().zip(&back.init_data) {
            assert_eq!(a1, a2);
            assert_eq!(b1, b2);
        }
    }

    #[test]
    fn words_round_trip_through_binary() {
        let prog = assemble(KERNEL).unwrap();
        let words = encode_all(&prog.insts);
        let text = disassemble_words(&words).unwrap();
        let back = assemble(&text).unwrap();
        assert_eq!(back.insts, prog.insts);
    }

    #[test]
    fn malformed_words_report_index() {
        let err = disassemble_words(&[0, 0xfe]).unwrap_err();
        assert_eq!(err.0, 1);
    }
}
