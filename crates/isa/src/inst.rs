//! Instruction model: opcodes, instruction classes, and the decoded
//! instruction representation consumed by both the functional interpreter
//! and the timing pipeline.

use crate::reg::Reg;
use std::fmt;

/// Coarse instruction class.
///
/// The pipeline assigns execution latencies, functional-unit requirements,
/// and loop behaviour (which micro-architectural loop an instruction can
/// initiate) by class, exactly as the paper's machine does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Long-latency integer multiply.
    IntMul,
    /// Floating-point add/subtract/compare/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Long-latency floating-point divide.
    FpDiv,
    /// Memory load (integer or floating point).
    Load,
    /// Memory store (integer or floating point).
    Store,
    /// Conditional branch (initiates the branch resolution loop).
    CondBranch,
    /// Unconditional PC-relative branch or call.
    Branch,
    /// Indirect jump/return through a register.
    Jump,
    /// Memory barrier (initiates the paper's memory-barrier loop).
    MemBar,
    /// Thread termination.
    Halt,
}

impl Class {
    /// True for classes that read or write memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Class::Load | Class::Store)
    }

    /// True for classes that can redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(self, Class::CondBranch | Class::Branch | Class::Jump)
    }
}

/// Operation codes of the mini ISA.
///
/// Operate-format instructions take `rs2` or, when [`Inst::uses_imm`] is
/// set, a sign-extended immediate as their second source (the assembler
/// exposes the immediate forms as distinct mnemonics such as `addi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    // Integer operate.
    Add = 0,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Set `rd = (rs1 < src2)` signed.
    Slt,
    /// Set `rd = (rs1 < src2)` unsigned.
    Sltu,
    /// Set `rd = (rs1 == src2)`.
    Seq,
    // Floating-point operate (operands are IEEE-754 bit patterns).
    FAdd,
    FSub,
    FMul,
    FDiv,
    /// Set `rd = (rs1 < rs2)` as 0/1 bit pattern (fp bank).
    FCmpLt,
    /// Set `rd = (rs1 == rs2)` as 0/1 bit pattern (fp bank).
    FCmpEq,
    /// Convert signed integer in an fp register's bit pattern to f64.
    FCvtIf,
    /// Convert f64 to signed integer (truncating).
    FCvtFi,
    // Memory.
    /// 64-bit integer load: `rd = mem[rs1 + imm]`.
    Ldq,
    /// 32-bit integer load, zero-extended.
    Ldl,
    /// 64-bit integer store: `mem[rs1 + imm] = rs2`.
    Stq,
    /// 32-bit integer store (low 32 bits).
    Stl,
    /// 64-bit floating-point load into the fp bank.
    FLdq,
    /// 64-bit floating-point store from the fp bank.
    FStq,
    // Control. Conditional branches test `rs1` against zero; targets are
    // PC-relative instruction-index displacements.
    Beq,
    Bne,
    Blt,
    Bge,
    Ble,
    Bgt,
    /// Unconditional PC-relative branch.
    Br,
    /// PC-relative call: `rd = pc + 1`, jump to `pc + 1 + imm`.
    Jsr,
    /// Indirect jump through `rs1`; `rd = pc + 1` (link, may be `r31`).
    Jmp,
    /// Return: indirect jump through `rs1` with return-stack pop hint.
    Ret,
    // Misc.
    /// Memory barrier: stalls the mapper until all prior work completes.
    Mb,
    /// Stop this thread.
    Halt,
    /// No operation.
    Nop,
}

/// Number of distinct opcodes (used by the binary encoder and fuzzers).
pub const NUM_OPCODES: u8 = Opcode::Nop as u8 + 1;

impl Opcode {
    /// The instruction class this opcode belongs to.
    pub fn class(self) -> Class {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Seq => Class::IntAlu,
            Mul => Class::IntMul,
            FAdd | FSub | FCmpLt | FCmpEq | FCvtIf | FCvtFi => Class::FpAdd,
            FMul => Class::FpMul,
            FDiv => Class::FpDiv,
            Ldq | Ldl | FLdq => Class::Load,
            Stq | Stl | FStq => Class::Store,
            Beq | Bne | Blt | Bge | Ble | Bgt => Class::CondBranch,
            Br | Jsr => Class::Branch,
            Jmp | Ret => Class::Jump,
            Mb => Class::MemBar,
            Halt => Class::Halt,
            Nop => Class::IntAlu,
        }
    }

    /// Opcode from its `repr(u8)` discriminant, if valid.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        if v < NUM_OPCODES {
            // SAFETY-free alternative to a transmute: exhaustive table.
            Some(OPCODE_TABLE[v as usize])
        } else {
            None
        }
    }

    /// The assembler mnemonic (register form).
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Seq => "seq",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FCmpLt => "fcmplt",
            FCmpEq => "fcmpeq",
            FCvtIf => "fcvtif",
            FCvtFi => "fcvtfi",
            Ldq => "ldq",
            Ldl => "ldl",
            Stq => "stq",
            Stl => "stl",
            FLdq => "fldq",
            FStq => "fstq",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Ble => "ble",
            Bgt => "bgt",
            Br => "br",
            Jsr => "jsr",
            Jmp => "jmp",
            Ret => "ret",
            Mb => "mb",
            Halt => "halt",
            Nop => "nop",
        }
    }
}

/// Table mapping discriminants back to opcodes; must stay in declaration
/// order (checked by a unit test).
const OPCODE_TABLE: [Opcode; NUM_OPCODES as usize] = {
    use Opcode::*;
    [
        Add, Sub, Mul, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Seq, FAdd, FSub, FMul, FDiv, FCmpLt,
        FCmpEq, FCvtIf, FCvtFi, Ldq, Ldl, Stq, Stl, FLdq, FStq, Beq, Bne, Blt, Bge, Ble, Bgt, Br,
        Jsr, Jmp, Ret, Mb, Halt, Nop,
    ]
};

/// A decoded instruction.
///
/// All instructions share one layout; fields that an opcode does not use are
/// ignored (and normalized to zero/`r31` by the constructors). `imm` holds
/// the sign-extended immediate, memory displacement, or branch displacement
/// (in instruction indices, relative to `pc + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register (`r31`/`f31` when unused).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register (store data for stores).
    pub rs2: Reg,
    /// Immediate / displacement (24-bit signed range enforced by encoding).
    pub imm: i32,
    /// Operate format uses `imm` instead of `rs2` as the second source.
    pub uses_imm: bool,
}

impl Inst {
    /// Immediate values must fit in 24 signed bits to be encodable.
    pub const IMM_MIN: i32 = -(1 << 23);
    /// See [`Inst::IMM_MIN`].
    pub const IMM_MAX: i32 = (1 << 23) - 1;

    /// Register-form operate instruction: `rd = rs1 <op> rs2`.
    pub fn op_rr(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
            uses_imm: false,
        }
    }

    /// Immediate-form operate instruction: `rd = rs1 <op> imm`.
    pub fn op_ri(op: Opcode, rd: Reg, rs1: Reg, imm: i32) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2: Reg::ZERO,
            imm,
            uses_imm: true,
        }
    }

    /// Load: `rd = mem[rs1 + disp]`.
    pub fn load(op: Opcode, rd: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert_eq!(op.class(), Class::Load);
        Inst {
            op,
            rd,
            rs1: base,
            rs2: Reg::ZERO,
            imm: disp,
            uses_imm: false,
        }
    }

    /// Store: `mem[base + disp] = data`.
    pub fn store(op: Opcode, data: Reg, base: Reg, disp: i32) -> Inst {
        debug_assert_eq!(op.class(), Class::Store);
        let zero = if data.is_fp() { Reg::FZERO } else { Reg::ZERO };
        Inst {
            op,
            rd: zero,
            rs1: base,
            rs2: data,
            imm: disp,
            uses_imm: false,
        }
    }

    /// Conditional branch testing `rs1`, with instruction-index displacement
    /// relative to `pc + 1`.
    pub fn branch(op: Opcode, rs1: Reg, disp: i32) -> Inst {
        debug_assert_eq!(op.class(), Class::CondBranch);
        Inst {
            op,
            rd: Reg::ZERO,
            rs1,
            rs2: Reg::ZERO,
            imm: disp,
            uses_imm: false,
        }
    }

    /// Unconditional PC-relative branch.
    pub fn br(disp: i32) -> Inst {
        Inst {
            op: Opcode::Br,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: disp,
            uses_imm: false,
        }
    }

    /// PC-relative call linking into `rd`.
    pub fn jsr(rd: Reg, disp: i32) -> Inst {
        Inst {
            op: Opcode::Jsr,
            rd,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: disp,
            uses_imm: false,
        }
    }

    /// Indirect jump through `target`, linking into `rd` (`r31` for none).
    pub fn jmp(rd: Reg, target: Reg) -> Inst {
        Inst {
            op: Opcode::Jmp,
            rd,
            rs1: target,
            rs2: Reg::ZERO,
            imm: 0,
            uses_imm: false,
        }
    }

    /// Return through `target` (return-stack pop hint).
    pub fn ret(target: Reg) -> Inst {
        Inst {
            op: Opcode::Ret,
            rd: Reg::ZERO,
            rs1: target,
            rs2: Reg::ZERO,
            imm: 0,
            uses_imm: false,
        }
    }

    /// Memory barrier.
    pub fn mb() -> Inst {
        Inst {
            op: Opcode::Mb,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
            uses_imm: false,
        }
    }

    /// Thread halt.
    pub fn halt() -> Inst {
        Inst {
            op: Opcode::Halt,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
            uses_imm: false,
        }
    }

    /// No-op.
    pub fn nop() -> Inst {
        Inst {
            op: Opcode::Nop,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            imm: 0,
            uses_imm: false,
        }
    }

    /// The instruction class (shorthand for `self.op.class()`).
    pub fn class(self) -> Class {
        self.op.class()
    }

    /// Source registers actually read by this instruction, zero registers
    /// excluded (they never rename and are always "ready").
    ///
    /// At most two sources exist; absent slots are `None`.
    pub fn srcs(self) -> [Option<Reg>; 2] {
        use Opcode::*;
        let (a, b) = match self.op {
            Nop | Br | Jsr | Mb | Halt => (None, None),
            Jmp | Ret => (Some(self.rs1), None),
            Beq | Bne | Blt | Bge | Ble | Bgt => (Some(self.rs1), None),
            Ldq | Ldl | FLdq => (Some(self.rs1), None),
            Stq | Stl | FStq => (Some(self.rs1), Some(self.rs2)),
            _ => {
                if self.uses_imm {
                    (Some(self.rs1), None)
                } else {
                    (Some(self.rs1), Some(self.rs2))
                }
            }
        };
        let strip = |r: Option<Reg>| r.filter(|r| !r.is_zero());
        [strip(a), strip(b)]
    }

    /// Destination register written by this instruction, if any (writes to
    /// the zero registers are architectural no-ops and report `None`).
    pub fn dest(self) -> Option<Reg> {
        use Opcode::*;
        let d = match self.op {
            Stq | Stl | FStq | Beq | Bne | Blt | Bge | Ble | Bgt | Br | Ret | Mb | Halt | Nop => {
                None
            }
            Jsr | Jmp => Some(self.rd),
            _ => Some(self.rd),
        };
        d.filter(|r| !r.is_zero())
    }

    /// Number of non-zero source operands (the paper's operand-resolution
    /// loop fires once per source operand).
    pub fn num_srcs(self) -> usize {
        self.srcs().iter().flatten().count()
    }

    /// Normalize fields this opcode does not use (dead register slots,
    /// dead immediates, the `uses_imm` flag on formats without an
    /// immediate source). Two instructions with equal canonical forms are
    /// semantically identical; the assembler and the constructors always
    /// produce canonical instructions, and
    /// `assemble(disassemble(p))` equals `p` canonicalized.
    pub fn canonical(self) -> Inst {
        use Opcode::*;
        match self.op {
            FCvtIf | FCvtFi => Inst {
                rs2: Reg::FZERO,
                imm: 0,
                uses_imm: false,
                ..self
            },
            Ldq | Ldl | FLdq => Inst {
                rs2: Reg::ZERO,
                uses_imm: false,
                ..self
            },
            Stq | Stl | FStq => {
                let zero = if self.rs2.is_fp() {
                    Reg::FZERO
                } else {
                    Reg::ZERO
                };
                Inst {
                    rd: zero,
                    uses_imm: false,
                    ..self
                }
            }
            Beq | Bne | Blt | Bge | Ble | Bgt => Inst {
                rd: Reg::ZERO,
                rs2: Reg::ZERO,
                uses_imm: false,
                ..self
            },
            Br => Inst {
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                uses_imm: false,
                ..self
            },
            Jsr => Inst {
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                uses_imm: false,
                ..self
            },
            Jmp => Inst {
                rs2: Reg::ZERO,
                imm: 0,
                uses_imm: false,
                ..self
            },
            Ret => Inst {
                rd: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: 0,
                uses_imm: false,
                ..self
            },
            Mb | Halt | Nop => Inst {
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                imm: 0,
                uses_imm: false,
                ..self
            },
            _ => {
                // Operate formats: either the immediate or rs2 is dead.
                if self.uses_imm {
                    Inst {
                        rs2: Reg::ZERO,
                        ..self
                    }
                } else {
                    Inst { imm: 0, ..self }
                }
            }
        }
    }

    /// True if every dead field is already normalized (see
    /// [`Inst::canonical`]).
    pub fn is_canonical(self) -> bool {
        self == self.canonical()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Class::*;
        let m = self.op.mnemonic();
        match self.class() {
            Load => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            Store => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            CondBranch => write!(f, "{m} {}, {:+}", self.rs1, self.imm),
            Branch => {
                if self.op == Opcode::Jsr {
                    write!(f, "{m} {}, {:+}", self.rd, self.imm)
                } else {
                    write!(f, "{m} {:+}", self.imm)
                }
            }
            Jump => {
                if self.op == Opcode::Ret {
                    write!(f, "{m} {}", self.rs1)
                } else {
                    write!(f, "{m} {}, {}", self.rd, self.rs1)
                }
            }
            MemBar | Halt => write!(f, "{m}"),
            _ => {
                if self.op == Opcode::Nop {
                    write!(f, "nop")
                } else if matches!(self.op, Opcode::FCvtIf | Opcode::FCvtFi) {
                    write!(f, "{m} {}, {}", self.rd, self.rs1)
                } else if self.uses_imm {
                    write!(f, "{m}i {}, {}, {}", self.rd, self.rs1, self.imm)
                } else {
                    write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_table_matches_discriminants() {
        for v in 0..NUM_OPCODES {
            let op = Opcode::from_u8(v).unwrap();
            assert_eq!(op as u8, v, "table out of order at {v}");
        }
        assert!(Opcode::from_u8(NUM_OPCODES).is_none());
        assert!(Opcode::from_u8(255).is_none());
    }

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Add.class(), Class::IntAlu);
        assert_eq!(Opcode::Mul.class(), Class::IntMul);
        assert_eq!(Opcode::FDiv.class(), Class::FpDiv);
        assert_eq!(Opcode::Ldq.class(), Class::Load);
        assert_eq!(Opcode::FStq.class(), Class::Store);
        assert_eq!(Opcode::Bne.class(), Class::CondBranch);
        assert_eq!(Opcode::Ret.class(), Class::Jump);
        assert!(Class::Load.is_mem());
        assert!(!Class::IntAlu.is_mem());
        assert!(Class::CondBranch.is_control());
        assert!(!Class::Store.is_control());
    }

    #[test]
    fn srcs_and_dest_for_operate() {
        let i = Inst::op_rr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
        assert_eq!(i.srcs(), [Some(Reg::int(2)), Some(Reg::int(3))]);
        assert_eq!(i.dest(), Some(Reg::int(1)));
        assert_eq!(i.num_srcs(), 2);

        let i = Inst::op_ri(Opcode::Add, Reg::int(1), Reg::int(2), 7);
        assert_eq!(i.srcs(), [Some(Reg::int(2)), None]);
        assert_eq!(i.num_srcs(), 1);
    }

    #[test]
    fn zero_register_sources_are_stripped() {
        let i = Inst::op_rr(Opcode::Add, Reg::int(1), Reg::ZERO, Reg::int(3));
        assert_eq!(i.srcs(), [None, Some(Reg::int(3))]);
        let i = Inst::op_rr(Opcode::Add, Reg::ZERO, Reg::int(2), Reg::int(3));
        assert_eq!(i.dest(), None, "writes to r31 are discarded");
    }

    #[test]
    fn mem_srcs_and_dest() {
        let ld = Inst::load(Opcode::Ldq, Reg::int(4), Reg::int(5), 16);
        assert_eq!(ld.srcs(), [Some(Reg::int(5)), None]);
        assert_eq!(ld.dest(), Some(Reg::int(4)));

        let st = Inst::store(Opcode::Stq, Reg::int(4), Reg::int(5), -8);
        assert_eq!(st.srcs(), [Some(Reg::int(5)), Some(Reg::int(4))]);
        assert_eq!(st.dest(), None);
    }

    #[test]
    fn control_srcs_and_dest() {
        let b = Inst::branch(Opcode::Beq, Reg::int(1), -4);
        assert_eq!(b.srcs(), [Some(Reg::int(1)), None]);
        assert_eq!(b.dest(), None);

        let j = Inst::jsr(Reg::int(26), 100);
        assert_eq!(j.srcs(), [None, None]);
        assert_eq!(j.dest(), Some(Reg::int(26)));

        let r = Inst::ret(Reg::int(26));
        assert_eq!(r.srcs(), [Some(Reg::int(26)), None]);
        assert_eq!(r.dest(), None);
    }

    #[test]
    fn constructors_produce_canonical_instructions() {
        for i in [
            Inst::op_rr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3)),
            Inst::op_ri(Opcode::Sub, Reg::int(1), Reg::int(1), 5),
            Inst::load(Opcode::Ldq, Reg::int(2), Reg::int(3), 8),
            Inst::store(Opcode::FStq, Reg::fp(2), Reg::int(3), 0),
            Inst::branch(Opcode::Bne, Reg::int(9), -3),
            Inst::br(7),
            Inst::jsr(Reg::int(26), 1),
            Inst::jmp(Reg::int(1), Reg::int(2)),
            Inst::ret(Reg::int(26)),
            Inst::mb(),
            Inst::halt(),
            Inst::nop(),
        ] {
            assert!(i.is_canonical(), "{i}");
        }
    }

    #[test]
    fn canonicalization_is_idempotent_and_preserves_meaning() {
        let messy = Inst {
            op: Opcode::Add,
            rd: Reg::int(1),
            rs1: Reg::int(2),
            rs2: Reg::fp(9), // dead: uses_imm
            imm: 5,
            uses_imm: true,
        };
        let c = messy.canonical();
        assert!(c.is_canonical());
        assert_eq!(c.canonical(), c);
        assert_eq!(c.srcs(), messy.srcs());
        assert_eq!(c.dest(), messy.dest());
    }

    #[test]
    fn display_round_trips_through_mnemonics() {
        assert_eq!(
            Inst::op_rr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3)).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Inst::op_ri(Opcode::Sub, Reg::int(1), Reg::int(1), 1).to_string(),
            "subi r1, r1, 1"
        );
        assert_eq!(
            Inst::load(Opcode::Ldq, Reg::int(2), Reg::int(3), 8).to_string(),
            "ldq r2, 8(r3)"
        );
        assert_eq!(
            Inst::store(Opcode::FStq, Reg::fp(2), Reg::int(3), 0).to_string(),
            "fstq f2, 0(r3)"
        );
        assert_eq!(
            Inst::branch(Opcode::Bne, Reg::int(9), -3).to_string(),
            "bne r9, -3"
        );
        assert_eq!(Inst::halt().to_string(), "halt");
        assert_eq!(Inst::nop().to_string(), "nop");
    }
}
