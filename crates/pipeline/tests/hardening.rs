//! Hardening integration tests: the forward-progress watchdog, the
//! per-cycle invariant auditor, and fault-injection storms with full
//! architectural verification against the ISA interpreter.

use looseloops_isa::{asm, ArchState, FlatMemory, Reg};
use looseloops_pipeline::{FaultPlan, Machine, PipelineConfig, SimError};

/// 200-iteration accumulation loop: r2 ends at 1 + 2 + … + 200 = 20100.
const SUM_LOOP: &str = "
        addi r1, r31, 200
    top:
        add  r2, r2, r1
        subi r1, r1, 1
        bne  r1, top
        halt
";
const SUM_LOOP_RESULT: u64 = 20_100;

/// Load-heavy loop: walks an 8-quadword table 25 times, r4 ends at 25 * 36.
const LOAD_LOOP: &str = "
    .data 0x1000, 1, 2, 3, 4, 5, 6, 7, 8
        addi r5, r31, 25
    rep:
        addi r1, r31, 0x1000
        addi r2, r31, 8
    top:
        ldq  r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 8
        subi r2, r2, 1
        bne  r2, top
        subi r5, r5, 1
        bne  r5, rep
        halt
";
const LOAD_LOOP_RESULT: u64 = 25 * 36;

/// Run `src` to halt under `cfg` with the auditor and the retired-result
/// oracle both on; every retirement is checked against the ISA
/// interpreter, so a storm that corrupts architectural state panics here.
fn run_verified(mut cfg: PipelineConfig, src: &str) -> Machine {
    cfg.audit = true;
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(cfg, vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 4_000_000).unwrap();
    assert!(
        m.is_done(),
        "program must halt under the storm: cycle={}",
        m.cycle()
    );
    m
}

/// Final-state check through the public diff API: run the interpreter on
/// `src` to halt and require the machine's drained architectural state
/// (all 64 registers, PC, halt flag — and, when `check_mem`, every byte of
/// data memory) to diff empty against it. Returns the oracle state so
/// callers can pin expected constants against the *reference* model.
fn assert_state_matches_oracle(
    m: &mut Machine,
    src: &str,
    thread: usize,
    check_mem: bool,
) -> ArchState {
    let prog = asm::assemble(src).unwrap();
    let mut mem = FlatMemory::with_program(&prog);
    let mut oracle = ArchState::new(&prog);
    let summary = oracle.run(&prog, &mut mem, 10_000_000).unwrap();
    assert!(summary.halted, "oracle run must halt");
    let d = oracle.diff(&m.arch_state(thread));
    assert!(
        d.is_empty(),
        "thread {thread} final state diverged from the oracle:\n{}",
        d.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    if check_mem {
        let md = mem.diff(m.data_mem());
        assert!(
            md.is_empty(),
            "data memory diverged from the oracle:\n{}",
            md.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    oracle
}

#[test]
fn wedged_pipeline_returns_deadlock_error_with_snapshot() {
    // Every load spikes by 10M cycles: the first load wedges the ROB head
    // far beyond the watchdog window, so the watchdog must fire long
    // before max_cycles.
    let mut cfg = PipelineConfig::base();
    cfg.watchdog_window = 5_000;
    cfg.faults = Some(FaultPlan::load_storm(3, 1.0, 10_000_000));
    let prog = asm::assemble(LOAD_LOOP).unwrap();
    let mut m = Machine::new(cfg, vec![prog]).unwrap();

    let err = m.run(u64::MAX, 1_000_000).expect_err("pipeline must wedge");
    let SimError::Deadlock(d) = err else {
        panic!("expected Deadlock, got: {err}")
    };
    assert_eq!(d.window, 5_000);
    assert!(
        d.cycle >= 5_000 && d.cycle < 1_000_000,
        "fired at {}",
        d.cycle
    );
    assert!(d.cycle - d.last_retire_cycle >= 5_000);

    // The snapshot must describe a genuinely wedged machine.
    assert_eq!(d.snapshot.cycle, d.cycle);
    assert_eq!(d.snapshot.threads.len(), 1);
    assert!(!d.snapshot.threads[0].done);
    assert!(
        d.snapshot.in_flight > 0,
        "a wedge holds instructions in flight"
    );
    let oldest = d.snapshot.threads[0].oldest.expect("ROB head present");
    assert!(oldest.1 > 0, "oldest instruction has a pc");

    // The human-readable report names the wedge and the per-stage state.
    let text = d.to_string();
    assert!(text.contains("pipeline deadlock"), "{text}");
    assert!(text.contains("thread 0"), "{text}");

    assert_eq!(m.stats().deadlocks_detected, 1);
}

#[test]
fn watchdog_zero_disables_detection() {
    // Same wedge, window 0: the run must instead exhaust max_cycles
    // without an error (the pre-hardening behaviour).
    let mut cfg = PipelineConfig::base();
    cfg.watchdog_window = 0;
    cfg.faults = Some(FaultPlan::load_storm(3, 1.0, 10_000_000));
    let prog = asm::assemble(LOAD_LOOP).unwrap();
    let mut m = Machine::new(cfg, vec![prog]).unwrap();
    m.run(u64::MAX, 20_000).unwrap();
    assert!(!m.is_done());
    assert_eq!(m.stats().deadlocks_detected, 0);
}

#[test]
fn branch_storm_recovers_and_results_match_isa() {
    // Flip 20% of all conditional-branch direction predictions: a
    // mispredict storm stresses the control-resolution loop's squash path.
    let mut m = run_verified(
        PipelineConfig {
            faults: Some(FaultPlan::branch_storm(11, 0.2)),
            ..PipelineConfig::base()
        },
        SUM_LOOP,
    );
    let oracle = assert_state_matches_oracle(&mut m, SUM_LOOP, 0, true);
    assert_eq!(oracle.read_reg(Reg::int(2)), SUM_LOOP_RESULT);
    let s = m.stats().clone();
    assert!(s.faults_injected > 0, "storm must fire");
    assert!(
        s.faults_by_kind[0] > 0,
        "branch flips recorded: {:?}",
        s.faults_by_kind
    );
    assert!(s.audit_checks > 0, "auditor ran every cycle");
    assert!(s.branch_mispredicts > 0);
    // Scheduled-vs-fired audit: every armed opportunity was presented to
    // the injector and every hit it reported reached the machine's stats —
    // a silently dropped injection fails here.
    let sum = m.fault_summary().expect("plan armed");
    assert_eq!(sum.fired, s.faults_by_kind, "fired faults all took effect");
    assert_eq!(sum.total_fired(), s.faults_injected);
    assert!(
        sum.scheduled[0] >= sum.fired[0] && sum.fired[0] > 0,
        "summary: {sum}"
    );
}

#[test]
fn load_spike_storm_recovers_and_results_match_isa() {
    // Delay 30% of loads by 150 cycles: stresses the load-resolution
    // loop's delayed-wakeup correction path.
    let mut m = run_verified(
        PipelineConfig {
            faults: Some(FaultPlan::load_storm(12, 0.3, 150)),
            ..PipelineConfig::base()
        },
        LOAD_LOOP,
    );
    let oracle = assert_state_matches_oracle(&mut m, LOAD_LOOP, 0, true);
    assert_eq!(oracle.read_reg(Reg::int(4)), LOAD_LOOP_RESULT);
    let s = m.stats().clone();
    assert!(s.faults_injected > 0);
    assert!(
        s.faults_by_kind[1] > 0,
        "load spikes recorded: {:?}",
        s.faults_by_kind
    );
    let sum = m.fault_summary().expect("plan armed");
    assert_eq!(sum.fired, s.faults_by_kind);
    assert!(sum.scheduled[1] >= sum.fired[1], "summary: {sum}");
}

#[test]
fn operand_miss_storm_recovers_and_results_match_isa() {
    // DRA machine with 10% of operand lookups forced to miss: every miss
    // takes the architected register-file recovery path (squash + refetch
    // behind a front-end stall), the paper's operand-resolution loop.
    let mut m = run_verified(
        PipelineConfig {
            faults: Some(FaultPlan::operand_storm(13, 0.1)),
            ..PipelineConfig::dra_for_rf(5)
        },
        SUM_LOOP,
    );
    let oracle = assert_state_matches_oracle(&mut m, SUM_LOOP, 0, true);
    assert_eq!(oracle.read_reg(Reg::int(2)), SUM_LOOP_RESULT);
    let s = m.stats().clone();
    assert!(s.faults_injected > 0);
    assert!(
        s.faults_by_kind[2] > 0,
        "operand misses recorded: {:?}",
        s.faults_by_kind
    );
    assert!(
        s.operand_misses > 0,
        "forced misses flow into the regular miss counter"
    );
    let sum = m.fault_summary().expect("plan armed");
    assert_eq!(sum.fired, s.faults_by_kind);
    assert!(sum.scheduled[2] >= sum.fired[2], "summary: {sum}");
}

#[test]
fn ipc_recovers_after_a_windowed_storm() {
    // Storm confined to cycles [0, 2000): after it ends the machine must
    // return to fault-free throughput, so the total slowdown is bounded by
    // a small multiple of the fault-free run, not a permanent degradation.
    let baseline = {
        let mut m = run_verified(PipelineConfig::base(), SUM_LOOP);
        assert_eq!(m.arch_reg(0, Reg::int(2)), SUM_LOOP_RESULT);
        m.cycle()
    };
    let plan = FaultPlan::branch_storm(17, 0.5).in_window(0, 2_000);
    let mut m = run_verified(
        PipelineConfig {
            faults: Some(plan),
            ..PipelineConfig::base()
        },
        SUM_LOOP,
    );
    assert_eq!(m.arch_reg(0, Reg::int(2)), SUM_LOOP_RESULT);
    let stormed = m.cycle();
    assert!(stormed >= baseline, "a storm cannot speed the machine up");
    assert!(
        stormed < baseline + 3 * 2_000,
        "post-storm IPC must recover: baseline={baseline} stormed={stormed}"
    );
    // All injection happened inside the window: the summary must show
    // opportunities scheduled after cycle 2000 that never fired.
    assert!(m.stats().faults_injected > 0);
    let sum = m.fault_summary().expect("plan armed");
    assert!(
        sum.scheduled[0] > sum.fired[0],
        "post-window opportunities must be scheduled but not fired: {sum}"
    );
    assert_eq!(sum.total_fired(), m.stats().faults_injected);
}

#[test]
fn fault_schedules_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let plan = FaultPlan::branch_storm(seed, 0.2);
        let m = run_verified(
            PipelineConfig {
                faults: Some(plan),
                ..PipelineConfig::base()
            },
            SUM_LOOP,
        );
        (
            m.cycle(),
            m.stats().faults_injected,
            m.stats().branch_mispredicts,
        )
    };
    assert_eq!(run(42), run(42), "same seed, same storm, same timing");
}

#[test]
fn combined_storm_on_smt_dra_machine_stays_architecturally_correct() {
    // Everything at once on the most complex configuration: two threads,
    // DRA register caches, branch flips + load spikes + operand misses.
    let mut cfg = PipelineConfig::dra_for_rf(5).smt(2);
    cfg.audit = true;
    cfg.faults = Some(FaultPlan {
        seed: 99,
        branch_flip_rate: 0.1,
        load_spike_rate: 0.1,
        load_spike_cycles: 80,
        operand_miss_rate: 0.05,
        window: None,
    });
    let p0 = asm::assemble(SUM_LOOP).unwrap();
    let p1 = asm::assemble(LOAD_LOOP).unwrap();
    let mut m = Machine::new(cfg, vec![p0, p1]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 8_000_000).unwrap();
    assert!(m.is_done());
    // Per-thread register/PC/halt state must diff empty against the oracle
    // (memory is shared between threads under SMT, so skip the byte diff).
    let o0 = assert_state_matches_oracle(&mut m, SUM_LOOP, 0, false);
    let o1 = assert_state_matches_oracle(&mut m, LOAD_LOOP, 1, false);
    assert_eq!(o0.read_reg(Reg::int(2)), SUM_LOOP_RESULT);
    assert_eq!(o1.read_reg(Reg::int(4)), LOAD_LOOP_RESULT);
    let s = m.stats().clone();
    assert!(
        s.faults_by_kind.iter().all(|&n| n > 0),
        "all three kinds fired: {:?}",
        s.faults_by_kind
    );
    assert_eq!(s.faults_injected, s.faults_by_kind.iter().sum::<u64>());
    let sum = m.fault_summary().expect("plan armed");
    assert_eq!(sum.fired, s.faults_by_kind);
    assert!(sum
        .scheduled
        .iter()
        .zip(sum.fired.iter())
        .all(|(s, f)| s >= f));
}
