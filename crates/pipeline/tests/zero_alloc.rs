//! Steady-state allocation audit for the cycle engine.
//!
//! The zero-allocation contract: once the machine reaches its in-flight
//! high-water mark (slab, IQ arena, timing-wheel buckets, scratch buffers,
//! forwarding-buffer ring all at capacity), `step_cycle` must not touch the
//! heap at all. A counting global allocator proves it: warm up, arm the
//! counter, run 10k cycles, expect exactly zero allocations.
//!
//! This binary holds only this test so no concurrent test thread can
//! perturb the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use looseloops_isa::asm;
use looseloops_pipeline::{Machine, PipelineConfig};

/// Counts heap acquisitions (alloc/alloc_zeroed/realloc) while armed.
/// Deallocations are free to happen — returning memory is not growth.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// A long-running kernel touching every hot path: loads, stores (with
/// store→load forwarding on the same line), ALU dependencies, and a
/// mispredictable loop branch — all within one already-touched memory page.
const KERNEL: &str = "
        addi r1, r31, 30000
        addi r2, r31, 0x1000
    top:
        ldq  r3, 0(r2)
        add  r3, r3, r1
        stq  r3, 0(r2)
        ldq  r4, 0(r2)
        add  r5, r5, r4
        subi r1, r1, 1
        bne  r1, top
        halt
";

const WARMUP_CYCLES: u64 = 20_000;
const MEASURE_CYCLES: u64 = 10_000;

fn assert_steady_state_allocation_free(cfg: PipelineConfig, what: &str) {
    let prog = asm::assemble(KERNEL).unwrap();
    // Plain measurement configuration: auditor, tracer, oracle, and retire
    // capture all off — they are diagnostic layers with their own buffers,
    // not part of the cycle engine under test.
    let cfg = PipelineConfig {
        audit: false,
        ..cfg
    };
    // Predecode is a construction-time cost: exactly one table per program,
    // and fetch/rename/execute then index it without ever rebuilding.
    let built_before = looseloops_isa::predecode::build_count();
    let mut m = Machine::new(cfg, vec![prog]).unwrap();
    assert_eq!(
        looseloops_isa::predecode::build_count(),
        built_before + 1,
        "{what}: construction predecodes each program exactly once"
    );

    for _ in 0..WARMUP_CYCLES {
        m.step_cycle();
    }
    assert!(
        !m.is_done(),
        "{what}: kernel halted during warm-up (cycle {})",
        m.cycle()
    );

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..MEASURE_CYCLES {
        m.step_cycle();
    }
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        looseloops_isa::predecode::build_count(),
        built_before + 1,
        "{what}: no predecode rebuilds while running"
    );

    assert!(
        !m.is_done(),
        "{what}: kernel halted during measurement (cycle {})",
        m.cycle()
    );
    assert!(
        m.stats().total_retired() > 0,
        "{what}: machine made no progress"
    );
    assert_eq!(
        n, 0,
        "{what}: step_cycle allocated {n} times over {MEASURE_CYCLES} steady-state cycles"
    );
}

#[test]
fn step_cycle_is_allocation_free_in_steady_state() {
    assert_steady_state_allocation_free(PipelineConfig::base(), "base machine");
    assert_steady_state_allocation_free(PipelineConfig::dra_for_rf(3), "DRA machine");
}
