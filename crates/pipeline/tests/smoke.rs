//! End-to-end smoke tests for the pipeline machine.

use looseloops_isa::{asm, Reg};
use looseloops_pipeline::{LoadSpecPolicy, Machine, PipelineConfig, RegisterScheme};

fn run_to_halt(cfg: PipelineConfig, src: &str) -> Machine {
    let prog = asm::assemble(src).unwrap();
    // Every smoke test runs with the per-cycle invariant auditor on.
    let cfg = PipelineConfig { audit: true, ..cfg };
    let mut m = Machine::new(cfg, vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 200_000).unwrap();
    assert!(
        m.is_done(),
        "program did not halt within budget: cycle={}",
        m.cycle()
    );
    m
}

const SUM_LOOP: &str = "
        addi r1, r31, 100
    top:
        add  r2, r2, r1
        subi r1, r1, 1
        bne  r1, top
        halt
";

#[test]
fn sum_loop_base() {
    let mut m = run_to_halt(PipelineConfig::base(), SUM_LOOP);
    assert_eq!(m.arch_reg(0, Reg::int(2)), 5050);
    let s = m.stats();
    assert_eq!(s.total_retired(), 302);
    assert!(s.ipc() > 0.5, "ipc={}", s.ipc());
}

#[test]
fn sum_loop_dra() {
    let mut m = run_to_halt(PipelineConfig::dra_for_rf(3), SUM_LOOP);
    assert_eq!(m.arch_reg(0, Reg::int(2)), 5050);
}

#[test]
fn loads_and_stores() {
    let src = "
        .data 0x1000, 1, 2, 3, 4, 5, 6, 7, 8
            addi r1, r31, 0x1000
            addi r2, r31, 8
        top:
            ldq  r3, 0(r1)
            add  r4, r4, r3
            addi r1, r1, 8
            subi r2, r2, 1
            bne  r2, top
            stq  r4, 0(r1)
            ldq  r5, 0(r1)
            halt
    ";
    let mut m = run_to_halt(PipelineConfig::base(), src);
    assert_eq!(m.arch_reg(0, Reg::int(4)), 36);
    assert_eq!(m.arch_reg(0, Reg::int(5)), 36);
    assert!(m.stats().loads >= 9);
}

#[test]
fn store_load_forwarding_same_addr() {
    let src = "
            addi r1, r31, 0x2000
            addi r2, r31, 42
            stq  r2, 0(r1)
            ldq  r3, 0(r1)
            add  r4, r3, r2
            halt
    ";
    let mut m = run_to_halt(PipelineConfig::base(), src);
    assert_eq!(m.arch_reg(0, Reg::int(4)), 84);
}

#[test]
fn call_return() {
    let src = "
            jsr r26, func
            addi r2, r1, 100
            halt
        func:
            addi r1, r31, 5
            ret r26
    ";
    let mut m = run_to_halt(PipelineConfig::base(), src);
    assert_eq!(m.arch_reg(0, Reg::int(2)), 105);
}

#[test]
fn all_load_policies_agree_on_results() {
    let src = "
        .data 0x3000, 10, 20, 30, 40
            addi r1, r31, 0x3000
            addi r2, r31, 4
        top:
            ldq  r3, 0(r1)
            add  r4, r4, r3
            addi r1, r1, 8
            subi r2, r2, 1
            bne  r2, top
            halt
    ";
    for policy in [
        LoadSpecPolicy::Stall,
        LoadSpecPolicy::ReissueTree,
        LoadSpecPolicy::ReissueShadow,
        LoadSpecPolicy::Refetch,
    ] {
        let cfg = PipelineConfig {
            load_policy: policy,
            ..PipelineConfig::base()
        };
        let mut m = run_to_halt(cfg, src);
        assert_eq!(m.arch_reg(0, Reg::int(4)), 100, "policy {policy:?}");
    }
}

#[test]
fn fp_math() {
    let src = "
        .data 0x100, 0x4004000000000000, 0x4010000000000000
            addi r1, r31, 0x100
            fldq f0, 0(r1)
            fldq f1, 8(r1)
            fmul f2, f0, f1
            fdiv f3, f2, f1
            fcmpeq r2, f3, f0
            halt
    ";
    let mut m = run_to_halt(PipelineConfig::base(), src);
    assert_eq!(m.arch_reg(0, Reg::int(2)), 1, "2.5 * 4.0 / 4.0 == 2.5");
}

#[test]
fn memory_barrier_retires() {
    let src = "
            addi r1, r31, 1
            mb
            addi r2, r1, 1
            halt
    ";
    let mut m = run_to_halt(PipelineConfig::base(), src);
    assert_eq!(m.arch_reg(0, Reg::int(2)), 2);
    assert_eq!(m.stats().mem_barriers, 1);
}

#[test]
fn smt_two_threads() {
    let p0 = asm::assemble(SUM_LOOP).unwrap();
    let p1 = asm::assemble(
        "
            addi r1, r31, 50
        top:
            add  r2, r2, r1
            subi r1, r1, 1
            bne  r1, top
            halt
    ",
    )
    .unwrap();
    let mut m = Machine::new(PipelineConfig::base().smt(2), vec![p0, p1]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 400_000).unwrap();
    assert!(m.is_done());
    assert_eq!(m.arch_reg(0, Reg::int(2)), 5050);
    assert_eq!(m.arch_reg(1, Reg::int(2)), 1275);
}

#[test]
fn dra_is_used_and_reports_sources() {
    let mut cfg = PipelineConfig::dra_for_rf(3);
    cfg.scheme = RegisterScheme::dra();
    let m = run_to_halt(cfg, SUM_LOOP);
    let total: u64 = m.stats().operand_sources.iter().sum();
    assert!(total > 0, "operand sources recorded");
    // In the base machine the RegFile bucket is used; under DRA it must not be.
    assert_eq!(
        m.stats().operand_sources[3],
        0,
        "DRA never reads RF on the IQ-EX path"
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let prog = asm::assemble(SUM_LOOP).unwrap();
        let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
        m.run(u64::MAX, 200_000).unwrap();
        (
            m.cycle(),
            m.stats().total_retired(),
            m.stats().branch_mispredicts,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn no_resource_leaks_after_drain() {
    // Branch-heavy program with plenty of squashes: after the halt retires
    // and the pipe drains, every speculative resource must be returned.
    let src = "
            addi r1, r31, 500
            addi r8, r31, 12345
        top:
            slli r3, r8, 13
            xor  r8, r8, r3
            srli r3, r8, 7
            xor  r8, r8, r3
            andi r4, r8, 3
            beq  r4, skip
            addi r16, r16, 1
        skip:
            subi r1, r1, 1
            bne  r1, top
            halt
    ";
    for cfg in [PipelineConfig::base(), PipelineConfig::dra_for_rf(5)] {
        let threads = cfg.threads;
        let phys = cfg.phys_regs;
        let prog = asm::assemble(src).unwrap();
        let mut m = Machine::new(cfg, vec![prog]).unwrap();
        m.enable_verification();
        m.run(u64::MAX, 2_000_000).unwrap();
        assert!(m.is_done());
        assert_eq!(m.in_flight(), 0, "slab must be empty after drain");
        assert_eq!(
            m.free_phys_regs(),
            phys - 64 * threads,
            "physical registers leaked"
        );
    }
}

#[test]
fn tlb_trap_policy_refetches_and_stays_correct() {
    use looseloops_isa::Reg;
    // Walk 128 pages (8 KiB apart) with an 8-entry worth of reuse: the
    // default Trap policy must squash+refetch yet retire the exact
    // functional stream.
    let src = "
            addi r1, r31, 64
        top:
            slli r2, r1, 13
            ldq  r3, 0(r2)
            add  r4, r4, r3
            subi r1, r1, 1
            bne  r1, top
            halt
    ";
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done());
    assert!(m.stats().tlb_traps > 0, "cold pages must trap");
    assert_eq!(m.arch_reg(0, Reg::int(4)), 0, "untouched memory reads zero");
}

#[test]
fn icount_shares_fetch_between_threads() {
    // One branch-heavy thread (wastes fetch) + one clean thread: ICOUNT
    // must keep the clean thread progressing at a healthy rate.
    let noisy = asm::assemble(
        "
            addi r8, r31, 77
        top:
            slli r3, r8, 13
            xor  r8, r8, r3
            srli r3, r8, 7
            xor  r8, r8, r3
            andi r4, r8, 1
            beq  r4, skip
            addi r16, r16, 1
        skip:
            br   top
    ",
    )
    .unwrap();
    let clean = asm::assemble(
        "
        top:
            addi r1, r1, 1
            addi r2, r2, 1
            addi r3, r3, 1
            addi r4, r4, 1
            br   top
    ",
    )
    .unwrap();
    let mut m = Machine::new(PipelineConfig::base().smt(2), vec![noisy, clean]).unwrap();
    m.run(60_000, 2_000_000).unwrap();
    let s = m.stats();
    assert!(
        s.retired[1] > s.retired[0],
        "the clean thread should outpace the mispredicting one: {:?}",
        s.retired
    );
    assert!(
        s.retired[0] > 2_000,
        "the noisy thread must not starve: {:?}",
        s.retired
    );
}

#[test]
fn kanata_trace_accounts_for_every_instruction() {
    let src = "
            addi r1, r31, 30
        top:
            slli r3, r1, 3
            andi r4, r3, 8
            beq  r4, skip
            addi r16, r16, 1
        skip:
            subi r1, r1, 1
            bne  r1, top
            halt
    ";
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_trace();
    m.enable_verification();
    m.run(u64::MAX, 200_000).unwrap();
    assert!(m.is_done());
    let log = m.take_trace();
    assert!(log.starts_with("Kanata\t0004\n"));
    let fetched = log.lines().filter(|l| l.starts_with("I\t")).count();
    let ended = log.lines().filter(|l| l.starts_with("R\t")).count();
    assert_eq!(
        fetched, ended,
        "every traced instruction must retire or flush"
    );
    let retired = log
        .lines()
        .filter(|l| l.starts_with("R\t") && l.ends_with("\t0"))
        .count();
    assert_eq!(retired as u64, m.stats().total_retired());
    // Stage lines exist for the whole lifecycle.
    for stage in ["\tF", "\tDc", "\tQ", "\tIs", "\tX", "\tCm"] {
        assert!(log.contains(stage), "missing stage {stage}");
    }
}

#[test]
fn four_thread_smt_is_supported() {
    let mk = |n: i32| {
        asm::assemble(&format!(
            "
                addi r1, r31, {n}
            top:
                add  r2, r2, r1
                subi r1, r1, 1
                bne  r1, top
                halt
        "
        ))
        .unwrap()
    };
    let cfg = PipelineConfig::base().smt(4);
    let mut m = Machine::new(cfg, vec![mk(40), mk(50), mk(60), mk(70)]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 400_000).unwrap();
    assert!(m.is_done());
    for (t, n) in [(0u64, 40u64), (1, 50), (2, 60), (3, 70)] {
        assert_eq!(
            m.arch_reg(t as usize, Reg::int(2)),
            n * (n + 1) / 2,
            "thread {t}"
        );
    }
}

#[test]
fn partial_overlap_store_load_is_architecturally_correct() {
    // An 8-byte store at 0x1004 overlaps but does not contain an 8-byte
    // load at 0x1000: the load cannot forward and must wait out the store
    // (the conservative replay path). The oracle catches any value error.
    let src = "
            addi r1, r31, 0x1000
            addi r2, r31, 0x1004
            addi r5, r31, 300
        top:
            addi r3, r3, 1
            stq  r3, 0(r2)       ; store [0x1004, 0x100c)
            ldq  r4, 0(r1)       ; load  [0x1000, 0x1008) — partial overlap
            add  r6, r6, r4
            subi r5, r5, 1
            bne  r5, top
            halt
    ";
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification(); // the whole point: values must stay exact
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done());
}

#[test]
fn taken_branch_at_fetch_block_boundary() {
    // Pad so the loop branch lands on the last slot of an 8-instruction
    // fetch block; the redirect must not skip or duplicate instructions.
    let src = "
            addi r1, r31, 200
            nop
            nop
            nop
            nop
            nop
            nop
        top:
            add  r2, r2, r1
            subi r1, r1, 1
            nop
            nop
            nop
            nop
            nop
            bne  r1, top          ; pc 14: last slot of block [8..16)
            halt
    ";
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done());
    assert_eq!(m.arch_reg(0, Reg::int(2)), 20100);
}

#[test]
fn deep_recursion_exercises_the_ras() {
    // 12-deep recursive descent: every return must predict through the
    // 16-entry RAS; the oracle guarantees correctness, the stats show the
    // returns did not all mispredict.
    let src = "
            addi r1, r31, 12       ; depth
            jsr  r26, down
            halt
        down:
            subi r1, r1, 1
            beq  r1, leaf
            stq  r26, 0(r2)        ; save link
            addi r2, r2, 8
            jsr  r26, down
            subi r2, r2, 8
            ldq  r26, 0(r2)        ; restore link
        leaf:
            addi r3, r3, 1
            ret  r26
    ";
    let prog = asm::assemble(src).unwrap();
    let mut m = Machine::new(PipelineConfig::base(), vec![prog]).unwrap();
    m.enable_verification();
    m.run(u64::MAX, 2_000_000).unwrap();
    assert!(m.is_done());
    assert_eq!(m.arch_reg(0, Reg::int(3)), 12);
}
