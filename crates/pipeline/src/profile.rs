//! Optional wall-clock stage profiling for the detailed engine.
//!
//! Enabled process-wide (`enable()`, surfaced as `--profile-stages` in the
//! CLI) *before* machines are constructed: each [`crate::Machine`] then
//! allocates a local [`StageReport`] and times every pipeline stage of
//! every stepped cycle, merging into the process-global totals when its
//! stats are finalized. Wall-clock numbers never enter `SimStats` — they
//! are a measurement of the simulator, not of the simulated machine — so
//! figure outputs are byte-identical with profiling on or off.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Stage labels, in `step_cycle` order (reverse pipeline order), plus the
/// trailing per-cycle bookkeeping (IQ release/sampling, counters).
pub const STAGE_NAMES: [&str; 11] = [
    "retire",
    "attribute",
    "complete",
    "writeback",
    "execute",
    "wakeup",
    "issue",
    "insert",
    "rename",
    "fetch",
    "bookkeep",
];

/// Number of timed stages per cycle.
pub const STAGE_COUNT: usize = STAGE_NAMES.len();

/// Accumulated per-stage wall-clock time plus cycle accounting.
#[derive(Debug, Default, Clone)]
pub struct StageReport {
    /// Nanoseconds spent in each stage, indexed like [`STAGE_NAMES`].
    pub stage_ns: [u64; STAGE_COUNT],
    /// Cycles actually stepped through the stage functions.
    pub stepped_cycles: u64,
    /// Cycles elided by the quiescence skip.
    pub skipped_cycles: u64,
    /// Number of quiescence jumps taken.
    pub skips: u64,
}

impl StageReport {
    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }

    fn add(&mut self, other: &StageReport) {
        for (a, b) in self.stage_ns.iter_mut().zip(&other.stage_ns) {
            *a += b;
        }
        self.stepped_cycles += other.stepped_cycles;
        self.skipped_cycles += other.skipped_cycles;
        self.skips += other.skips;
    }

    /// One-line machine-readable breakdown for scripts tooling
    /// (`scripts/diff_stage_profile.py` diffs these across commits).
    /// Stages stay in [`STAGE_NAMES`] order so files diff cleanly.
    pub fn render_json(&self, label: &str) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "{{\"label\":\"{}\",\"stepped_cycles\":{},\"skipped_cycles\":{},\"skips\":{},\"total_ns\":{},\"stage_ns\":{{",
            label, self.stepped_cycles, self.skipped_cycles, self.skips, self.total_ns()
        );
        for (i, ns) in self.stage_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", STAGE_NAMES[i], ns);
        }
        out.push_str("}}");
        out
    }

    /// One-line human-readable breakdown: stages sorted by cost, with
    /// percentage of the total, plus the stepped/skipped cycle split.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let total = self.total_ns().max(1);
        let mut stages: Vec<(usize, u64)> = self.stage_ns.iter().copied().enumerate().collect();
        stages.sort_by_key(|&(i, ns)| (std::cmp::Reverse(ns), i));
        let mut out = format!(
            "stepped {} cycles, skipped {} ({} jumps), {:.1} ms total | ",
            self.stepped_cycles,
            self.skipped_cycles,
            self.skips,
            self.total_ns() as f64 / 1e6,
        );
        for (rank, (i, ns)) in stages.iter().enumerate() {
            if rank > 0 {
                out.push(' ');
            }
            let _ = write!(
                out,
                "{}={:.1}%",
                STAGE_NAMES[*i],
                *ns as f64 * 100.0 / total as f64
            );
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTALS: Mutex<Option<StageReport>> = Mutex::new(None);

/// Turn stage profiling on for machines constructed from now on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Is stage profiling on?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Merge a machine-local report into the process-global totals.
pub(crate) fn merge(local: &StageReport) {
    let mut guard = TOTALS.lock().unwrap_or_else(|p| p.into_inner());
    guard.get_or_insert_with(StageReport::default).add(local);
}

/// Drain the process-global totals accumulated since the last call
/// (`None` when nothing was recorded — e.g. profiling is off).
pub fn take_report() -> Option<StageReport> {
    TOTALS.lock().unwrap_or_else(|p| p.into_inner()).take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_merge_and_render() {
        let mut a = StageReport::default();
        a.stage_ns[0] = 300;
        a.stage_ns[6] = 700;
        a.stepped_cycles = 10;
        let mut b = StageReport::default();
        b.stage_ns[6] = 300;
        b.skipped_cycles = 90;
        b.skips = 3;
        b.add(&a);
        assert_eq!(b.total_ns(), 1300);
        assert_eq!(b.stepped_cycles, 10);
        assert_eq!(b.skipped_cycles, 90);
        let line = b.render();
        // Issue dominates, so it leads the sorted breakdown.
        assert!(line.contains("skipped 90 (3 jumps)"), "{line}");
        assert!(line.contains("issue=76.9%"), "{line}");
    }

    #[test]
    fn json_rendering_is_complete_and_ordered() {
        let mut r = StageReport::default();
        r.stage_ns[0] = 300;
        r.stage_ns[6] = 700;
        r.stepped_cycles = 10;
        r.skipped_cycles = 90;
        r.skips = 3;
        let json = r.render_json("fig4");
        assert!(
            json.starts_with("{\"label\":\"fig4\",\"stepped_cycles\":10,"),
            "{json}"
        );
        assert!(json.contains("\"total_ns\":1000"), "{json}");
        assert!(json.contains("\"retire\":300"), "{json}");
        assert!(json.contains("\"issue\":700"), "{json}");
        // Every stage appears, in STAGE_NAMES order.
        let mut at = 0;
        for name in STAGE_NAMES {
            let pos = json[at..].find(&format!("\"{name}\":")).expect(name);
            at += pos;
        }
    }
}
