//! Deterministic fault injection.
//!
//! The paper's argument rests on the pipeline's loose loops *recovering
//! correctly*: branch mispredicts, load mis-speculation, and DRA operand
//! misses all squash or replay in-flight state. The fault injector makes
//! those recovery paths testable on demand by forcing mis-speculation
//! storms at configurable rates from a seeded schedule — the same seed
//! always fires the same faults on the same cycles, so a failing storm test
//! reproduces exactly.
//!
//! Faults perturb **timing only**: a flipped branch prediction is just a
//! wrong prediction (resolution repairs it), a load spike only delays the
//! value, and a forced operand miss takes the architected register-file
//! recovery path. Architectural results must remain equal to the ISA
//! interpreter's under any storm — that is precisely what the recovery
//! tests assert.

use looseloops_rng::Rng;

/// A deterministic fault-injection schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injection schedule (same seed → same faults).
    pub seed: u64,
    /// Probability of flipping each conditional-branch direction
    /// prediction at fetch (a forced mispredict storm).
    pub branch_flip_rate: f64,
    /// Probability of spiking each load's latency.
    pub load_spike_rate: f64,
    /// Extra cycles a spiked load takes to complete.
    pub load_spike_cycles: u64,
    /// DRA only: probability of forcing an operand miss on each
    /// forward/CRC operand lookup (the operand-resolution-loop storm).
    pub operand_miss_rate: f64,
    /// Restrict injection to `[start, end)` cycles; `None` = whole run.
    pub window: Option<(u64, u64)>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 1,
            branch_flip_rate: 0.0,
            load_spike_rate: 0.0,
            load_spike_cycles: 200,
            operand_miss_rate: 0.0,
            window: None,
        }
    }
}

impl FaultPlan {
    /// A branch-mispredict storm: flip `rate` of all direction predictions.
    pub fn branch_storm(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            branch_flip_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// A load-latency-spike storm: delay `rate` of loads by `cycles`.
    pub fn load_storm(seed: u64, rate: f64, cycles: u64) -> FaultPlan {
        FaultPlan {
            seed,
            load_spike_rate: rate,
            load_spike_cycles: cycles,
            ..FaultPlan::default()
        }
    }

    /// A DRA operand-miss storm: force `rate` of operand lookups to miss.
    pub fn operand_storm(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            operand_miss_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// The same plan restricted to cycles `[start, end)`.
    pub fn in_window(mut self, start: u64, end: u64) -> FaultPlan {
        self.window = Some((start, end));
        self
    }

    /// Validate the rates (delegated from `PipelineConfig::validate`).
    pub(crate) fn validate(&self) -> Result<(), crate::error::ConfigError> {
        for (field, value) in [
            ("branch_flip_rate", self.branch_flip_rate),
            ("load_spike_rate", self.load_spike_rate),
            ("operand_miss_rate", self.operand_miss_rate),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(crate::error::ConfigError::FaultRate { field, value });
            }
        }
        Ok(())
    }
}

/// Which fault classes the injector fired (indexes into
/// [`FaultInjector::by_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flipped conditional-branch direction prediction.
    BranchFlip = 0,
    /// Load latency spike.
    LoadSpike = 1,
    /// Forced DRA operand miss.
    OperandMiss = 2,
}

/// Post-run accounting of a fault schedule: how many injection
/// opportunities each class saw while armed, and how many actually fired.
/// The storm tests assert on this so an injection path that silently stops
/// calling the injector (scheduled stays 0) or drops hits on the floor
/// (fired diverges from the machine's fault stats) cannot pass unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSummary {
    /// Injection opportunities per [`FaultKind`] index while the class was
    /// armed (rate > 0), including opportunities outside the plan's window.
    pub scheduled: [u64; 3],
    /// Faults per [`FaultKind`] index that actually fired.
    pub fired: [u64; 3],
}

impl FaultSummary {
    /// Total opportunities across all classes.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled.iter().sum()
    }

    /// Total fired faults across all classes.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

impl std::fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "branch-flip {}/{}, load-spike {}/{}, operand-miss {}/{} (fired/scheduled)",
            self.fired[0],
            self.scheduled[0],
            self.fired[1],
            self.scheduled[1],
            self.fired[2],
            self.scheduled[2],
        )
    }
}

/// Runtime state of a [`FaultPlan`]: the schedule RNG plus counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    injected: u64,
    by_kind: [u64; 3],
    scheduled: [u64; 3],
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            rng: Rng::seed_from_u64(plan.seed),
            plan,
            injected: 0,
            by_kind: [0; 3],
            scheduled: [0; 3],
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Faults fired so far, by [`FaultKind`] index.
    pub fn by_kind(&self) -> [u64; 3] {
        self.by_kind
    }

    /// Scheduled-vs-fired accounting so far (see [`FaultSummary`]).
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            scheduled: self.scheduled,
            fired: self.by_kind,
        }
    }

    fn active(&self, now: u64) -> bool {
        match self.plan.window {
            Some((start, end)) => (start..end).contains(&now),
            None => true,
        }
    }

    fn fire(&mut self, now: u64, rate: f64, kind: FaultKind) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // Every call with the class armed is a scheduled opportunity, even
        // outside the window — `summary()` must expose gated-off draws, not
        // hide them.
        self.scheduled[kind as usize] += 1;
        if !self.active(now) {
            return false;
        }
        // The RNG is only consumed inside the window, so a windowed plan
        // fires the same schedule regardless of how long the machine runs
        // before `start`.
        let hit = self.rng.gen_bool(rate);
        if hit {
            self.injected += 1;
            self.by_kind[kind as usize] += 1;
        }
        hit
    }

    /// Should this conditional-branch prediction be flipped?
    pub fn flip_branch(&mut self, now: u64) -> bool {
        self.fire(now, self.plan.branch_flip_rate, FaultKind::BranchFlip)
    }

    /// Extra completion latency to inject into this load, if any.
    pub fn load_spike(&mut self, now: u64) -> Option<u64> {
        self.fire(now, self.plan.load_spike_rate, FaultKind::LoadSpike)
            .then_some(self.plan.load_spike_cycles)
    }

    /// Should this DRA forward/CRC operand lookup be forced to miss?
    pub fn drop_operand(&mut self, now: u64) -> bool {
        self.fire(now, self.plan.operand_miss_rate, FaultKind::OperandMiss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::branch_storm(7, 0.5);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        let sa: Vec<bool> = (0..200).map(|c| a.flip_branch(c)).collect();
        let sb: Vec<bool> = (0..200).map(|c| b.flip_branch(c)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x) && sa.iter().any(|&x| !x));
        assert_eq!(a.injected(), sa.iter().filter(|&&x| x).count() as u64);
    }

    #[test]
    fn rates_are_respected_at_extremes() {
        let mut never = FaultInjector::new(FaultPlan::default());
        let mut always = FaultInjector::new(FaultPlan::operand_storm(3, 1.0));
        for c in 0..100 {
            assert!(!never.flip_branch(c));
            assert!(never.load_spike(c).is_none());
            assert!(!never.drop_operand(c));
            assert!(always.drop_operand(c));
        }
        assert_eq!(never.injected(), 0);
        assert_eq!(always.by_kind()[FaultKind::OperandMiss as usize], 100);
    }

    #[test]
    fn window_gates_injection() {
        let plan = FaultPlan::load_storm(5, 1.0, 99).in_window(10, 20);
        let mut inj = FaultInjector::new(plan);
        for c in 0..30 {
            let spike = inj.load_spike(c);
            assert_eq!(spike.is_some(), (10..20).contains(&c), "cycle {c}");
            if let Some(cycles) = spike {
                assert_eq!(cycles, 99);
            }
        }
        assert_eq!(inj.by_kind()[FaultKind::LoadSpike as usize], 10);
    }

    #[test]
    fn summary_counts_scheduled_and_fired() {
        let mut inj = FaultInjector::new(FaultPlan::branch_storm(7, 0.5).in_window(10, 20));
        for c in 0..30 {
            let _ = inj.flip_branch(c);
            let _ = inj.load_spike(c); // unarmed: never scheduled
        }
        let s = inj.summary();
        assert_eq!(
            s.scheduled[FaultKind::BranchFlip as usize],
            30,
            "every armed opportunity is scheduled, window or not"
        );
        assert_eq!(s.scheduled[FaultKind::LoadSpike as usize], 0);
        assert_eq!(s.fired, inj.by_kind());
        assert!(s.total_fired() <= 10, "only in-window draws can fire");
        assert!(s.total_fired() >= 1, "a 50% storm fires within 10 draws");
        assert_eq!(
            s.to_string(),
            format!(
                "branch-flip {}/30, load-spike 0/0, operand-miss 0/0 (fired/scheduled)",
                s.fired[0]
            )
        );
    }

    #[test]
    fn validate_rejects_bad_rates() {
        assert!(FaultPlan::branch_storm(1, 1.5).validate().is_err());
        assert!(FaultPlan::branch_storm(1, -0.1).validate().is_err());
        assert!(FaultPlan::branch_storm(1, f64::NAN).validate().is_err());
        assert!(FaultPlan::branch_storm(1, 1.0).validate().is_ok());
    }
}
