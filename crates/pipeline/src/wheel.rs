//! Fixed-size timing wheel for cycle-indexed event queues.
//!
//! The cycle engine schedules three kinds of future work (begin-execute,
//! complete, delayed wake-up corrections). All delays are bounded by
//! configuration latencies, so a calendar-queue ring of pre-sized buckets
//! indexed by `cycle % horizon` serves nearly every event from memory it
//! already owns; the rare event past the horizon (a TLB walk stacked on a
//! memory miss, a fault-injected latency spike) parks in a small overflow
//! heap until its cycle comes due. After warm-up, scheduling and draining
//! allocate nothing: bucket `Vec`s and the drain buffer keep their
//! capacity, and the heap only grows while a new high-water mark of
//! overflowed events is in flight.
//!
//! # Determinism contract
//!
//! The wheel replaces `BTreeMap<u64, Vec<T>>` queues drained with
//! `pop_first`, which yields events grouped by ascending cycle and, within
//! a cycle, in insertion order. [`TimingWheel::drain_due`] reproduces that
//! order exactly: every event carries its requested cycle and a wheel-wide
//! insertion sequence, and the drained batch is sorted by `(cycle, seq)`.
//! The requested cycle is preserved even when an event is scheduled for a
//! cycle that has already been drained (the engine schedules completions
//! "for this cycle" from later pipeline stages); such events are slotted
//! into the next drainable bucket but still sort — and stamp — by their
//! requested cycle, exactly as a `BTreeMap` key would.

use std::collections::BinaryHeap;

/// One scheduled event: the cycle it was requested for, the wheel-wide
/// insertion sequence used for deterministic tie-breaking, and the
/// caller's payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Due<T> {
    pub cycle: u64,
    pub seq: u64,
    pub payload: T,
}

/// Overflow-heap entry ordered by `(cycle, seq)` only (min-heap via
/// `Reverse` at the use site). `seq` is unique per wheel, so the order is
/// total without comparing payloads.
#[derive(Debug)]
struct Parked<T> {
    cycle: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Parked<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.cycle, self.seq) == (other.cycle, other.seq)
    }
}
impl<T> Eq for Parked<T> {}
impl<T> PartialOrd for Parked<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Parked<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so that `BinaryHeap` (a max-heap) pops the smallest
        // `(cycle, seq)` first.
        (other.cycle, other.seq).cmp(&(self.cycle, self.seq))
    }
}

/// Calendar-queue event wheel: a ring of `horizon` buckets plus an
/// overflow heap for events at least `horizon` cycles out.
#[derive(Debug)]
pub(crate) struct TimingWheel<T> {
    /// `buckets[c % horizon]` holds events drainable at cycle `c` for the
    /// current wheel revolution.
    buckets: Vec<Vec<Due<T>>>,
    /// Events whose slot cycle was `>= cursor + horizon` when scheduled.
    overflow: BinaryHeap<Parked<T>>,
    /// First cycle not yet drained. Buckets cover
    /// `cursor .. cursor + horizon`.
    cursor: u64,
    /// Wheel-wide insertion sequence (the `BTreeMap + Vec::push` order).
    next_seq: u64,
    /// Live event count across buckets and overflow.
    len: usize,
    /// Cached [`TimingWheel::next_due`] value. Exact while `due_dirty` is
    /// false; a drain that removed events invalidates it (the quiescence
    /// check calls `next_due` every cycle, so keeping this O(1) matters).
    /// `Cell` because `next_due` refreshes the cache behind `&self`.
    cached_due: std::cell::Cell<Option<u64>>,
    /// When set, `cached_due` is stale and the next `next_due` rescans.
    due_dirty: std::cell::Cell<bool>,
}

impl<T> TimingWheel<T> {
    /// `horizon` buckets; events scheduled less than `horizon` cycles
    /// ahead of the drain cursor go straight to their bucket.
    pub fn new(horizon: u64) -> TimingWheel<T> {
        assert!(horizon >= 1, "timing wheel needs at least one bucket");
        let mut buckets = Vec::new();
        buckets.resize_with(horizon as usize, Vec::new);
        TimingWheel {
            buckets,
            overflow: BinaryHeap::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
            cached_due: std::cell::Cell::new(None),
            due_dirty: std::cell::Cell::new(false),
        }
    }

    fn horizon(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Schedule `payload` for `cycle`. A cycle at or past
    /// `cursor + horizon` parks in the overflow heap; a cycle already
    /// behind the cursor lands in the next drainable bucket while keeping
    /// its requested cycle for ordering and stamping.
    pub fn schedule(&mut self, cycle: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let slot_cycle = cycle.max(self.cursor);
        // Both bucketed and overflow events drain exactly at `slot_cycle`
        // (overflow satisfies `cycle >= cursor`, and the drain cursor
        // visits every cycle while events are live), so the cache can be
        // maintained without a rescan.
        if !self.due_dirty.get() {
            let d = self
                .cached_due
                .get()
                .map_or(slot_cycle, |c| c.min(slot_cycle));
            self.cached_due.set(Some(d));
        }
        if slot_cycle >= self.cursor + self.horizon() {
            self.overflow.push(Parked {
                cycle,
                seq,
                payload,
            });
        } else {
            let idx = (slot_cycle % self.horizon()) as usize;
            self.buckets[idx].push(Due {
                cycle,
                seq,
                payload,
            });
        }
    }

    /// Drain every event due at or before `now` into `out` (cleared
    /// first), sorted by `(cycle, seq)` — the exact order a
    /// `BTreeMap<u64, Vec<T>>` drained with `pop_first` would yield.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Due<T>>) {
        out.clear();
        if self.len == 0 {
            // Idle fast-forward: with no live events every bucket is empty
            // and the overflow heap has nothing to refill them with, so the
            // cursor can jump straight past `now` without visiting buckets.
            // This keeps quiescence-skipped windows O(1) per wheel instead
            // of O(skipped cycles).
            self.cursor = self.cursor.max(now + 1);
            self.cached_due.set(None);
            self.due_dirty.set(false);
            return;
        }
        while self.cursor <= now {
            let idx = (self.cursor % self.horizon()) as usize;
            out.append(&mut self.buckets[idx]);
            while self.overflow.peek().is_some_and(|p| p.cycle <= self.cursor) {
                // invariant: peek above proved the heap non-empty.
                let p = self.overflow.pop().expect("non-empty");
                out.push(Due {
                    cycle: p.cycle,
                    seq: p.seq,
                    payload: p.payload,
                });
            }
            self.cursor += 1;
        }
        self.len -= out.len();
        if !out.is_empty() {
            // The earliest event may just have drained; recompute lazily.
            self.due_dirty.set(true);
        }
        // Buckets hold events in schedule (seq) order, so a batch is
        // usually sorted already; check before paying for the sort.
        if !out.is_sorted_by_key(|e| (e.cycle, e.seq)) {
            out.sort_unstable_by_key(|e| (e.cycle, e.seq));
        }
    }

    /// Live events (buckets + overflow).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// The earliest cycle at which [`TimingWheel::drain_due`] would yield
    /// an event, or `None` when the wheel is empty. This is the *drain*
    /// cycle: an event scheduled for an already-drained cycle reports the
    /// bucket slot it actually parked in, which is the first cycle a drain
    /// can reach it. The quiescence-skip logic uses this to jump the clock
    /// to the next pending event.
    pub fn next_due(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if !self.due_dirty.get() {
            return self.cached_due.get();
        }
        let due = self.scan_next_due();
        self.cached_due.set(due);
        self.due_dirty.set(false);
        due
    }

    /// Bucket/overflow scan behind [`TimingWheel::next_due`]'s cache.
    /// Walks outward from the cursor, so the first non-empty bucket is the
    /// answer and the scan exits after `distance-to-next-event` probes
    /// instead of visiting the whole ring.
    fn scan_next_due(&self) -> Option<u64> {
        let h = self.horizon();
        // Overflow events always satisfy `cycle > cursor` (past-due events
        // are slotted into buckets, and drains pop everything `<= cursor`),
        // and they drain the cycle the cursor reaches them.
        let over = self.overflow.peek().map(|p| p.cycle);
        // Every bucketed event's slot cycle is in [cursor, cursor + h), so
        // bucket `(cursor + d) % h` drains exactly at `cursor + d`.
        for d in 0..h {
            let due = self.cursor + d;
            if over.is_some_and(|o| o <= due) {
                return over;
            }
            if !self.buckets[(due % h) as usize].is_empty() {
                return Some(due);
            }
        }
        over
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_rng::Rng;
    use std::collections::BTreeMap;

    /// Drain the reference model the way the machine drained its
    /// `BTreeMap` queues: pop ascending keys `<= now`, preserving push
    /// order within a key.
    fn drain_btree(model: &mut BTreeMap<u64, Vec<u32>>, now: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((&cyc, _)) = model.first_key_value() {
            if cyc > now {
                break;
            }
            let (cyc, list) = model.pop_first().expect("non-empty");
            out.extend(list.into_iter().map(|p| (cyc, p)));
        }
        out
    }

    fn drain_wheel(wheel: &mut TimingWheel<u32>, now: u64) -> Vec<(u64, u32)> {
        let mut buf = Vec::new();
        wheel.drain_due(now, &mut buf);
        buf.into_iter().map(|e| (e.cycle, e.payload)).collect()
    }

    #[test]
    fn matches_btreemap_order_under_random_schedules() {
        let mut rng = Rng::seed_from_u64(0x5eed_4e11);
        for horizon in [1u64, 2, 7, 64] {
            let mut wheel = TimingWheel::new(horizon);
            let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
            let mut payload = 0u32;
            // The engine drains once per cycle, strictly advancing.
            for now in 0..2_000u64 {
                // Mirror one engine iteration: drain first, then schedule.
                assert_eq!(drain_wheel(&mut wheel, now), drain_btree(&mut model, now));
                assert_eq!(
                    wheel.len(),
                    model.values().map(Vec::len).sum::<usize>(),
                    "len out of sync at cycle {now}"
                );
                // A burst of schedules at mixed horizons. `ahead == 0`
                // exercises the engine's "for this cycle" completions:
                // `now` was drained above, so the event lands behind the
                // wheel cursor but must still sort (and stamp) by its
                // requested cycle, like a BTreeMap key.
                for _ in 0..(rng.next_u64() % 4) {
                    let cycle = now + rng.next_u64() % (3 * horizon + 40);
                    wheel.schedule(cycle, payload);
                    model.entry(cycle).or_default().push(payload);
                    payload += 1;
                }
            }
        }
    }

    #[test]
    fn horizon_boundary_events_round_trip() {
        let h = 16;
        let mut wheel = TimingWheel::new(h);
        // Exactly the last in-horizon bucket vs the first overflow cycle.
        wheel.schedule(h - 1, 1);
        wheel.schedule(h, 2);
        assert_eq!(wheel.len(), 2);
        assert_eq!(drain_wheel(&mut wheel, h - 1), vec![(h - 1, 1)]);
        assert_eq!(drain_wheel(&mut wheel, h), vec![(h, 2)]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn overflow_refills_across_revolutions() {
        let h = 8;
        let mut wheel = TimingWheel::new(h);
        // Far-future events spanning several wheel revolutions, scheduled
        // out of cycle order.
        for &(cycle, payload) in &[(70u64, 7u32), (23, 2), (51, 5), (23, 3), (9, 1)] {
            wheel.schedule(cycle, payload);
        }
        let mut got = Vec::new();
        for now in 0..=80 {
            got.extend(drain_wheel(&mut wheel, now));
        }
        assert_eq!(got, vec![(9, 1), (23, 2), (23, 3), (51, 5), (70, 7)]);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn past_due_schedule_sorts_by_requested_cycle() {
        let mut wheel = TimingWheel::new(8);
        assert!(drain_wheel(&mut wheel, 10).is_empty());
        // Scheduled "for cycle 10" after cycle 10 drained, alongside a
        // later-seq event actually due at 11: the requested cycle must
        // dominate the tie-break, as a BTreeMap key would.
        wheel.schedule(11, 20);
        wheel.schedule(10, 10);
        assert_eq!(drain_wheel(&mut wheel, 11), vec![(10, 10), (11, 20)]);
    }

    #[test]
    fn next_due_tracks_the_earliest_drainable_event() {
        let mut wheel = TimingWheel::new(8);
        assert_eq!(wheel.next_due(), None);
        wheel.schedule(5, 1);
        wheel.schedule(3, 2);
        wheel.schedule(100, 3); // overflow
        assert_eq!(wheel.next_due(), Some(3));
        assert!(drain_wheel(&mut wheel, 4).ends_with(&[(3, 2)]));
        assert_eq!(wheel.next_due(), Some(5));
        assert_eq!(drain_wheel(&mut wheel, 5), vec![(5, 1)]);
        assert_eq!(wheel.next_due(), Some(100), "overflow event is visible");
        // A past-due schedule parks in the next drainable bucket: that slot,
        // not the requested cycle, is when a drain can reach it.
        wheel.schedule(2, 4);
        assert_eq!(wheel.next_due(), Some(6));
        assert_eq!(drain_wheel(&mut wheel, 6), vec![(2, 4)]);
        assert_eq!(drain_wheel(&mut wheel, 100), vec![(100, 3)]);
        assert_eq!(wheel.next_due(), None);
    }

    #[test]
    fn next_due_agrees_with_drain_under_random_schedules() {
        let mut rng = Rng::seed_from_u64(0xd0e5_1234);
        let mut wheel = TimingWheel::new(16);
        let mut payload = 0u32;
        let mut now = 0u64;
        while now < 3_000 {
            for _ in 0..(rng.next_u64() % 3) {
                wheel.schedule(now + rng.next_u64() % 60, payload);
                payload += 1;
            }
            match wheel.next_due() {
                None => {
                    assert_eq!(wheel.len(), 0);
                    now += 1;
                }
                Some(due) => {
                    assert!(due >= now, "next_due never points behind the clock");
                    if due > 0 {
                        assert!(
                            drain_wheel(&mut wheel, due - 1).is_empty(),
                            "nothing drains before next_due"
                        );
                    }
                    assert!(
                        !drain_wheel(&mut wheel, due).is_empty(),
                        "something drains exactly at next_due"
                    );
                    now = due + 1;
                }
            }
        }
    }

    #[test]
    fn empty_wheel_fast_forwards_the_cursor() {
        let mut wheel = TimingWheel::new(8);
        // Jump far ahead while empty; scheduling afterwards must still
        // work for both near and past-due cycles.
        assert!(drain_wheel(&mut wheel, 1_000_000).is_empty());
        wheel.schedule(1_000_003, 1);
        wheel.schedule(999_999, 2); // behind the cursor: next drainable slot
        assert_eq!(
            drain_wheel(&mut wheel, 1_000_003),
            vec![(999_999, 2), (1_000_003, 1)]
        );
    }

    #[test]
    fn survives_watchdog_sized_idle_windows() {
        // The forward-progress watchdog tolerates 50k cycles with no
        // retirement; the wheel must deliver an event parked that far out
        // (and keep empty revolutions cheap and allocation-stable).
        let h = 256;
        let mut wheel = TimingWheel::new(h);
        wheel.schedule(50_000, 1);
        wheel.schedule(50_000 + h, 2);
        let mut got = Vec::new();
        for now in 0..=(50_000 + h) {
            got.extend(drain_wheel(&mut wheel, now));
        }
        assert_eq!(got, vec![(50_000, 1), (50_000 + h, 2)]);
        assert_eq!(wheel.len(), 0);
    }
}
