//! Typed simulation errors.
//!
//! Construction and run paths report failures through [`SimError`] instead
//! of panicking: configuration problems become [`ConfigError`], a pipeline
//! that stops retiring becomes a [`DeadlockError`] carrying a per-stage
//! occupancy snapshot, and the per-cycle auditor (see `audit.rs`) reports
//! broken structural invariants as [`InvariantViolation`]. The `Display`
//! impls are hand-written in the `thiserror` style so the crate stays
//! dependency-free.

use std::fmt;

/// Everything that can go wrong constructing or running a [`crate::Machine`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The [`crate::PipelineConfig`] is internally inconsistent.
    Config(ConfigError),
    /// The program list does not match the configured thread count.
    ProgramCount {
        /// `cfg.threads`.
        expected: usize,
        /// Programs supplied.
        got: usize,
    },
    /// The forward-progress watchdog found a no-retire window.
    Deadlock(Box<DeadlockError>),
    /// The per-cycle auditor found a broken structural invariant.
    Invariant(InvariantViolation),
    /// Functional fast-forward or checkpoint restore failed (interpreter
    /// fault, or warm state that does not match the machine's geometry).
    FastForward(String),
    /// The job's worker panicked; the payload carries the panic message.
    /// Reported by the sweep engine, which isolates the panic so one bad
    /// job cannot sink the batch (or poison the engine's shared state).
    Panicked(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::ProgramCount { expected, got } => {
                write!(
                    f,
                    "expected one program per hardware thread ({expected}), got {got}"
                )
            }
            SimError::Deadlock(e) => e.fmt(f),
            SimError::Invariant(e) => e.fmt(f),
            SimError::FastForward(e) => write!(f, "fast-forward failed: {e}"),
            SimError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

impl From<DeadlockError> for SimError {
    fn from(e: DeadlockError) -> SimError {
        SimError::Deadlock(Box::new(e))
    }
}

impl From<InvariantViolation> for SimError {
    fn from(e: InvariantViolation) -> SimError {
        SimError::Invariant(e)
    }
}

/// A specific inconsistency in a [`crate::PipelineConfig`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `threads` outside the supported 1–4 range.
    ThreadCount {
        /// Configured thread count.
        got: usize,
    },
    /// `width` or `clusters` is zero.
    ZeroWidthOrClusters,
    /// `branch_checkpoints == Some(0)`.
    NoBranchCheckpoints,
    /// `fp_clusters` outside `1..=clusters`.
    FpClusters {
        /// Configured FP clusters.
        fp_clusters: usize,
        /// Total clusters.
        clusters: usize,
    },
    /// `mem_clusters` outside `1..=clusters`.
    MemClusters {
        /// Configured memory clusters.
        mem_clusters: usize,
        /// Total clusters.
        clusters: usize,
    },
    /// `iq_ex_stages` below 1.
    IqExTooShort,
    /// `dec_iq_stages` below 1.
    DecIqTooShort,
    /// Too few physical registers for the architectural mappings plus the
    /// in-flight window.
    TooFewPhysRegs {
        /// Configured physical registers.
        phys_regs: usize,
        /// Architectural mappings needed (64 × threads).
        arch: usize,
        /// Configured in-flight window.
        max_in_flight: usize,
    },
    /// Monolithic scheme: IQ-EX shorter than the register-file read it
    /// must contain.
    MonolithicRfReadTooLong {
        /// Configured IQ-EX stages.
        iq_ex_stages: u32,
        /// Configured register-file read latency.
        rf_read_latency: u32,
    },
    /// DRA scheme with zero-entry cluster register caches.
    EmptyCrc,
    /// DRA scheme: DEC-IQ too short to hold rename plus the pre-read.
    DraDecIqTooShort {
        /// Configured DEC-IQ stages.
        dec_iq_stages: u32,
        /// Configured register-file read latency.
        rf_read_latency: u32,
    },
    /// A fault-injection probability is outside `[0, 1]` or not finite.
    FaultRate {
        /// Which rate field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ThreadCount { got } => write!(f, "threads must be 1–4, got {got}"),
            ConfigError::ZeroWidthOrClusters => {
                write!(f, "width and clusters must be positive")
            }
            ConfigError::NoBranchCheckpoints => {
                write!(f, "branch_checkpoints must be at least 1 when limited")
            }
            ConfigError::FpClusters {
                fp_clusters,
                clusters,
            } => {
                write!(f, "fp_clusters ({fp_clusters}) must be in 1..={clusters}")
            }
            ConfigError::MemClusters {
                mem_clusters,
                clusters,
            } => {
                write!(f, "mem_clusters ({mem_clusters}) must be in 1..={clusters}")
            }
            ConfigError::IqExTooShort => write!(f, "iq_ex_stages must be at least 1"),
            ConfigError::DecIqTooShort => write!(f, "dec_iq_stages must be at least 1"),
            ConfigError::TooFewPhysRegs {
                phys_regs,
                arch,
                max_in_flight,
            } => write!(
                f,
                "phys_regs ({phys_regs}) must cover {arch} architectural mappings plus \
                 {max_in_flight} in flight"
            ),
            ConfigError::MonolithicRfReadTooLong {
                iq_ex_stages,
                rf_read_latency,
            } => write!(
                f,
                "monolithic IQ-EX ({iq_ex_stages}) cannot be shorter than the register read \
                 ({rf_read_latency})"
            ),
            ConfigError::EmptyCrc => write!(f, "CRC must have at least one entry"),
            ConfigError::DraDecIqTooShort {
                dec_iq_stages,
                rf_read_latency,
            } => write!(
                f,
                "DRA DEC-IQ ({dec_iq_stages}) must fit rename (2) + register read \
                 ({rf_read_latency})"
            ),
            ConfigError::FaultRate { field, value } => {
                write!(f, "fault rate `{field}` must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The forward-progress watchdog fired: no thread retired an instruction
/// for a whole watchdog window while un-halted threads still had work.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlockError {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Configured no-retire window (cycles).
    pub window: u64,
    /// Cycle of the last retirement (or run start if none).
    pub last_retire_cycle: u64,
    /// Per-stage occupancy at the moment the watchdog fired.
    pub snapshot: PipelineSnapshot,
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline deadlock: no instruction retired for {} cycles (cycle {}, last retirement \
             at cycle {})",
            self.window, self.cycle, self.last_retire_cycle
        )?;
        self.snapshot.fmt(f)
    }
}

impl std::error::Error for DeadlockError {}

/// Point-in-time occupancy of every pipeline structure — the human-readable
/// payload of a [`DeadlockError`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSnapshot {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// IQ entries in use.
    pub iq_len: usize,
    /// IQ capacity.
    pub iq_capacity: usize,
    /// IQ entries by state: (waiting, issued, confirmed-pending-clear).
    pub iq_states: (usize, usize, usize),
    /// Free physical registers.
    pub free_phys_regs: usize,
    /// Total physical registers.
    pub phys_regs: usize,
    /// Renamed, un-retired instructions across threads.
    pub in_flight: usize,
    /// Configured in-flight cap.
    pub max_in_flight: usize,
    /// Cycle until which the front end is stalled (operand-miss recovery).
    pub frontend_stall_until: u64,
    /// Pending execute/complete/wakeup events (a wedged machine with empty
    /// event queues will never progress).
    pub pending_events: (usize, usize, usize),
    /// Per-thread occupancy.
    pub threads: Vec<ThreadSnapshot>,
}

/// One thread's slice of a [`PipelineSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSnapshot {
    /// The thread retired its `halt`.
    pub done: bool,
    /// Next fetch PC.
    pub fetch_pc: u64,
    /// Fetch suspended (halt fetched or wrong-path runaway).
    pub fetch_suspended: bool,
    /// Cycle until which fetch is stalled.
    pub fetch_stall_until: u64,
    /// Fetched instructions awaiting rename.
    pub decode_q: usize,
    /// Renamed instructions in DEC-IQ transit.
    pub transit_q: usize,
    /// Program-order window occupancy (renamed, un-retired).
    pub rob: usize,
    /// In-flight stores.
    pub store_q: usize,
    /// Unresolved conditional branches.
    pub unresolved_branches: usize,
    /// Rename stalled behind an un-retired memory barrier.
    pub mb_stalled: bool,
    /// Oldest un-retired instruction: (seq, pc, phase), if any.
    pub oldest: Option<(u64, u64, &'static str)>,
}

impl fmt::Display for PipelineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (w, i, c) = self.iq_states;
        writeln!(
            f,
            "  IQ {}/{} (waiting {w}, issued {i}, confirmed {c}); phys regs free {}/{}; \
             in flight {}/{}; frontend stalled until {}",
            self.iq_len,
            self.iq_capacity,
            self.free_phys_regs,
            self.phys_regs,
            self.in_flight,
            self.max_in_flight,
            self.frontend_stall_until,
        )?;
        let (e, cm, wk) = self.pending_events;
        writeln!(
            f,
            "  pending events: execute {e}, complete {cm}, wakeup {wk}"
        )?;
        for (t, th) in self.threads.iter().enumerate() {
            write!(
                f,
                "  thread {t}: {}decode {} | transit {} | rob {} | stores {} | branches {}",
                if th.done { "done; " } else { "" },
                th.decode_q,
                th.transit_q,
                th.rob,
                th.store_q,
                th.unresolved_branches,
            )?;
            if th.mb_stalled {
                write!(f, " | mb-stalled")?;
            }
            if th.fetch_suspended {
                write!(f, " | fetch suspended at pc {}", th.fetch_pc)?;
            } else {
                write!(
                    f,
                    " | fetch pc {} (stalled until {})",
                    th.fetch_pc, th.fetch_stall_until
                )?;
            }
            if let Some((seq, pc, phase)) = th.oldest {
                write!(f, " | oldest seq {seq} pc {pc} [{phase}]")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A structural invariant the per-cycle auditor found broken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle at which the check failed.
    pub cycle: u64,
    /// Which invariant class failed.
    pub kind: InvariantKind,
    /// Specifics (registers, counts, thread indices involved).
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated at cycle {}: [{}] {}",
            self.cycle, self.kind, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// The invariant classes the auditor checks every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvariantKind {
    /// free + architectural + in-flight destinations ≠ total physical regs.
    FreelistConservation,
    /// IQ occupancy exceeds capacity or per-cluster counts disagree.
    IqConsistency,
    /// ROB sequence numbers out of order, or a dangling instruction handle.
    RobOrder,
    /// Store queue is not the in-order store subsequence of the ROB.
    StoreQueueOrder,
    /// Renamed-instruction count exceeds the configured in-flight cap.
    InFlightBound,
    /// An RPFT pre-read bit is set for a register whose producer has not
    /// written back, or clear for a committed architectural mapping.
    RpftConsistency,
    /// A CRC caches a register with no live value in the register file.
    CrcConsistency,
    /// An insertion table counts consumers for an already-readable register.
    InsertionTableConsistency,
    /// The per-loop CPI stack leaked retire slots: used + lost slots do not
    /// equal width × cycles, or the stack disagrees with the retire/cycle
    /// counters.
    LoopCostConservation,
    /// The memory hierarchy's structural self-check failed (e.g. more
    /// outstanding misses than MSHRs). Also covers the documented fetch
    /// asymmetry: instruction fetches never occupy MSHRs, so data-side
    /// occupancy alone must stay within bounds.
    MemHierarchyConsistency,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::FreelistConservation => "freelist-conservation",
            InvariantKind::IqConsistency => "iq-consistency",
            InvariantKind::RobOrder => "rob-order",
            InvariantKind::StoreQueueOrder => "store-queue-order",
            InvariantKind::InFlightBound => "in-flight-bound",
            InvariantKind::RpftConsistency => "rpft-consistency",
            InvariantKind::CrcConsistency => "crc-consistency",
            InvariantKind::InsertionTableConsistency => "insertion-table-consistency",
            InvariantKind::LoopCostConservation => "loop-cost-conservation",
            InvariantKind::MemHierarchyConsistency => "mem-hierarchy-consistency",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Config(ConfigError::ThreadCount { got: 9 });
        assert!(e.to_string().contains("threads must be 1–4, got 9"));

        let e = SimError::ProgramCount {
            expected: 2,
            got: 1,
        };
        assert!(e
            .to_string()
            .contains("expected one program per hardware thread (2), got 1"));

        let v = InvariantViolation {
            cycle: 77,
            kind: InvariantKind::FreelistConservation,
            detail: "free 10 + live 20 != total 512".into(),
        };
        let s = SimError::from(v).to_string();
        assert!(s.contains("cycle 77"));
        assert!(s.contains("freelist-conservation"));
        assert!(s.contains("free 10"));
    }

    #[test]
    fn deadlock_display_includes_snapshot() {
        let e = DeadlockError {
            cycle: 60_000,
            window: 50_000,
            last_retire_cycle: 10_000,
            snapshot: PipelineSnapshot {
                cycle: 60_000,
                iq_len: 4,
                iq_capacity: 128,
                iq_states: (3, 1, 0),
                free_phys_regs: 400,
                phys_regs: 512,
                in_flight: 48,
                max_in_flight: 256,
                frontend_stall_until: 0,
                pending_events: (0, 1, 0),
                threads: vec![ThreadSnapshot {
                    done: false,
                    fetch_pc: 42,
                    fetch_suspended: false,
                    fetch_stall_until: 0,
                    decode_q: 8,
                    transit_q: 16,
                    rob: 48,
                    store_q: 2,
                    unresolved_branches: 1,
                    mb_stalled: false,
                    oldest: Some((100, 17, "Issued")),
                }],
            },
        };
        let s = e.to_string();
        assert!(s.contains("no instruction retired for 50000 cycles"));
        assert!(s.contains("IQ 4/128"));
        assert!(s.contains("thread 0"));
        assert!(s.contains("oldest seq 100 pc 17 [Issued]"));
        // It round-trips through SimError.
        let s2 = SimError::from(e).to_string();
        assert_eq!(s, s2);
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = SimError::Config(ConfigError::EmptyCrc);
        assert!(e.source().is_some());
    }
}
