//! Memory-dependence machinery.
//!
//! Loads issue speculatively with respect to older stores whose addresses
//! are still unknown. When a store later computes its address and finds a
//! younger, already-executed load to an overlapping address, the machine
//! takes a *memory trap* — the paper's load/store reorder trap, whose
//! initiation stage is issue and whose recovery stage is fetch (the dotted
//! loop of Figure 2). The [`StoreWaitTable`] is the 21264-style predictor
//! that stops a previously-trapping load from issuing ahead of unresolved
//! stores again.

/// PC-indexed store-wait bits (memory-dependence predictor).
#[derive(Debug, Clone)]
pub struct StoreWaitTable {
    bits: Vec<bool>,
    set_events: u64,
}

impl StoreWaitTable {
    /// A table with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> StoreWaitTable {
        assert!(
            entries.is_power_of_two(),
            "store-wait table must be a power of two"
        );
        StoreWaitTable {
            bits: vec![false; entries],
            set_events: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.bits.len() - 1)
    }

    /// Must the load at `pc` wait for all older store addresses?
    pub fn must_wait(&self, pc: u64) -> bool {
        self.bits[self.index(pc)]
    }

    /// Record that the load at `pc` caused an ordering violation.
    pub fn mark(&mut self, pc: u64) {
        let i = self.index(pc);
        if !self.bits[i] {
            self.set_events += 1;
        }
        self.bits[i] = true;
    }

    /// Number of distinct set events (diagnostics).
    pub fn marks(&self) -> u64 {
        self.set_events
    }

    /// Clear all bits (the 21264 flushes the table periodically; exposed
    /// for experiments).
    pub fn clear(&mut self) {
        self.bits.fill(false);
    }
}

/// Do two memory accesses `(addr, size)` overlap?
pub fn overlaps(a: (u64, u8), b: (u64, u8)) -> bool {
    let (aa, asz) = a;
    let (ba, bsz) = b;
    aa < ba.wrapping_add(bsz as u64) && ba < aa.wrapping_add(asz as u64)
}

/// Can a load `(addr, size)` be fully satisfied by a store `(addr, size)`?
/// (Byte-containment; partial overlaps force conservative handling.)
pub fn contains(store: (u64, u8), load: (u64, u8)) -> bool {
    let (sa, ssz) = store;
    let (la, lsz) = load;
    sa <= la && la.wrapping_add(lsz as u64) <= sa.wrapping_add(ssz as u64)
}

/// Extract a load's value from a containing store's data.
///
/// # Panics
///
/// Panics unless [`contains`]`(store, load)`.
pub fn forward_value(store: (u64, u8), store_data: u64, load: (u64, u8)) -> u64 {
    assert!(contains(store, load), "store does not contain load");
    let shift = 8 * (load.0 - store.0);
    let v = store_data >> shift;
    match load.1 {
        8 => v,
        4 => v & 0xffff_ffff,
        1 => v & 0xff,
        s => panic!("unsupported load size {s}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_bits_lifecycle() {
        let mut t = StoreWaitTable::new(16);
        assert!(!t.must_wait(0x40));
        t.mark(0x40);
        assert!(t.must_wait(0x40));
        t.mark(0x40);
        assert_eq!(t.marks(), 1, "re-marking is not a new event");
        t.clear();
        assert!(!t.must_wait(0x40));
    }

    #[test]
    fn pc_aliasing_is_by_table_size() {
        let mut t = StoreWaitTable::new(16);
        t.mark(3);
        assert!(t.must_wait(19), "3 and 19 alias in a 16-entry table");
    }

    #[test]
    fn overlap_cases() {
        assert!(overlaps((0, 8), (0, 8)));
        assert!(overlaps((0, 8), (7, 1)));
        assert!(!overlaps((0, 8), (8, 8)));
        assert!(overlaps((4, 8), (0, 8)));
        assert!(!overlaps((0, 4), (4, 4)));
    }

    #[test]
    fn containment_and_forwarding() {
        assert!(contains((0, 8), (0, 8)));
        assert!(contains((0, 8), (4, 4)));
        assert!(!contains((4, 4), (0, 8)));
        assert!(
            !contains((0, 4), (2, 4)),
            "partial overlap is not containment"
        );

        let data = 0x1122_3344_5566_7788u64;
        assert_eq!(forward_value((0, 8), data, (0, 8)), data);
        assert_eq!(forward_value((0, 8), data, (4, 4)), 0x1122_3344);
        assert_eq!(forward_value((0, 8), data, (0, 4)), 0x5566_7788);
        assert_eq!(forward_value((0, 8), data, (7, 1)), 0x11);
    }

    #[test]
    #[should_panic]
    fn forwarding_requires_containment() {
        let _ = forward_value((0, 4), 0, (2, 4));
    }
}
