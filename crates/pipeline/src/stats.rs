//! Simulation statistics.
//!
//! Everything the paper's figures need: IPC, branch/load mis-speculation
//! counts, reissue (useless-work) counts, operand-source breakdown
//! (Figure 9), the operand-availability-gap histogram (Figure 6), and IQ
//! occupancy.

use looseloops_mem::HierarchyStats;

/// Maximum tracked operand-availability gap; larger gaps land in the last
/// bucket (Figure 6 plots 0..=60).
pub const GAP_BUCKETS: usize = 128;

/// Counters for one simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired, per thread.
    pub retired: Vec<u64>,
    /// Instructions fetched (including wrong-path work).
    pub fetched: u64,
    /// Wrong-path instructions squashed before retirement.
    pub squashed: u64,
    /// Squashed instructions that had already issued at least once — the
    /// paper's "useless work" for control/order mis-speculation.
    pub squashed_after_issue: u64,

    /// Conditional branches executed (correct path, resolved).
    pub branches: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Indirect/target mispredictions (BTB/RAS wrong).
    pub target_mispredicts: u64,

    /// Loads executed to completion.
    pub loads: u64,
    /// Loads that hit L1 (the speculation the base machine bets on).
    pub load_l1_hits: u64,
    /// Loads that missed L1.
    pub load_l1_misses: u64,
    /// Issued instructions killed and reissued because an operand was not
    /// present at execute while its producer was still in flight — the
    /// load-resolution-loop useless work (paper: "number of instructions
    /// reissued").
    pub load_replays: u64,
    /// Replays triggered by the ReissueShadow policy on non-dependent
    /// instructions.
    pub shadow_replays: u64,

    /// DRA: operand-resolution-loop mis-speculations (operand misses).
    pub operand_misses: u64,
    /// DRA: instructions reissued because of operand misses (the missing
    /// instruction itself plus issued dependents).
    pub operand_replays: u64,
    /// Operand-source breakdown: [pre-read, forward, CRC, reg-file, miss].
    pub operand_sources: [u64; 5],
    /// DRA insertion-table saturation events (consumers lost to the 2-bit
    /// counter limit, §5.4).
    pub insertion_saturations: u64,

    /// Memory-order violation traps (load/store reorder).
    pub mem_order_traps: u64,
    /// dTLB miss traps serviced at retire.
    pub tlb_traps: u64,
    /// Memory barriers retired.
    pub mem_barriers: u64,
    /// Branch-recovery squash events.
    pub branch_squashes: u64,

    /// Histogram of cycles between first- and second-operand availability
    /// (Figure 6). Single/zero-operand instructions count in bucket 0.
    pub operand_gap_hist: Vec<u64>,
    /// Histogram of load latencies in cycles (AGU + cache/TLB/bank/MSHR),
    /// clamped to the last bucket.
    pub load_latency_hist: Vec<u64>,

    /// Cycles rename stalled (free list, in-flight cap, IQ backpressure,
    /// memory barrier).
    pub rename_stall_cycles: u64,
    /// Cycles the front end was stalled servicing DRA operand misses.
    pub operand_miss_stall_cycles: u64,

    /// Mean IQ occupancy over the run.
    pub iq_occupancy_mean: f64,
    /// Mean count of post-issue (retained) entries.
    pub iq_post_issue_mean: f64,
    /// Peak IQ occupancy.
    pub iq_peak: usize,

    /// Memory-hierarchy counters.
    pub mem: HierarchyStats,
    /// Line-predictor (correct, wrong).
    pub line_pred: (u64, u64),

    /// Forward-progress watchdog trips (0 or 1 per run; the run ends with
    /// a `DeadlockError` when it fires).
    pub deadlocks_detected: u64,
    /// Faults injected by the fault-injection harness, total.
    pub faults_injected: u64,
    /// Injected faults by class: [branch flips, load spikes, operand
    /// misses] (`FaultKind` order).
    pub faults_by_kind: [u64; 3],
    /// Per-cycle invariant-auditor passes completed.
    pub audit_checks: u64,
}

impl SimStats {
    /// Zeroed statistics for `threads` hardware threads.
    pub fn new(threads: usize) -> SimStats {
        SimStats {
            cycles: 0,
            retired: vec![0; threads],
            fetched: 0,
            squashed: 0,
            squashed_after_issue: 0,
            branches: 0,
            branch_mispredicts: 0,
            target_mispredicts: 0,
            loads: 0,
            load_l1_hits: 0,
            load_l1_misses: 0,
            load_replays: 0,
            shadow_replays: 0,
            operand_misses: 0,
            operand_replays: 0,
            operand_sources: [0; 5],
            insertion_saturations: 0,
            mem_order_traps: 0,
            tlb_traps: 0,
            mem_barriers: 0,
            branch_squashes: 0,
            operand_gap_hist: vec![0; GAP_BUCKETS],
            load_latency_hist: vec![0; 512],
            rename_stall_cycles: 0,
            operand_miss_stall_cycles: 0,
            iq_occupancy_mean: 0.0,
            iq_post_issue_mean: 0.0,
            iq_peak: 0,
            mem: HierarchyStats::default(),
            line_pred: (0, 0),
            deadlocks_detected: 0,
            faults_injected: 0,
            faults_by_kind: [0; 3],
            audit_checks: 0,
        }
    }

    /// Total instructions retired across threads.
    pub fn total_retired(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_retired() as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate in [0, 1].
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// L1 data-cache load miss rate in [0, 1].
    pub fn load_miss_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_l1_misses as f64 / self.loads as f64
        }
    }

    /// Fraction of source operands obtained from each location, in Figure 9
    /// order: [pre-read, forwarding buffer, CRC, register file, miss].
    pub fn operand_source_fractions(&self) -> [f64; 5] {
        let total: u64 = self.operand_sources.iter().sum();
        if total == 0 {
            return [0.0; 5];
        }
        let mut f = [0.0; 5];
        for (o, s) in f.iter_mut().zip(self.operand_sources) {
            *o = s as f64 / total as f64;
        }
        f
    }

    /// DRA operand miss rate over all delivered operands.
    pub fn operand_miss_rate(&self) -> f64 {
        self.operand_source_fractions()[4]
    }

    /// Record one load's total latency.
    pub fn record_load_latency(&mut self, latency: u64) {
        let b = (latency as usize).min(self.load_latency_hist.len() - 1);
        self.load_latency_hist[b] += 1;
    }

    /// The latency at or below which fraction `p` (0..=1) of loads
    /// completed; `None` when no loads were recorded.
    pub fn load_latency_percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.load_latency_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (total as f64 * p).ceil() as u64;
        let mut acc = 0;
        for (lat, &count) in self.load_latency_hist.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some(lat as u64);
            }
        }
        Some(self.load_latency_hist.len() as u64 - 1)
    }

    /// Record an operand availability gap (Figure 6).
    pub fn record_gap(&mut self, gap: u64) {
        let b = (gap as usize).min(GAP_BUCKETS - 1);
        self.operand_gap_hist[b] += 1;
    }

    /// Cumulative distribution of operand gaps: `cdf[i]` = fraction of
    /// instructions with gap ≤ i.
    pub fn gap_cdf(&self) -> Vec<f64> {
        let total: u64 = self.operand_gap_hist.iter().sum();
        if total == 0 {
            return vec![1.0; GAP_BUCKETS];
        }
        let mut acc = 0u64;
        self.operand_gap_hist
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Total useless work: every killed-after-issue or reissued
    /// instruction.
    pub fn useless_work(&self) -> u64 {
        self.squashed_after_issue + self.load_replays + self.shadow_replays + self.operand_replays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let mut s = SimStats::new(2);
        s.cycles = 100;
        s.retired = vec![300, 100];
        assert_eq!(s.total_retired(), 400);
        assert!((s.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::new(1);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_mispredict_rate(), 0.0);
        assert_eq!(s.load_miss_rate(), 0.0);
        assert_eq!(s.operand_miss_rate(), 0.0);
    }

    #[test]
    fn operand_fractions_sum_to_one() {
        let mut s = SimStats::new(1);
        s.operand_sources = [10, 50, 20, 15, 5];
        let f = s.operand_source_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s.operand_miss_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn gap_histogram_and_cdf() {
        let mut s = SimStats::new(1);
        s.record_gap(0);
        s.record_gap(0);
        s.record_gap(5);
        s.record_gap(10_000); // clamps into the last bucket
        let cdf = s.gap_cdf();
        assert!((cdf[0] - 0.5).abs() < 1e-12);
        assert!((cdf[5] - 0.75).abs() < 1e-12);
        assert!((cdf[GAP_BUCKETS - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_latency_percentiles() {
        let mut s = SimStats::new(1);
        assert_eq!(s.load_latency_percentile(0.5), None);
        for _ in 0..90 {
            s.record_load_latency(4);
        }
        for _ in 0..10 {
            s.record_load_latency(135);
        }
        assert_eq!(s.load_latency_percentile(0.5), Some(4));
        assert_eq!(s.load_latency_percentile(0.9), Some(4));
        assert_eq!(s.load_latency_percentile(0.95), Some(135));
        s.record_load_latency(10_000); // clamps
        assert_eq!(*s.load_latency_hist.last().unwrap(), 1);
    }

    #[test]
    fn useless_work_rolls_up() {
        let mut s = SimStats::new(1);
        s.squashed_after_issue = 1;
        s.load_replays = 2;
        s.shadow_replays = 3;
        s.operand_replays = 4;
        assert_eq!(s.useless_work(), 10);
    }
}
