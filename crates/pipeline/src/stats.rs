//! Simulation statistics.
//!
//! Everything the paper's figures need: IPC, branch/load mis-speculation
//! counts, reissue (useless-work) counts, operand-source breakdown
//! (Figure 9), the operand-availability-gap histogram (Figure 6), and IQ
//! occupancy.

use looseloops_mem::HierarchyStats;

/// Maximum tracked operand-availability gap; larger gaps land in the last
/// bucket. The histogram covers 0..=127 so Figure 6 can plot any prefix
/// (the paper shows 0..=60) without clamping distorting the tail.
pub const GAP_BUCKETS: usize = 128;

/// A cause a lost retire slot is charged to in the per-loop CPI stack.
///
/// Each cause after [`CpiComponent::Base`] corresponds to one of the loose
/// loops in the paper's taxonomy (`loop_inventory` in the core crate) or to
/// a structural limit the loops run against. Every cycle in which retire
/// commits fewer than `width` instructions charges its `width - retired`
/// lost slots to exactly **one** cause, so the stack conserves slots by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiComponent {
    /// Steady-state/base execution: issue-limited, dependence-limited, or
    /// end-of-program drain — nothing attributable to a loose loop.
    Base,
    /// Branch-resolution loop: mispredict squash plus pipeline refill.
    BranchResolution,
    /// Load-resolution loop: replays and confirm waits behind loads that
    /// issued consumers speculatively (including Refetch-policy squashes).
    LoadResolution,
    /// DRA operand-resolution loop: operand misses and their recovery.
    OperandResolution,
    /// Memory-trap loop: memory-order violation and dTLB traps.
    MemoryTrap,
    /// Memory-barrier stall: rename held while a barrier drains.
    MemoryBarrier,
    /// Front end: I-cache misses, line-predictor bubbles, fetch refill not
    /// attributable to a specific loop squash.
    Frontend,
    /// Memory-hierarchy latency: head load waiting on a cache miss.
    MemoryLatency,
}

impl CpiComponent {
    /// Number of components in the stack.
    pub const COUNT: usize = 8;

    /// All components in canonical (storage) order.
    pub const ALL: [CpiComponent; CpiComponent::COUNT] = [
        CpiComponent::Base,
        CpiComponent::BranchResolution,
        CpiComponent::LoadResolution,
        CpiComponent::OperandResolution,
        CpiComponent::MemoryTrap,
        CpiComponent::MemoryBarrier,
        CpiComponent::Frontend,
        CpiComponent::MemoryLatency,
    ];

    /// Storage index in [`LoopCostStack::lost`].
    pub fn index(self) -> usize {
        match self {
            CpiComponent::Base => 0,
            CpiComponent::BranchResolution => 1,
            CpiComponent::LoadResolution => 2,
            CpiComponent::OperandResolution => 3,
            CpiComponent::MemoryTrap => 4,
            CpiComponent::MemoryBarrier => 5,
            CpiComponent::Frontend => 6,
            CpiComponent::MemoryLatency => 7,
        }
    }

    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CpiComponent::Base => "base",
            CpiComponent::BranchResolution => "branch-resolution",
            CpiComponent::LoadResolution => "load-resolution",
            CpiComponent::OperandResolution => "operand-resolution",
            CpiComponent::MemoryTrap => "memory-trap",
            CpiComponent::MemoryBarrier => "memory-barrier",
            CpiComponent::Frontend => "frontend",
            CpiComponent::MemoryLatency => "memory-latency",
        }
    }

    /// The `loop_inventory` loop this component charges, if it maps to one.
    /// `Base`, `Frontend`, and `MemoryLatency` are structural, not loops.
    pub fn loop_name(self) -> Option<&'static str> {
        match self {
            CpiComponent::BranchResolution => Some("branch resolution"),
            CpiComponent::LoadResolution => Some("load resolution"),
            CpiComponent::OperandResolution => Some("operand resolution"),
            CpiComponent::MemoryTrap => Some("memory trap"),
            CpiComponent::MemoryBarrier => Some("memory barrier"),
            CpiComponent::Base | CpiComponent::Frontend | CpiComponent::MemoryLatency => None,
        }
    }
}

/// Per-loop cycle accounting: every retire-slot of every cycle is either
/// used by a committed instruction or charged, whole-cycle at a time, to
/// one [`CpiComponent`].
///
/// Conservation holds in integers by construction:
/// `used + lost.sum() == width * cycles`, and the normalized view in
/// [`LoopCostStack::cpi_components`] sums exactly to the measured CPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopCostStack {
    /// Retire slots per cycle (commit width); 0 until the first charge.
    pub width: u64,
    /// Cycles accounted.
    pub cycles: u64,
    /// Slots filled by retired instructions.
    pub used: u64,
    /// Lost slots per component, indexed by [`CpiComponent::index`].
    pub lost: [u64; CpiComponent::COUNT],
}

impl LoopCostStack {
    /// Account one cycle: `retired` slots used, the remaining
    /// `width - retired` charged to `cause`.
    pub fn charge(&mut self, width: u64, retired: u64, cause: CpiComponent) {
        debug_assert!(retired <= width);
        debug_assert!(self.width == 0 || self.width == width);
        self.width = width;
        self.cycles += 1;
        self.used += retired;
        self.lost[cause.index()] += width - retired;
    }

    /// Account `cycles` consecutive retire-nothing cycles charged to one
    /// `cause` in a single step — the quiescence skip's batched
    /// equivalent of calling [`LoopCostStack::charge`] `cycles` times
    /// with `retired == 0`. Conservation is preserved exactly.
    pub fn charge_idle(&mut self, width: u64, cycles: u64, cause: CpiComponent) {
        debug_assert!(self.width == 0 || self.width == width);
        self.width = width;
        self.cycles += cycles;
        self.lost[cause.index()] += width * cycles;
    }

    /// Lost slots charged to one component.
    pub fn component(&self, c: CpiComponent) -> u64 {
        self.lost[c.index()]
    }

    /// Total lost slots across all components.
    pub fn total_lost(&self) -> u64 {
        self.lost.iter().sum()
    }

    /// Total retire slots offered: `width * cycles`.
    pub fn total_slots(&self) -> u64 {
        self.width * self.cycles
    }

    /// Integer conservation: used + lost slots exactly fill all slots.
    pub fn conserves(&self) -> bool {
        self.used + self.total_lost() == self.total_slots()
    }

    /// Fraction of retire slots lost, in [0, 1].
    pub fn lost_fraction(&self) -> f64 {
        if self.total_slots() == 0 {
            0.0
        } else {
            self.total_lost() as f64 / self.total_slots() as f64
        }
    }

    /// Measured cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.used == 0 {
            0.0
        } else {
            self.cycles as f64 / self.used as f64
        }
    }

    /// The CPI stack: per-component cycles-per-instruction, in
    /// [`CpiComponent::ALL`] order. The base component absorbs the used
    /// slots, so the entries sum exactly to [`LoopCostStack::cpi`].
    pub fn cpi_components(&self) -> [f64; CpiComponent::COUNT] {
        let mut out = [0.0; CpiComponent::COUNT];
        if self.used == 0 || self.width == 0 {
            return out;
        }
        let denom = (self.width * self.used) as f64;
        for (o, &l) in out.iter_mut().zip(&self.lost) {
            *o = l as f64 / denom;
        }
        out[CpiComponent::Base.index()] += self.used as f64 / denom;
        out
    }

    /// Accumulate another stack into this one (sweep aggregation). Merging
    /// stacks of different widths keeps the raw slot counts additive but
    /// makes the slot total approximate; same-width merges stay exact.
    pub fn merge(&mut self, other: &LoopCostStack) {
        self.width = self.width.max(other.width);
        self.cycles += other.cycles;
        self.used += other.used;
        for (a, b) in self.lost.iter_mut().zip(&other.lost) {
            *a += b;
        }
    }
}

/// Counters for one simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired, per thread.
    pub retired: Vec<u64>,
    /// Instructions fetched (including wrong-path work).
    pub fetched: u64,
    /// Wrong-path instructions squashed before retirement.
    pub squashed: u64,
    /// Squashed instructions that had already issued at least once — the
    /// paper's "useless work" for control/order mis-speculation.
    pub squashed_after_issue: u64,

    /// Conditional branches executed (correct path, resolved).
    pub branches: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Indirect/target mispredictions (BTB/RAS wrong).
    pub target_mispredicts: u64,

    /// Loads executed to completion.
    pub loads: u64,
    /// Loads that hit L1 (the speculation the base machine bets on).
    pub load_l1_hits: u64,
    /// Loads that missed L1.
    pub load_l1_misses: u64,
    /// Issued instructions killed and reissued because an operand was not
    /// present at execute while its producer was still in flight — the
    /// load-resolution-loop useless work (paper: "number of instructions
    /// reissued").
    pub load_replays: u64,
    /// Replays triggered by the ReissueShadow policy on non-dependent
    /// instructions.
    pub shadow_replays: u64,

    /// DRA: operand-resolution-loop mis-speculations (operand misses).
    pub operand_misses: u64,
    /// DRA: instructions reissued because of operand misses (the missing
    /// instruction itself plus issued dependents).
    pub operand_replays: u64,
    /// Operand-source breakdown: [pre-read, forward, CRC, reg-file, miss].
    pub operand_sources: [u64; 5],
    /// DRA insertion-table saturation events (consumers lost to the 2-bit
    /// counter limit, §5.4).
    pub insertion_saturations: u64,

    /// Memory-order violation traps (load/store reorder).
    pub mem_order_traps: u64,
    /// dTLB miss traps serviced at retire.
    pub tlb_traps: u64,
    /// Memory barriers retired.
    pub mem_barriers: u64,
    /// Branch-recovery squash events.
    pub branch_squashes: u64,

    /// Histogram of cycles between first- and second-operand availability
    /// (Figure 6). Single/zero-operand instructions count in bucket 0.
    pub operand_gap_hist: Vec<u64>,
    /// Histogram of load latencies in cycles (AGU + cache/TLB/bank/MSHR),
    /// clamped to the last bucket.
    pub load_latency_hist: Vec<u64>,

    /// Cycles rename stalled (free list, in-flight cap, IQ backpressure,
    /// memory barrier).
    pub rename_stall_cycles: u64,
    /// Cycles the front end was stalled servicing DRA operand misses.
    pub operand_miss_stall_cycles: u64,

    /// Mean IQ occupancy over the run.
    pub iq_occupancy_mean: f64,
    /// Mean count of post-issue (retained) entries.
    pub iq_post_issue_mean: f64,
    /// Peak IQ occupancy.
    pub iq_peak: usize,

    /// Memory-hierarchy counters.
    pub mem: HierarchyStats,
    /// Line-predictor (correct, wrong).
    pub line_pred: (u64, u64),

    /// Forward-progress watchdog trips (0 or 1 per run; the run ends with
    /// a `DeadlockError` when it fires).
    pub deadlocks_detected: u64,
    /// Faults injected by the fault-injection harness, total.
    pub faults_injected: u64,
    /// Injected faults by class: [branch flips, load spikes, operand
    /// misses] (`FaultKind` order).
    pub faults_by_kind: [u64; 3],
    /// Per-cycle invariant-auditor passes completed.
    pub audit_checks: u64,
    /// Per-loop CPI-stack accounting of every retire slot.
    pub loop_cost: LoopCostStack,
}

impl SimStats {
    /// Zeroed statistics for `threads` hardware threads.
    pub fn new(threads: usize) -> SimStats {
        SimStats {
            cycles: 0,
            retired: vec![0; threads],
            fetched: 0,
            squashed: 0,
            squashed_after_issue: 0,
            branches: 0,
            branch_mispredicts: 0,
            target_mispredicts: 0,
            loads: 0,
            load_l1_hits: 0,
            load_l1_misses: 0,
            load_replays: 0,
            shadow_replays: 0,
            operand_misses: 0,
            operand_replays: 0,
            operand_sources: [0; 5],
            insertion_saturations: 0,
            mem_order_traps: 0,
            tlb_traps: 0,
            mem_barriers: 0,
            branch_squashes: 0,
            operand_gap_hist: vec![0; GAP_BUCKETS],
            load_latency_hist: vec![0; 512],
            rename_stall_cycles: 0,
            operand_miss_stall_cycles: 0,
            iq_occupancy_mean: 0.0,
            iq_post_issue_mean: 0.0,
            iq_peak: 0,
            mem: HierarchyStats::default(),
            line_pred: (0, 0),
            deadlocks_detected: 0,
            faults_injected: 0,
            faults_by_kind: [0; 3],
            audit_checks: 0,
            loop_cost: LoopCostStack::default(),
        }
    }

    /// Total instructions retired across threads.
    pub fn total_retired(&self) -> u64 {
        self.retired.iter().sum()
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_retired() as f64 / self.cycles as f64
        }
    }

    /// Conditional-branch misprediction rate in [0, 1].
    pub fn branch_mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// L1 data-cache load miss rate in [0, 1].
    pub fn load_miss_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_l1_misses as f64 / self.loads as f64
        }
    }

    /// Fraction of source operands obtained from each location, in Figure 9
    /// order: [pre-read, forwarding buffer, CRC, register file, miss].
    pub fn operand_source_fractions(&self) -> [f64; 5] {
        let total: u64 = self.operand_sources.iter().sum();
        if total == 0 {
            return [0.0; 5];
        }
        let mut f = [0.0; 5];
        for (o, s) in f.iter_mut().zip(self.operand_sources) {
            *o = s as f64 / total as f64;
        }
        f
    }

    /// DRA operand miss rate over all delivered operands.
    pub fn operand_miss_rate(&self) -> f64 {
        self.operand_source_fractions()[4]
    }

    /// Record one load's total latency.
    pub fn record_load_latency(&mut self, latency: u64) {
        let b = (latency as usize).min(self.load_latency_hist.len() - 1);
        self.load_latency_hist[b] += 1;
    }

    /// The latency at or below which fraction `p` of loads completed;
    /// `None` when no loads were recorded. `p` is clamped to [0, 1] (NaN
    /// counts as 0), and `p = 0.0` means the fastest observed load — never
    /// an empty bucket.
    pub fn load_latency_percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.load_latency_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let target = ((total as f64 * p).ceil() as u64).max(1);
        let mut acc = 0;
        for (lat, &count) in self.load_latency_hist.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some(lat as u64);
            }
        }
        Some(self.load_latency_hist.len() as u64 - 1)
    }

    /// Record an operand availability gap (Figure 6).
    pub fn record_gap(&mut self, gap: u64) {
        let b = (gap as usize).min(GAP_BUCKETS - 1);
        self.operand_gap_hist[b] += 1;
    }

    /// Cumulative distribution of operand gaps: `cdf[i]` = fraction of
    /// instructions with gap ≤ i.
    pub fn gap_cdf(&self) -> Vec<f64> {
        let total: u64 = self.operand_gap_hist.iter().sum();
        if total == 0 {
            return vec![1.0; GAP_BUCKETS];
        }
        let mut acc = 0u64;
        self.operand_gap_hist
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Total useless work: every killed-after-issue or reissued
    /// instruction.
    pub fn useless_work(&self) -> u64 {
        self.squashed_after_issue + self.load_replays + self.shadow_replays + self.operand_replays
    }

    /// Accumulate another run's counters into this one — the aggregation
    /// behind interval sampling, where each detailed measurement window
    /// produces its own `SimStats` and the sampled run reports their sum.
    /// Counters add; occupancy means combine cycle-weighted; peaks take
    /// the max; the loop-cost stack merges.
    pub fn absorb(&mut self, other: &SimStats) {
        let (wa, wb) = (self.cycles as f64, other.cycles as f64);
        if wa + wb > 0.0 {
            self.iq_occupancy_mean =
                (self.iq_occupancy_mean * wa + other.iq_occupancy_mean * wb) / (wa + wb);
            self.iq_post_issue_mean =
                (self.iq_post_issue_mean * wa + other.iq_post_issue_mean * wb) / (wa + wb);
        }
        self.cycles += other.cycles;
        if self.retired.len() < other.retired.len() {
            self.retired.resize(other.retired.len(), 0);
        }
        for (a, b) in self.retired.iter_mut().zip(&other.retired) {
            *a += b;
        }
        self.fetched += other.fetched;
        self.squashed += other.squashed;
        self.squashed_after_issue += other.squashed_after_issue;
        self.branches += other.branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.target_mispredicts += other.target_mispredicts;
        self.loads += other.loads;
        self.load_l1_hits += other.load_l1_hits;
        self.load_l1_misses += other.load_l1_misses;
        self.load_replays += other.load_replays;
        self.shadow_replays += other.shadow_replays;
        self.operand_misses += other.operand_misses;
        self.operand_replays += other.operand_replays;
        for (a, b) in self.operand_sources.iter_mut().zip(&other.operand_sources) {
            *a += b;
        }
        self.insertion_saturations += other.insertion_saturations;
        self.mem_order_traps += other.mem_order_traps;
        self.tlb_traps += other.tlb_traps;
        self.mem_barriers += other.mem_barriers;
        self.branch_squashes += other.branch_squashes;
        for (a, b) in self
            .operand_gap_hist
            .iter_mut()
            .zip(&other.operand_gap_hist)
        {
            *a += b;
        }
        for (a, b) in self
            .load_latency_hist
            .iter_mut()
            .zip(&other.load_latency_hist)
        {
            *a += b;
        }
        self.rename_stall_cycles += other.rename_stall_cycles;
        self.operand_miss_stall_cycles += other.operand_miss_stall_cycles;
        self.iq_peak = self.iq_peak.max(other.iq_peak);
        self.mem.l1i.hits += other.mem.l1i.hits;
        self.mem.l1i.misses += other.mem.l1i.misses;
        self.mem.l1d.hits += other.mem.l1d.hits;
        self.mem.l1d.misses += other.mem.l1d.misses;
        self.mem.l2.hits += other.mem.l2.hits;
        self.mem.l2.misses += other.mem.l2.misses;
        self.mem.dtlb_hits += other.mem.dtlb_hits;
        self.mem.dtlb_misses += other.mem.dtlb_misses;
        self.mem.bank_conflicts += other.mem.bank_conflicts;
        self.mem.mshr_waits += other.mem.mshr_waits;
        self.mem.prefetches += other.mem.prefetches;
        self.line_pred.0 += other.line_pred.0;
        self.line_pred.1 += other.line_pred.1;
        self.deadlocks_detected += other.deadlocks_detected;
        self.faults_injected += other.faults_injected;
        for (a, b) in self.faults_by_kind.iter_mut().zip(&other.faults_by_kind) {
            *a += b;
        }
        self.audit_checks += other.audit_checks;
        self.loop_cost.merge(&other.loop_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_math() {
        let mut s = SimStats::new(2);
        s.cycles = 100;
        s.retired = vec![300, 100];
        assert_eq!(s.total_retired(), 400);
        assert!((s.ipc() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::new(1);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_mispredict_rate(), 0.0);
        assert_eq!(s.load_miss_rate(), 0.0);
        assert_eq!(s.operand_miss_rate(), 0.0);
    }

    #[test]
    fn operand_fractions_sum_to_one() {
        let mut s = SimStats::new(1);
        s.operand_sources = [10, 50, 20, 15, 5];
        let f = s.operand_source_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s.operand_miss_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn gap_histogram_and_cdf() {
        let mut s = SimStats::new(1);
        s.record_gap(0);
        s.record_gap(0);
        s.record_gap(5);
        s.record_gap(10_000); // clamps into the last bucket
        let cdf = s.gap_cdf();
        assert!((cdf[0] - 0.5).abs() < 1e-12);
        assert!((cdf[5] - 0.75).abs() < 1e-12);
        assert!((cdf[GAP_BUCKETS - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_latency_percentiles() {
        let mut s = SimStats::new(1);
        assert_eq!(s.load_latency_percentile(0.5), None);
        for _ in 0..90 {
            s.record_load_latency(4);
        }
        for _ in 0..10 {
            s.record_load_latency(135);
        }
        assert_eq!(s.load_latency_percentile(0.5), Some(4));
        assert_eq!(s.load_latency_percentile(0.9), Some(4));
        assert_eq!(s.load_latency_percentile(0.95), Some(135));
        // p = 0.0 must report the fastest *observed* latency, not an empty
        // bucket 0; out-of-range p clamps instead of over/under-shooting.
        assert_eq!(s.load_latency_percentile(0.0), Some(4));
        assert_eq!(s.load_latency_percentile(-3.0), Some(4));
        assert_eq!(s.load_latency_percentile(1.0), Some(135));
        assert_eq!(s.load_latency_percentile(7.5), Some(135));
        assert_eq!(s.load_latency_percentile(f64::NAN), Some(4));
        s.record_load_latency(10_000); // clamps
        assert_eq!(*s.load_latency_hist.last().unwrap(), 1);
    }

    #[test]
    fn loop_cost_stack_conserves_and_normalizes() {
        let mut st = LoopCostStack::default();
        // 4 cycles at width 8: full, half lost to branches, empty on a
        // frontend bubble, 3/8 lost to memory latency.
        st.charge(8, 8, CpiComponent::Base);
        st.charge(8, 4, CpiComponent::BranchResolution);
        st.charge(8, 0, CpiComponent::Frontend);
        st.charge(8, 5, CpiComponent::MemoryLatency);
        assert_eq!(st.cycles, 4);
        assert_eq!(st.used, 17);
        assert_eq!(st.total_lost(), 15);
        assert!(st.conserves());
        assert_eq!(st.component(CpiComponent::BranchResolution), 4);
        assert_eq!(st.component(CpiComponent::Frontend), 8);
        assert_eq!(st.component(CpiComponent::MemoryLatency), 3);
        let comps = st.cpi_components();
        let sum: f64 = comps.iter().sum();
        assert!(
            (sum - st.cpi()).abs() < 1e-12,
            "stack must sum to measured CPI: {sum} vs {}",
            st.cpi()
        );
        assert!((st.lost_fraction() - 15.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn charge_idle_matches_repeated_empty_charges() {
        let mut a = LoopCostStack::default();
        let mut b = LoopCostStack::default();
        a.charge(8, 3, CpiComponent::Base);
        b.charge(8, 3, CpiComponent::Base);
        for _ in 0..17 {
            a.charge(8, 0, CpiComponent::MemoryLatency);
        }
        b.charge_idle(8, 17, CpiComponent::MemoryLatency);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.used, b.used);
        assert_eq!(a.lost, b.lost);
        assert!(b.conserves());
    }

    #[test]
    fn loop_cost_stack_merge_is_additive() {
        let mut a = LoopCostStack::default();
        a.charge(8, 8, CpiComponent::Base);
        a.charge(8, 2, CpiComponent::LoadResolution);
        let mut b = LoopCostStack::default();
        b.charge(8, 0, CpiComponent::OperandResolution);
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.cycles, 3);
        assert_eq!(m.used, 10);
        assert_eq!(m.component(CpiComponent::LoadResolution), 6);
        assert_eq!(m.component(CpiComponent::OperandResolution), 8);
        assert!(m.conserves());
    }

    #[test]
    fn cpi_component_names_are_unique_and_ordered() {
        for (i, c) in CpiComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: std::collections::HashSet<&str> =
            CpiComponent::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), CpiComponent::COUNT);
    }

    #[test]
    fn useless_work_rolls_up() {
        let mut s = SimStats::new(1);
        s.squashed_after_issue = 1;
        s.load_replays = 2;
        s.shadow_replays = 3;
        s.operand_replays = 4;
        assert_eq!(s.useless_work(), 10);
    }
}
