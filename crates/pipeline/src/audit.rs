//! The per-cycle invariant auditor.
//!
//! Every structural invariant the pipeline's recovery paths are supposed to
//! preserve — register conservation across squashes, queue-occupancy
//! bounds, in-order retirement, RPFT/CRC/insertion-table consistency — is
//! checked here as one pass over the machine state. [`Machine::run`] calls
//! [`Machine::audit`] after every cycle when `cfg.audit` is set; a broken
//! invariant surfaces as a typed [`InvariantViolation`] naming the cycle,
//! the invariant class, and the specifics, instead of as a mysterious
//! divergence thousands of cycles later.
//!
//! The checks are intentionally *directional*: for example, a freed
//! physical register legally keeps its RPFT pre-read bit (nothing clears it
//! until reallocation), so the RPFT check runs only over in-flight
//! destinations, where `can_preread` must imply a produced value.

use crate::config::RegisterScheme;
use crate::dyninst::InstPhase;
use crate::error::{InvariantKind, InvariantViolation};
use crate::iq::IqState;
use crate::machine::Machine;

impl Machine {
    /// Check every structural invariant once; called per cycle by
    /// [`Machine::run`] when `cfg.audit` is set, but also usable directly
    /// around a suspect window.
    ///
    /// # Errors
    ///
    /// The first broken invariant found, as a typed [`InvariantViolation`].
    pub fn audit(&mut self) -> Result<(), InvariantViolation> {
        self.audit_freelist()?;
        self.audit_iq()?;
        self.audit_rob()?;
        self.audit_in_flight()?;
        self.audit_loop_cost()?;
        self.audit_mem_hierarchy()?;
        if let RegisterScheme::Dra { .. } = self.cfg.scheme {
            self.audit_dra()?;
        }
        self.stats.audit_checks += 1;
        Ok(())
    }

    fn violation(&self, kind: InvariantKind, detail: String) -> InvariantViolation {
        InvariantViolation {
            cycle: self.cycle,
            kind,
            detail,
        }
    }

    /// Physical registers are conserved: every register is free, holds a
    /// committed architectural mapping, or is the pending destination of an
    /// in-flight instruction.
    fn audit_freelist(&self) -> Result<(), InvariantViolation> {
        let free = self.freelist.available();
        let arch = 64 * self.threads.len();
        let in_flight_dests: usize = self
            .threads
            .iter()
            .flat_map(|t| t.rob.iter())
            .filter(|&&id| self.slab.get(id).is_some_and(|di| di.dest.is_some()))
            .count();
        let total = self.cfg.phys_regs;
        if free + arch + in_flight_dests != total {
            return Err(self.violation(
                InvariantKind::FreelistConservation,
                format!(
                    "free {free} + architectural {arch} + in-flight dests {in_flight_dests} \
                     != total {total} (a squash or retire leaked or double-freed a register)"
                ),
            ));
        }
        Ok(())
    }

    /// IQ occupancy is bounded, per-cluster tallies agree with the
    /// entries, and no Waiting/Issued entry dangles. (Confirmed entries
    /// may legally outlive their slab record: retire can release an
    /// instruction before its IQ slot's `free_at` arrives.)
    fn audit_iq(&self) -> Result<(), InvariantViolation> {
        if self.iq.len() > self.iq.capacity() {
            return Err(self.violation(
                InvariantKind::IqConsistency,
                format!(
                    "occupancy {} exceeds capacity {}",
                    self.iq.len(),
                    self.iq.capacity()
                ),
            ));
        }
        if !self.iq.cluster_counts_consistent() {
            return Err(self.violation(
                InvariantKind::IqConsistency,
                "per-cluster tallies disagree with the entries".into(),
            ));
        }
        if !self.iq.waiting_lists_consistent() {
            return Err(self.violation(
                InvariantKind::IqConsistency,
                "per-cluster ready lists disagree with the slot arena \
                 (missing/stale entry or age order broken)"
                    .into(),
            ));
        }
        if !self.iq.ready_lists_consistent() {
            return Err(self.violation(
                InvariantKind::IqConsistency,
                "incremental ready lists structurally inconsistent \
                 (dead/gated/unwaiting entry, age order, or flag drift)"
                    .into(),
            ));
        }
        // Semantic cross-check of the incremental scheduler against the
        // naive predicate, as of the last stepped cycle: every waiting
        // entry must be (a) on its ready list iff it was issue-eligible,
        // or (b) flagged gated iff the store-wait gate held.
        let eval_now = self.cycle.saturating_sub(1);
        for e in self.iq.iter() {
            if e.state != IqState::Waiting {
                continue;
            }
            let Some(di) = self.slab.get(e.id) else {
                continue; // caught by the reference checks below
            };
            let slot = di.iq_slot;
            let gated = self.entry_gated(e);
            // One-sided: the flag is set eagerly but a *new* store-wait
            // prediction only sweeps ready-list entries — a timer-pending
            // load picks the gate up on its next re-evaluation.
            if self.iq.is_gated(slot) && !gated {
                return Err(self.violation(
                    InvariantKind::IqConsistency,
                    format!(
                        "seq {}: gate flag set but the store-wait gate does not hold",
                        e.seq
                    ),
                ));
            }
            // `entry_ready` already folds in the store-wait gate.
            let eligible = self.entry_ready(e, eval_now);
            if self.iq.in_ready(slot) != eligible {
                return Err(self.violation(
                    InvariantKind::IqConsistency,
                    format!(
                        "seq {}: ready-list membership {} but issue eligibility at cycle {} is {}",
                        e.seq,
                        self.iq.in_ready(slot),
                        eval_now,
                        eligible
                    ),
                ));
            }
        }
        for e in self.iq.iter() {
            if matches!(e.state, IqState::Confirmed { .. }) {
                continue;
            }
            match self.slab.get(e.id) {
                None => {
                    return Err(self.violation(
                        InvariantKind::IqConsistency,
                        format!(
                            "{:?} entry seq {} (thread {}) references a released instruction",
                            e.state, e.seq, e.thread
                        ),
                    ));
                }
                Some(di) if di.seq != e.seq => {
                    return Err(self.violation(
                        InvariantKind::IqConsistency,
                        format!(
                            "entry seq {} references a recycled slot now holding seq {}",
                            e.seq, di.seq
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Per-thread ROBs hold live instructions in strictly increasing
    /// program order, and each store queue is exactly the in-order store
    /// subsequence of its ROB.
    fn audit_rob(&self) -> Result<(), InvariantViolation> {
        for (t, th) in self.threads.iter().enumerate() {
            let mut last_seq = 0u64;
            let mut rob_stores = Vec::new();
            for &id in &th.rob {
                let Some(di) = self.slab.get(id) else {
                    return Err(self.violation(
                        InvariantKind::RobOrder,
                        format!("thread {t} ROB references a released instruction"),
                    ));
                };
                if di.seq <= last_seq {
                    return Err(self.violation(
                        InvariantKind::RobOrder,
                        format!(
                            "thread {t} ROB out of order: seq {} follows seq {last_seq}",
                            di.seq
                        ),
                    ));
                }
                last_seq = di.seq;
                if di.class == looseloops_isa::Class::Store {
                    rob_stores.push(id);
                }
            }
            let store_q: Vec<_> = th.store_q.iter().copied().collect();
            if store_q != rob_stores {
                return Err(self.violation(
                    InvariantKind::StoreQueueOrder,
                    format!(
                        "thread {t} store queue ({} entries) is not the ROB's store \
                         subsequence ({} stores)",
                        store_q.len(),
                        rob_stores.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The renamed, un-retired window never exceeds the configured cap.
    /// The memory hierarchy's own structural invariants hold: outstanding
    /// data-side misses never exceed the MSHR file. This also pins the
    /// *intentional* fetch-path asymmetry documented in DESIGN.md §4:
    /// instruction fetches model neither MSHR occupancy nor bank conflicts,
    /// so every slot counted here belongs to the data path — if fetch ever
    /// starts allocating MSHRs, this bound (sized for the data path alone)
    /// is the check that trips.
    fn audit_mem_hierarchy(&self) -> Result<(), InvariantViolation> {
        self.hier
            .check_consistency()
            .map_err(|detail| self.violation(InvariantKind::MemHierarchyConsistency, detail))
    }

    fn audit_in_flight(&self) -> Result<(), InvariantViolation> {
        let in_flight: usize = self.threads.iter().map(|t| t.rob.len()).sum();
        if in_flight > self.cfg.max_in_flight {
            return Err(self.violation(
                InvariantKind::InFlightBound,
                format!(
                    "{in_flight} in flight exceeds cap {}",
                    self.cfg.max_in_flight
                ),
            ));
        }
        Ok(())
    }

    /// The per-loop CPI stack conserves retire slots: every slot of every
    /// accounted cycle is either used by a retired instruction or charged
    /// to exactly one loss component, and the stack's cycle/retire tallies
    /// agree with the main counters.
    fn audit_loop_cost(&self) -> Result<(), InvariantViolation> {
        let st = &self.stats.loop_cost;
        if st.cycles != self.stats.cycles {
            return Err(self.violation(
                InvariantKind::LoopCostConservation,
                format!(
                    "stack accounted {} cycles but the machine simulated {}",
                    st.cycles, self.stats.cycles
                ),
            ));
        }
        if st.used != self.stats.total_retired() {
            return Err(self.violation(
                InvariantKind::LoopCostConservation,
                format!(
                    "stack used {} slots but {} instructions retired",
                    st.used,
                    self.stats.total_retired()
                ),
            ));
        }
        if !st.conserves() {
            return Err(self.violation(
                InvariantKind::LoopCostConservation,
                format!(
                    "used {} + lost {} != width {} x cycles {} (leaked retire slots)",
                    st.used,
                    st.total_lost(),
                    st.width,
                    st.cycles
                ),
            ));
        }
        Ok(())
    }

    /// DRA-only consistency between the RPFT, the CRCs, and the insertion
    /// tables.
    fn audit_dra(&self) -> Result<(), InvariantViolation> {
        // An in-flight destination marked pre-readable must actually have
        // been produced. (Only in-flight dests: freed registers legally
        // keep their RPFT bit until reallocation.)
        for th in &self.threads {
            for &id in &th.rob {
                let Some(di) = self.slab.get(id) else {
                    continue;
                };
                if di.phase == InstPhase::FrontEnd || di.phase == InstPhase::Retired {
                    continue;
                }
                let Some(dest) = di.dest else { continue };
                let p = dest.new;
                if self.rpft.can_preread(p) && self.avail_cycle[p.index()] == u64::MAX {
                    return Err(self.violation(
                        InvariantKind::RpftConsistency,
                        format!(
                            "{p:?} (seq {}) is marked pre-readable but its producer has \
                             not completed",
                            di.seq
                        ),
                    ));
                }
            }
        }
        // A CRC never caches a value that was never produced: write-back
        // capture happens after completion, and both reallocation and
        // squash invalidate matching entries.
        for (c, crc) in self.crcs.iter().enumerate() {
            for (p, _) in crc.entries() {
                if self.avail_cycle[p.index()] == u64::MAX {
                    return Err(self.violation(
                        InvariantKind::CrcConsistency,
                        format!("cluster {c} CRC caches {p:?} whose producer is in flight"),
                    ));
                }
            }
        }
        // Insertion-table counts only exist for not-yet-pre-readable
        // registers: write-back consumes the count in the same cycle the
        // RPFT bit is set, and reallocation clears both.
        for (c, itable) in self.itables.iter().enumerate() {
            for i in 0..self.cfg.phys_regs {
                let p = looseloops_regs::PhysReg(i as u16);
                if itable.count(p) > 0 && self.rpft.can_preread(p) {
                    return Err(self.violation(
                        InvariantKind::InsertionTableConsistency,
                        format!(
                            "cluster {c} insertion table counts {} consumers for \
                             already-readable {p:?}",
                            itable.count(p)
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PipelineConfig;
    use crate::machine::Machine;

    fn loop_prog() -> looseloops_isa::Program {
        looseloops_isa::asm::assemble(
            "addi r1, r31, 40\n\
             top:\n\
             add r2, r2, r1\n\
             stq r2, 0(r10)\n\
             ldq r3, 0(r10)\n\
             subi r1, r1, 1\n\
             bne r1, top\n\
             halt",
        )
        .unwrap()
    }

    #[test]
    fn audit_passes_on_clean_runs() {
        for cfg in [PipelineConfig::base(), PipelineConfig::dra_for_rf(5)] {
            let audited = PipelineConfig { audit: true, ..cfg };
            let mut m = Machine::new(audited, vec![loop_prog()]).unwrap();
            m.enable_verification();
            let stats = m.run(10_000, 100_000).expect("clean run audits clean");
            assert!(stats.audit_checks > 0, "auditor must actually have run");
        }
    }

    #[test]
    fn audit_catches_a_leaked_register() {
        let mut m = Machine::new(PipelineConfig::base(), vec![loop_prog()]).unwrap();
        for _ in 0..50 {
            m.step_cycle();
        }
        assert!(m.audit().is_ok());
        // Steal a register behind the machine's back.
        let leaked = m.freelist.alloc().expect("registers available");
        let err = m.audit().expect_err("conservation must fail");
        assert_eq!(err.kind, crate::error::InvariantKind::FreelistConservation);
        m.freelist.release(leaked);
        assert!(m.audit().is_ok(), "restored state audits clean again");
    }

    #[test]
    fn audit_catches_leaked_retire_slots() {
        let mut m = Machine::new(PipelineConfig::base(), vec![loop_prog()]).unwrap();
        for _ in 0..50 {
            m.step_cycle();
        }
        assert!(m.audit().is_ok());
        // Charge a phantom lost slot behind the accounting's back.
        m.stats.loop_cost.lost[0] += 1;
        let err = m.audit().expect_err("slot leak must fail");
        assert_eq!(err.kind, crate::error::InvariantKind::LoopCostConservation);
        m.stats.loop_cost.lost[0] -= 1;
        assert!(m.audit().is_ok(), "restored accounting audits clean again");
    }

    #[test]
    fn audit_catches_rob_disorder() {
        let mut m = Machine::new(PipelineConfig::base(), vec![loop_prog()]).unwrap();
        while m.threads[0].rob.len() < 2 {
            m.step_cycle();
        }
        assert!(m.audit().is_ok());
        m.threads[0].rob.swap(0, 1);
        let err = m.audit().expect_err("disorder must fail");
        assert_eq!(err.kind, crate::error::InvariantKind::RobOrder);
        m.threads[0].rob.swap(0, 1);
        assert!(m.audit().is_ok());
    }
}
