//! Dynamic (in-flight) instruction records and their slab allocator.
//!
//! Storage is split hot/cold (DESIGN.md §14): [`DynInst`] is the compact
//! record the per-cycle loops walk (sequence, phase, renamed operands,
//! timestamps), while [`ColdInst`] is a parallel side-table holding the
//! rarely touched control-flow recovery payload — the branch prediction
//! context and the return-address-stack checkpoint, whose inline buffer
//! alone is larger than the entire hot record. Both live in [`InstSlab`]
//! under one generational handle, so alloc/squash/retire move an order of
//! magnitude fewer bytes for the common (non-control) instruction.

use looseloops_isa::{Class, Inst, Reg, StaticInstInfo};
use looseloops_regs::PhysReg;

/// Handle to an in-flight instruction. Generational: a stale handle (to a
/// squashed and reused slot) never resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// Where an instruction stands in its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstPhase {
    /// Fetched/renamed, travelling the DEC-IQ pipe.
    FrontEnd,
    /// Waiting in the instruction queue.
    InIq,
    /// Selected; travelling the IQ-EX pipe or executing.
    Issued,
    /// Result produced (loads: data returned; stores: address + data
    /// staged).
    Complete,
    /// Architecturally retired (slot about to be reclaimed).
    Retired,
}

/// How a source operand was (or will be) obtained — the paper's operand
/// classes plus the baseline register-file path and the miss case
/// (Figure 9's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSource {
    /// Pre-read from the register file in DEC-IQ (DRA *completed* operand).
    PreRead,
    /// Forwarding buffer (*timely* operand).
    Forward,
    /// Cluster register cache (*cached* operand).
    Crc,
    /// Monolithic register-file read on the IQ-EX path (base machine only).
    RegFile,
    /// DRA operand miss — the operand-resolution loop fired.
    Miss,
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy)]
pub struct SrcOperand {
    /// Architectural register.
    pub arch: Reg,
    /// Physical register after rename.
    pub phys: PhysReg,
    /// Pre-read value captured in the DEC-IQ path (DRA) or delivered by the
    /// operand-miss recovery path into the payload. Meaningful only while
    /// `payload_valid` — split from an `Option<u64>` so the value packs
    /// with the other `u64`s instead of spending 8 bytes on a tag.
    pub payload: u64,
    /// `payload` carries a value.
    pub payload_valid: bool,
    /// DRA: this consumer's rename-time increment of its cluster's
    /// insertion table is still outstanding (no forwarding-buffer read has
    /// decremented it). Squash recovery undoes outstanding increments so
    /// wrong-path consumers do not flood the CRCs.
    pub itable_pending: bool,
    /// Earliest cycle this operand alone would let the instruction issue
    /// (maintained against the producer's schedule; `u64::MAX` = unknown).
    pub ready_at: u64,
    /// The wake-up version of the producer's physical register at the
    /// moment this operand was found missing at execute. The entry may not
    /// reissue until the producer re-broadcasts (version changes) — the
    /// hardware's "pull back and wait for the corrected wake-up".
    pub blocked_version: Option<u32>,
    /// Where the operand was obtained at (last) execution.
    pub obtained: Option<OperandSource>,
    /// Cycle the operand's value became available (for the Figure 6 gap
    /// statistic); [`NO_CYCLE`] until known.
    pub avail_cycle: u64,
}

/// A renamed destination.
#[derive(Debug, Clone, Copy)]
pub struct DestRename {
    /// Architectural destination.
    pub arch: Reg,
    /// Newly allocated physical register.
    pub new: PhysReg,
    /// Previous mapping (freed at retire, restored on rollback).
    pub prev: PhysReg,
}

/// Control-flow prediction made at fetch.
#[derive(Debug, Clone, Copy)]
pub struct BranchPrediction {
    /// Predicted direction (`true` for unconditional).
    pub taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub next_pc: u64,
    /// Global-history snapshot for recovery.
    pub history: looseloops_branch::HistorySnapshot,
    /// Prediction context from `DirectionPredictor::predict_ctx`
    /// (pre-prediction history state; used for in-order training and
    /// per-branch history repair).
    pub ctx: u64,
}

/// Cold per-instruction state: control-flow recovery payload touched only
/// at fetch-time prediction, branch resolution, and retire-time predictor
/// training — never by the per-cycle IQ/wakeup walks. Kept out of
/// [`DynInst`] so the hot record stays small (the RAS checkpoint's inline
/// buffer alone is 256 bytes).
#[derive(Debug, Clone, Default)]
pub struct ColdInst {
    /// Prediction state for control instructions.
    pub pred: Option<BranchPrediction>,
    /// Return-address-stack checkpoint taken at fetch (control
    /// instructions only), restored on mis-speculation recovery.
    pub ras_ckpt: Option<looseloops_branch::RasCheckpoint>,
}

impl ColdInst {
    fn reset(&mut self) {
        self.pred = None;
        self.ras_ckpt = None;
    }
}

/// Sentinel for "this cycle has not happened yet" — lets the per-stage
/// timestamps live in bare `u64`s instead of `Option<u64>`s, which would
/// double their footprint in the hot record.
pub const NO_CYCLE: u64 = u64::MAX;

/// A dynamic instruction (the hot record; see [`ColdInst`]).
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Global age (monotonic across all threads; per-thread order is a
    /// subsequence).
    pub seq: u64,
    /// Owning hardware thread.
    pub thread: usize,
    /// Fetch PC (instruction index).
    pub pc: u64,
    /// Decoded instruction.
    pub inst: Inst,
    /// Instruction class, predecoded (also the execution-latency key).
    pub class: Class,
    /// Memory access size in bytes, predecoded (0 for non-memory).
    pub mem_size: u8,
    /// Lifetime phase.
    pub phase: InstPhase,
    /// Renamed sources (`None` slots follow `Inst::srcs`).
    pub srcs: [Option<SrcOperand>; 2],
    /// Renamed destination.
    pub dest: Option<DestRename>,
    /// Functional-unit cluster this instruction was slotted to at decode.
    pub cluster: usize,
    /// IQ arena slot while resident (set at insert; may go stale after a
    /// squash — the IQ validates it against `id` before acting on it).
    pub iq_slot: u32,
    /// Cycle fetched.
    pub fetch_cycle: u64,
    /// Cycle renamed (start of DEC-IQ).
    pub rename_cycle: u64,
    /// Cycle inserted into the IQ (`NO_CYCLE` until then).
    pub insert_cycle: u64,
    /// Cycle (most recently) issued (`NO_CYCLE` until then).
    pub issue_cycle: u64,
    /// Cycle execution produced the result — the forwarding timestamp
    /// (`NO_CYCLE` until then).
    pub complete_cycle: u64,
    /// Result value (dest write, if any).
    pub result: Option<u64>,
    /// Effective address for memory operations (the access size is the
    /// predecoded `mem_size`).
    pub mem_addr: Option<u64>,
    /// Resolved direction for control instructions.
    pub taken: Option<bool>,
    /// Architecturally correct next PC (known after execute).
    pub next_pc: Option<u64>,
    /// Number of times this instruction issued (1 = no replays).
    pub issue_count: u32,
    /// Load mis-speculation shadow: this instruction must replay because an
    /// operand was not present at execute.
    pub needs_replay: bool,
    /// CPI-stack cause of the (latest) replay, for loss attribution while
    /// the instruction waits to reissue: load-resolution for producer/
    /// shadow replays, operand-resolution for DRA operand misses.
    pub replay_component: Option<crate::stats::CpiComponent>,
    /// dTLB miss trap pending (serviced at retire).
    pub tlb_trap: bool,
    /// This conditional branch holds a recovery checkpoint (released at
    /// resolution or squash).
    pub holds_checkpoint: bool,
    /// The load hit L1 (valid once complete; drives confirmation stats).
    pub load_l1_hit: Option<bool>,
    /// Store data value staged for retire-time memory write.
    pub store_data: Option<u64>,
}

impl DynInst {
    fn new(seq: u64, thread: usize, pc: u64, info: &StaticInstInfo, fetch_cycle: u64) -> DynInst {
        DynInst {
            seq,
            thread,
            pc,
            inst: info.inst,
            class: info.class,
            mem_size: info.mem_size,
            phase: InstPhase::FrontEnd,
            srcs: [None, None],
            dest: None,
            cluster: 0,
            iq_slot: u32::MAX,
            fetch_cycle,
            rename_cycle: 0,
            insert_cycle: NO_CYCLE,
            issue_cycle: NO_CYCLE,
            complete_cycle: NO_CYCLE,
            result: None,
            mem_addr: None,
            taken: None,
            next_pc: None,
            issue_count: 0,
            needs_replay: false,
            replay_component: None,
            tlb_trap: false,
            holds_checkpoint: false,
            load_l1_hit: None,
            store_data: None,
        }
    }

    /// True once the instruction has produced its result.
    pub fn is_complete(&self) -> bool {
        matches!(self.phase, InstPhase::Complete | InstPhase::Retired)
    }
}

/// Generational slab holding all in-flight instructions: parallel hot
/// ([`DynInst`]) and cold ([`ColdInst`]) arrays under one handle. Cold
/// records are reset in place on allocation (keeping any RAS spill
/// capacity), so slot reuse stays allocation-free.
///
/// Liveness is carried entirely by the generation counters: releasing a
/// slot bumps its generation, which invalidates every outstanding handle,
/// so the hot array stores `DynInst` directly (no `Option` wrapper). A
/// dead slot keeps its stale record in place until reuse overwrites it —
/// handle resolution never looks at it.
#[derive(Debug, Default)]
pub struct InstSlab {
    slots: Vec<DynInst>,
    cold: Vec<ColdInst>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl InstSlab {
    /// An empty slab.
    pub fn new() -> InstSlab {
        InstSlab::default()
    }

    /// Number of live instructions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocate a record for a freshly fetched instruction.
    pub fn alloc(
        &mut self,
        seq: u64,
        thread: usize,
        pc: u64,
        info: &StaticInstInfo,
        fetch_cycle: u64,
    ) -> InstId {
        self.live += 1;
        let di = DynInst::new(seq, thread, pc, info, fetch_cycle);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = di;
                self.cold[slot as usize].reset();
                InstId {
                    slot,
                    gen: self.gens[slot as usize],
                }
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(di);
                self.cold.push(ColdInst::default());
                self.gens.push(0);
                InstId { slot, gen: 0 }
            }
        }
    }

    /// Free a record (retire or squash). Stale handles to this slot stop
    /// resolving: the generation bump alone kills them, the stale record
    /// stays in place untouched.
    pub fn release(&mut self, id: InstId) {
        assert!(self.get(id).is_some(), "releasing a dead or stale InstId");
        self.gens[id.slot as usize] = self.gens[id.slot as usize].wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
    }

    /// Resolve a handle; `None` for released/stale handles.
    #[inline]
    pub fn get(&self, id: InstId) -> Option<&DynInst> {
        if self.gens.get(id.slot as usize) == Some(&id.gen) {
            Some(&self.slots[id.slot as usize])
        } else {
            None
        }
    }

    /// Mutable resolve.
    #[inline]
    pub fn get_mut(&mut self, id: InstId) -> Option<&mut DynInst> {
        if self.gens.get(id.slot as usize) == Some(&id.gen) {
            Some(&mut self.slots[id.slot as usize])
        } else {
            None
        }
    }

    /// Direct access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect(&self, id: InstId) -> &DynInst {
        self.get(id).expect("live InstId")
    }

    /// Mutable direct access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect_mut(&mut self, id: InstId) -> &mut DynInst {
        self.get_mut(id).expect("live InstId")
    }

    /// The cold record for a live handle; `None` for released/stale
    /// handles.
    pub fn cold(&self, id: InstId) -> Option<&ColdInst> {
        if self.gens.get(id.slot as usize) == Some(&id.gen) {
            Some(&self.cold[id.slot as usize])
        } else {
            None
        }
    }

    /// Cold-record access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect_cold(&self, id: InstId) -> &ColdInst {
        self.cold(id).expect("live InstId")
    }

    /// Mutable cold-record access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect_cold_mut(&mut self, id: InstId) -> &mut ColdInst {
        assert!(
            self.gens.get(id.slot as usize) == Some(&id.gen),
            "live InstId"
        );
        &mut self.cold[id.slot as usize]
    }

    /// Both the hot and cold records, mutably, for sites that update
    /// prediction state alongside the hot record.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect_both_mut(&mut self, id: InstId) -> (&mut DynInst, &mut ColdInst) {
        assert!(
            self.gens.get(id.slot as usize) == Some(&id.gen),
            "live InstId"
        );
        (
            &mut self.slots[id.slot as usize],
            &mut self.cold[id.slot as usize],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::Inst as I;
    use looseloops_isa::StaticInstInfo;

    fn info(inst: I) -> StaticInstInfo {
        StaticInstInfo::of(inst)
    }

    #[test]
    fn alloc_get_release() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 100, &info(I::nop()), 5);
        assert_eq!(s.live(), 1);
        assert_eq!(s.expect(id).pc, 100);
        assert!(s.expect_cold(id).pred.is_none());
        s.release(id);
        assert_eq!(s.live(), 0);
        assert!(s.get(id).is_none(), "stale handle must not resolve");
        assert!(s.cold(id).is_none(), "stale cold handle must not resolve");
    }

    #[test]
    fn slot_reuse_bumps_generation_and_resets_cold() {
        let mut s = InstSlab::new();
        let a = s.alloc(1, 0, 1, &info(I::nop()), 0);
        s.expect_cold_mut(a).pred = Some(BranchPrediction {
            taken: true,
            next_pc: 7,
            history: looseloops_branch::HistorySnapshot(0),
            ctx: 0,
        });
        s.release(a);
        let b = s.alloc(2, 0, 2, &info(I::nop()), 0);
        assert_eq!(a.slot, b.slot, "slot is reused");
        assert!(s.get(a).is_none());
        assert!(s.cold(a).is_none());
        assert_eq!(s.expect(b).pc, 2);
        assert!(
            s.expect_cold(b).pred.is_none(),
            "cold record is reset on reuse"
        );
    }

    #[test]
    fn phases_start_at_frontend() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 0, &info(I::halt()), 0);
        assert_eq!(s.expect(id).phase, InstPhase::FrontEnd);
        assert!(!s.expect(id).is_complete());
        s.expect_mut(id).phase = InstPhase::Complete;
        assert!(s.expect(id).is_complete());
    }

    #[test]
    fn predecoded_fields_ride_along() {
        let mut s = InstSlab::new();
        let ld = I {
            op: looseloops_isa::Opcode::Ldl,
            rd: looseloops_isa::Reg::int(1),
            rs1: looseloops_isa::Reg::int(2),
            rs2: looseloops_isa::Reg::ZERO,
            imm: 4,
            uses_imm: false,
        };
        let id = s.alloc(1, 0, 0, &info(ld), 0);
        assert_eq!(s.expect(id).class, looseloops_isa::Class::Load);
        assert_eq!(s.expect(id).mem_size, 4);
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 0, &info(I::nop()), 0);
        s.release(id);
        s.release(id);
    }
}
