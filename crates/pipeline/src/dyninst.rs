//! Dynamic (in-flight) instruction records and their slab allocator.

use looseloops_isa::{Inst, Reg};
use looseloops_regs::PhysReg;

/// Handle to an in-flight instruction. Generational: a stale handle (to a
/// squashed and reused slot) never resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstId {
    pub(crate) slot: u32,
    pub(crate) gen: u32,
}

/// Where an instruction stands in its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstPhase {
    /// Fetched/renamed, travelling the DEC-IQ pipe.
    FrontEnd,
    /// Waiting in the instruction queue.
    InIq,
    /// Selected; travelling the IQ-EX pipe or executing.
    Issued,
    /// Result produced (loads: data returned; stores: address + data
    /// staged).
    Complete,
    /// Architecturally retired (slot about to be reclaimed).
    Retired,
}

/// How a source operand was (or will be) obtained — the paper's operand
/// classes plus the baseline register-file path and the miss case
/// (Figure 9's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSource {
    /// Pre-read from the register file in DEC-IQ (DRA *completed* operand).
    PreRead,
    /// Forwarding buffer (*timely* operand).
    Forward,
    /// Cluster register cache (*cached* operand).
    Crc,
    /// Monolithic register-file read on the IQ-EX path (base machine only).
    RegFile,
    /// DRA operand miss — the operand-resolution loop fired.
    Miss,
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy)]
pub struct SrcOperand {
    /// Architectural register.
    pub arch: Reg,
    /// Physical register after rename.
    pub phys: PhysReg,
    /// Pre-read value captured in the DEC-IQ path (DRA) or delivered by the
    /// operand-miss recovery path into the payload.
    pub payload: Option<u64>,
    /// DRA: this consumer's rename-time increment of its cluster's
    /// insertion table is still outstanding (no forwarding-buffer read has
    /// decremented it). Squash recovery undoes outstanding increments so
    /// wrong-path consumers do not flood the CRCs.
    pub itable_pending: bool,
    /// Earliest cycle this operand alone would let the instruction issue
    /// (maintained against the producer's schedule; `u64::MAX` = unknown).
    pub ready_at: u64,
    /// The wake-up version of the producer's physical register at the
    /// moment this operand was found missing at execute. The entry may not
    /// reissue until the producer re-broadcasts (version changes) — the
    /// hardware's "pull back and wait for the corrected wake-up".
    pub blocked_version: Option<u32>,
    /// Where the operand was obtained at (last) execution.
    pub obtained: Option<OperandSource>,
    /// Cycle the operand's value became available (for the Figure 6 gap
    /// statistic); `None` until known.
    pub avail_cycle: Option<u64>,
}

/// A renamed destination.
#[derive(Debug, Clone, Copy)]
pub struct DestRename {
    /// Architectural destination.
    pub arch: Reg,
    /// Newly allocated physical register.
    pub new: PhysReg,
    /// Previous mapping (freed at retire, restored on rollback).
    pub prev: PhysReg,
}

/// Control-flow prediction made at fetch.
#[derive(Debug, Clone, Copy)]
pub struct BranchPrediction {
    /// Predicted direction (`true` for unconditional).
    pub taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub next_pc: u64,
    /// Global-history snapshot for recovery.
    pub history: looseloops_branch::HistorySnapshot,
    /// Prediction context from `DirectionPredictor::predict_ctx`
    /// (pre-prediction history state; used for in-order training and
    /// per-branch history repair).
    pub ctx: u64,
}

/// A dynamic instruction.
#[derive(Debug, Clone)]
pub struct DynInst {
    /// Global age (monotonic across all threads; per-thread order is a
    /// subsequence).
    pub seq: u64,
    /// Owning hardware thread.
    pub thread: usize,
    /// Fetch PC (instruction index).
    pub pc: u64,
    /// Decoded instruction.
    pub inst: Inst,
    /// Lifetime phase.
    pub phase: InstPhase,
    /// Renamed sources (`None` slots follow `Inst::srcs`).
    pub srcs: [Option<SrcOperand>; 2],
    /// Renamed destination.
    pub dest: Option<DestRename>,
    /// Functional-unit cluster this instruction was slotted to at decode.
    pub cluster: usize,
    /// Prediction state for control instructions.
    pub pred: Option<BranchPrediction>,
    /// Return-address-stack checkpoint taken at fetch (control
    /// instructions only), restored on mis-speculation recovery.
    pub ras_ckpt: Option<looseloops_branch::RasCheckpoint>,
    /// IQ arena slot while resident (set at insert; may go stale after a
    /// squash — the IQ validates it against `id` before acting on it).
    pub iq_slot: u32,
    /// Cycle fetched.
    pub fetch_cycle: u64,
    /// Cycle renamed (start of DEC-IQ).
    pub rename_cycle: u64,
    /// Cycle inserted into the IQ.
    pub insert_cycle: Option<u64>,
    /// Cycle (most recently) issued.
    pub issue_cycle: Option<u64>,
    /// Cycle execution produced the result (the forwarding timestamp).
    pub complete_cycle: Option<u64>,
    /// Result value (dest write, if any).
    pub result: Option<u64>,
    /// Effective address and size for memory operations.
    pub mem_addr: Option<(u64, u8)>,
    /// Resolved direction for control instructions.
    pub taken: Option<bool>,
    /// Architecturally correct next PC (known after execute).
    pub next_pc: Option<u64>,
    /// Number of times this instruction issued (1 = no replays).
    pub issue_count: u32,
    /// Load mis-speculation shadow: this instruction must replay because an
    /// operand was not present at execute.
    pub needs_replay: bool,
    /// CPI-stack cause of the (latest) replay, for loss attribution while
    /// the instruction waits to reissue: load-resolution for producer/
    /// shadow replays, operand-resolution for DRA operand misses.
    pub replay_component: Option<crate::stats::CpiComponent>,
    /// dTLB miss trap pending (serviced at retire).
    pub tlb_trap: bool,
    /// This conditional branch holds a recovery checkpoint (released at
    /// resolution or squash).
    pub holds_checkpoint: bool,
    /// The load hit L1 (valid once complete; drives confirmation stats).
    pub load_l1_hit: Option<bool>,
    /// Store data value staged for retire-time memory write.
    pub store_data: Option<u64>,
}

impl DynInst {
    fn new(seq: u64, thread: usize, pc: u64, inst: Inst, fetch_cycle: u64) -> DynInst {
        DynInst {
            seq,
            thread,
            pc,
            inst,
            phase: InstPhase::FrontEnd,
            srcs: [None, None],
            dest: None,
            cluster: 0,
            pred: None,
            ras_ckpt: None,
            iq_slot: u32::MAX,
            fetch_cycle,
            rename_cycle: 0,
            insert_cycle: None,
            issue_cycle: None,
            complete_cycle: None,
            result: None,
            mem_addr: None,
            taken: None,
            next_pc: None,
            issue_count: 0,
            needs_replay: false,
            replay_component: None,
            tlb_trap: false,
            holds_checkpoint: false,
            load_l1_hit: None,
            store_data: None,
        }
    }

    /// True once the instruction has produced its result.
    pub fn is_complete(&self) -> bool {
        matches!(self.phase, InstPhase::Complete | InstPhase::Retired)
    }
}

/// Generational slab holding all in-flight instructions.
#[derive(Debug, Default)]
pub struct InstSlab {
    slots: Vec<Option<DynInst>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl InstSlab {
    /// An empty slab.
    pub fn new() -> InstSlab {
        InstSlab::default()
    }

    /// Number of live instructions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Allocate a record for a freshly fetched instruction.
    pub fn alloc(
        &mut self,
        seq: u64,
        thread: usize,
        pc: u64,
        inst: Inst,
        fetch_cycle: u64,
    ) -> InstId {
        self.live += 1;
        let di = DynInst::new(seq, thread, pc, inst, fetch_cycle);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(di);
                InstId {
                    slot,
                    gen: self.gens[slot as usize],
                }
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(di));
                self.gens.push(0);
                InstId { slot, gen: 0 }
            }
        }
    }

    /// Free a record (retire or squash). Stale handles to this slot stop
    /// resolving.
    pub fn release(&mut self, id: InstId) {
        assert!(self.get(id).is_some(), "releasing a dead or stale InstId");
        self.slots[id.slot as usize] = None;
        self.gens[id.slot as usize] = self.gens[id.slot as usize].wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
    }

    /// Resolve a handle; `None` for released/stale handles.
    pub fn get(&self, id: InstId) -> Option<&DynInst> {
        if self.gens.get(id.slot as usize) == Some(&id.gen) {
            self.slots[id.slot as usize].as_ref()
        } else {
            None
        }
    }

    /// Mutable resolve.
    pub fn get_mut(&mut self, id: InstId) -> Option<&mut DynInst> {
        if self.gens.get(id.slot as usize) == Some(&id.gen) {
            self.slots[id.slot as usize].as_mut()
        } else {
            None
        }
    }

    /// Direct access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect(&self, id: InstId) -> &DynInst {
        self.get(id).expect("live InstId")
    }

    /// Mutable direct access that must succeed.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    pub fn expect_mut(&mut self, id: InstId) -> &mut DynInst {
        self.get_mut(id).expect("live InstId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use looseloops_isa::Inst as I;

    #[test]
    fn alloc_get_release() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 100, I::nop(), 5);
        assert_eq!(s.live(), 1);
        assert_eq!(s.expect(id).pc, 100);
        s.release(id);
        assert_eq!(s.live(), 0);
        assert!(s.get(id).is_none(), "stale handle must not resolve");
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut s = InstSlab::new();
        let a = s.alloc(1, 0, 1, I::nop(), 0);
        s.release(a);
        let b = s.alloc(2, 0, 2, I::nop(), 0);
        assert_eq!(a.slot, b.slot, "slot is reused");
        assert!(s.get(a).is_none());
        assert_eq!(s.expect(b).pc, 2);
    }

    #[test]
    fn phases_start_at_frontend() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 0, I::halt(), 0);
        assert_eq!(s.expect(id).phase, InstPhase::FrontEnd);
        assert!(!s.expect(id).is_complete());
        s.expect_mut(id).phase = InstPhase::Complete;
        assert!(s.expect(id).is_complete());
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let mut s = InstSlab::new();
        let id = s.alloc(1, 0, 0, I::nop(), 0);
        s.release(id);
        s.release(id);
    }
}
